/// \file dense.hpp
/// \brief Dense expansion of the compressed system — the test oracle.
///
/// The compressed kernels (aprod1/aprod2) are verified against a plain
/// dense matrix built by scattering each row's 24 coefficients into an
/// n_rows x n_cols buffer. Only usable for small test systems.
#pragma once

#include <vector>

#include "matrix/system_matrix.hpp"

namespace gaia::matrix {

/// Row-major dense expansion (n_rows x n_cols doubles). Throws if the
/// dense buffer would exceed `max_bytes` (default 256 MiB) — the oracle
/// is for tests, not production sizes.
std::vector<real> to_dense(const SystemMatrix& A,
                           byte_size max_bytes = 256 * kMiB);

/// Dense y = M x with M given row-major as rows x cols.
std::vector<real> dense_matvec(const std::vector<real>& M, row_index rows,
                               col_index cols, std::span<const real> x);

/// Dense y = M^T x.
std::vector<real> dense_rmatvec(const std::vector<real>& M, row_index rows,
                                col_index cols, std::span<const real> x);

/// Solves the normal equations (M^T M + damp^2 I) x = M^T b by dense
/// Cholesky — the reference least-squares solution LSQR must agree with.
/// Throws gaia::Error if the normal matrix is numerically singular.
std::vector<real> dense_least_squares(const std::vector<real>& M,
                                      row_index rows, col_index cols,
                                      std::span<const real> b,
                                      real damp = 0);

}  // namespace gaia::matrix
