#include "matrix/csr.hpp"

#include <algorithm>
#include <array>
#include <utility>

namespace gaia::matrix {

CsrMatrix to_csr(const SystemMatrix& A) {
  const ParameterLayout& lay = A.layout();
  CsrMatrix M;
  M.n_rows = A.n_rows();
  M.n_cols = A.n_cols();
  M.row_ptr.reserve(static_cast<std::size_t>(M.n_rows) + 1);
  M.row_ptr.push_back(0);

  const auto vals = A.values();
  const auto ia = A.matrix_index_astro();
  const auto it = A.matrix_index_att();
  const auto ic = A.instr_col();

  std::array<std::pair<col_index, real>, kNnzPerRow> entries;
  for (row_index rr = 0; rr < A.n_rows(); ++rr) {
    const auto r = static_cast<std::size_t>(rr);
    const real* rv = vals.data() + r * kNnzPerRow;
    int n = 0;
    for (int i = 0; i < kAstroNnzPerRow; ++i)
      entries[n++] = {ia[r] + i, rv[kAstroCoeffOffset + i]};
    for (int blk = 0; blk < kAttBlocks; ++blk)
      for (int i = 0; i < kAttBlockSize; ++i)
        entries[n++] = {lay.att_offset() + it[r] + blk * lay.att_stride() + i,
                        rv[kAttCoeffOffset + blk * kAttBlockSize + i]};
    for (int i = 0; i < kInstrNnzPerRow; ++i)
      entries[n++] = {lay.instr_offset() + ic[r * kInstrNnzPerRow + i],
                      rv[kInstrCoeffOffset + i]};
    if (lay.has_global())
      entries[n++] = {lay.glob_offset(), rv[kGlobCoeffOffset]};

    std::sort(entries.begin(), entries.begin() + n);
    for (int i = 0; i < n; ++i) {
      // Skip exact zeros (e.g. the silent blocks of constraint rows):
      // CSR is a generic format, there is no reason to carry them.
      if (entries[static_cast<std::size_t>(i)].second == real{0}) continue;
      M.col_idx.push_back(entries[static_cast<std::size_t>(i)].first);
      M.values.push_back(entries[static_cast<std::size_t>(i)].second);
    }
    M.row_ptr.push_back(static_cast<std::int64_t>(M.values.size()));
  }
  return M;
}

void csr_matvec(const CsrMatrix& M, std::span<const real> x,
                std::span<real> y) {
  GAIA_CHECK(static_cast<col_index>(x.size()) == M.n_cols,
             "csr matvec x size mismatch");
  GAIA_CHECK(static_cast<row_index>(y.size()) == M.n_rows,
             "csr matvec y size mismatch");
  for (row_index r = 0; r < M.n_rows; ++r) {
    real sum = 0;
    for (std::int64_t k = M.row_ptr[static_cast<std::size_t>(r)];
         k < M.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      sum += M.values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(M.col_idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(r)] += sum;
  }
}

void csr_rmatvec(const CsrMatrix& M, std::span<const real> y,
                 std::span<real> x) {
  GAIA_CHECK(static_cast<row_index>(y.size()) == M.n_rows,
             "csr rmatvec y size mismatch");
  GAIA_CHECK(static_cast<col_index>(x.size()) == M.n_cols,
             "csr rmatvec x size mismatch");
  for (row_index r = 0; r < M.n_rows; ++r) {
    const real yr = y[static_cast<std::size_t>(r)];
    for (std::int64_t k = M.row_ptr[static_cast<std::size_t>(r)];
         k < M.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      x[static_cast<std::size_t>(M.col_idx[static_cast<std::size_t>(k)])] +=
          M.values[static_cast<std::size_t>(k)] * yr;
    }
  }
}

}  // namespace gaia::matrix
