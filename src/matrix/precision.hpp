/// \file precision.hpp
/// \brief Reduced-precision storage of the coefficient planes.
///
/// The aprod kernels are memory-bandwidth-bound (paper §VI): iteration
/// time tracks the bytes of coefficient data streamed per pass, not the
/// FLOPs. Storing the astro/att/instr/glob coefficient planes in FP32
/// (or a BF16-style truncated-FP32 format) halves/quarters that stream
/// while every kernel body keeps accumulating in FP64 — the same
/// mixed-precision split the exascale follow-ups to the production
/// solver study (arXiv 2308.00778, 2503.22863). Precision is therefore
/// a storage/tuning axis of its own, exactly parallel to StorageLayout:
///
///  * `kFp64`  — the seed's double-precision planes, bit for bit. All
///    existing checkpoints, checksums and tuning entries keep meaning.
///  * `kFp32`  — coefficients down-converted once (round-to-nearest) at
///    build time; kernels convert on load and do all math in FP64.
///  * `kBf16s` — "bf16 storage": the top 16 bits of the FP32 encoding
///    (sign + 8-bit exponent + 7-bit mantissa). Same dynamic range as
///    FP32 at a quarter of the FP64 bytes; decode is a shift, not a
///    table.
///
/// Only *storage* changes. Accumulation stays FP64 everywhere because
/// the astrometric solution needs ~1e-11 rad accuracy (§V-C) and LSQR's
/// recurrences amplify rounding in the accumulator, not in A's entries;
/// perturbing A is equivalent to solving a nearby system, which outer
/// iterative refinement then corrects in full precision.
///
/// Header-only on purpose: `backends` (KernelConfig) must see the enum
/// but does not link `gaia_matrix`.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <string>

#include "util/types.hpp"

namespace gaia::matrix {

enum class Precision : std::uint8_t {
  kFp64 = 0,
  kFp32,
  kBf16s,
};

inline constexpr int kNumPrecisions = 3;

/// Truncated-FP32 storage scalar ("bf16 storage"). Holds the high 16
/// bits of the IEEE-754 single-precision encoding: 1 sign + 8 exponent
/// + 7 mantissa bits — bfloat16's layout, chosen over IEEE half because
/// the coefficient planes span many decades (parallax factors vs
/// instrument terms) and range matters more than the last mantissa
/// bits, which refinement recovers anyway.
struct bf16s {
  std::uint16_t bits = 0;
};

/// fp64 -> bf16s: round to nearest FP32 first (the compiler's cast),
/// then truncate the low 16 mantissa bits. Truncation (not
/// round-to-nearest-even on the 16-bit boundary) keeps the conversion a
/// pure bit operation — deterministic across compilers and backends,
/// which the down-conversion round-trip tests pin down.
[[nodiscard]] inline bf16s to_bf16s(real v) {
  const auto u = std::bit_cast<std::uint32_t>(static_cast<float>(v));
  return bf16s{static_cast<std::uint16_t>(u >> 16)};
}

/// bf16s -> fp64: widen to the FP32 it truncates (low bits zero), then
/// to double. Exact — no rounding on the way back up.
[[nodiscard]] inline real from_bf16s(bf16s v) {
  const auto u = static_cast<std::uint32_t>(v.bits) << 16;
  return static_cast<real>(std::bit_cast<float>(u));
}

/// Kernel-side load converters: one overload per storage scalar, all
/// returning FP64. The CoefT = real instantiation is the identity, so
/// the fp64 kernel bodies compile to exactly the pre-precision code.
[[nodiscard]] inline real load_real(real v) { return v; }
[[nodiscard]] inline real load_real(float v) { return static_cast<real>(v); }
[[nodiscard]] inline real load_real(bf16s v) { return from_bf16s(v); }

/// Storage bytes of one coefficient under `p` (traffic accounting).
[[nodiscard]] inline constexpr int precision_bytes(Precision p) {
  switch (p) {
    case Precision::kFp64:
      return 8;
    case Precision::kFp32:
      return 4;
    case Precision::kBf16s:
      return 2;
  }
  return 8;
}

[[nodiscard]] inline std::string to_string(Precision p) {
  switch (p) {
    case Precision::kFp64:
      return "fp64";
    case Precision::kFp32:
      return "fp32";
    case Precision::kBf16s:
      return "bf16s";
  }
  return "unknown";
}

/// Accepts the canonical names plus the CLI short forms.
[[nodiscard]] inline std::optional<Precision> parse_precision(
    const std::string& name) {
  if (name == "fp64" || name == "double" || name == "f64")
    return Precision::kFp64;
  if (name == "fp32" || name == "single" || name == "float" || name == "f32")
    return Precision::kFp32;
  if (name == "bf16s" || name == "bf16" || name == "bfloat16")
    return Precision::kBf16s;
  return std::nullopt;
}

}  // namespace gaia::matrix
