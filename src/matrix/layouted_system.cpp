#include "matrix/layouted_system.hpp"

#include <algorithm>
#include <numeric>
#include <type_traits>

namespace gaia::matrix {

void LayoutedSystem::build(StorageLayout layout) {
  switch (layout) {
    case StorageLayout::kSeedAos:
      return;
    case StorageLayout::kSoaTiled:
      if (!soa_.built()) build_soa();
      return;
    case StorageLayout::kSlicedInstr:
      if (!soa_.built()) build_soa();
      if (!sliced_.built()) build_sliced();
      return;
  }
}

bool LayoutedSystem::has(StorageLayout layout) const {
  switch (layout) {
    case StorageLayout::kSeedAos:
      return true;
    case StorageLayout::kSoaTiled:
      return soa_.built();
    case StorageLayout::kSlicedInstr:
      return soa_.built() && sliced_.built();
  }
  return false;
}

void LayoutedSystem::build_soa() {
  const SystemMatrix& A = *A_;
  const row_index n = A.n_rows();
  const row_index n_tiles = (n + kSoaTileRows - 1) / kSoaTileRows;
  const row_index padded = n_tiles * kSoaTileRows;
  soa_.n_rows = n;
  soa_.padded_rows = padded;
  soa_.astro.assign(static_cast<std::size_t>(padded) * kAstroNnzPerRow, 0);
  soa_.att.assign(static_cast<std::size_t>(padded) * kAttNnzPerRow, 0);
  soa_.instr.assign(static_cast<std::size_t>(padded) * kInstrNnzPerRow, 0);
  soa_.glob.assign(static_cast<std::size_t>(padded), 0);

  const real* values = A.values().data();
  for (row_index t = 0; t < n_tiles; ++t) {
    const row_index row0 = t * kSoaTileRows;
    const row_index rows = std::min<row_index>(kSoaTileRows, n - row0);
    real* astro = soa_.astro.data() +
                  static_cast<std::size_t>(t) * kAstroNnzPerRow * kSoaTileRows;
    real* att = soa_.att.data() +
                static_cast<std::size_t>(t) * kAttNnzPerRow * kSoaTileRows;
    real* instr = soa_.instr.data() +
                  static_cast<std::size_t>(t) * kInstrNnzPerRow * kSoaTileRows;
    real* glob =
        soa_.glob.data() + static_cast<std::size_t>(t) * kSoaTileRows;
    for (row_index w = 0; w < rows; ++w) {
      const real* rec = values + (row0 + w) * kNnzPerRow;
      for (int i = 0; i < kAstroNnzPerRow; ++i)
        astro[i * kSoaTileRows + w] = rec[kAstroCoeffOffset + i];
      for (int i = 0; i < kAttNnzPerRow; ++i)
        att[i * kSoaTileRows + w] = rec[kAttCoeffOffset + i];
      for (int i = 0; i < kInstrNnzPerRow; ++i)
        instr[i * kSoaTileRows + w] = rec[kInstrCoeffOffset + i];
      glob[w] = rec[kGlobCoeffOffset];
    }
  }
}

void LayoutedSystem::build_sliced() {
  const SystemMatrix& A = *A_;
  const row_index n = A.n_rows();
  const std::int32_t* cols = A.instr_col().data();
  const real* values = A.values().data();

  // Slice count: every sigma window pads independently, so the row ->
  // slot permutation of one window never depends on the others.
  row_index n_slices = 0;
  for (row_index w0 = 0; w0 < n; w0 += kSliceSigmaWindow) {
    const row_index wrows = std::min<row_index>(kSliceSigmaWindow, n - w0);
    n_slices += (wrows + kSliceHeight - 1) / kSliceHeight;
  }
  sliced_.n_rows = n;
  sliced_.n_slices = n_slices;
  const std::size_t lanes =
      static_cast<std::size_t>(n_slices) * kSliceHeight;
  sliced_.slice_values.assign(lanes * kInstrNnzPerRow, 0);
  sliced_.slice_cols.assign(lanes * kInstrNnzPerRow, 0);
  sliced_.slice_rows.assign(lanes, row_index{-1});
  sliced_.row_slot.assign(static_cast<std::size_t>(n), row_index{-1});

  std::vector<row_index> order(kSliceSigmaWindow);
  row_index slice_base = 0;
  for (row_index w0 = 0; w0 < n; w0 += kSliceSigmaWindow) {
    const row_index wrows = std::min<row_index>(kSliceSigmaWindow, n - w0);
    order.resize(static_cast<std::size_t>(wrows));
    std::iota(order.begin(), order.end(), w0);
    // Stable sort by the row's first instrumental column: rows landing
    // in the same slice then scatter into neighbouring columns, and
    // ties keep source order so the build is deterministic.
    std::stable_sort(order.begin(), order.end(),
                     [&](row_index a, row_index b) {
                       return cols[a * kInstrNnzPerRow] <
                              cols[b * kInstrNnzPerRow];
                     });
    for (row_index p = 0; p < wrows; ++p) {
      const row_index r = order[static_cast<std::size_t>(p)];
      const row_index s = slice_base + p / kSliceHeight;
      const row_index lane = p % kSliceHeight;
      const std::size_t slot =
          static_cast<std::size_t>(s) * kSliceHeight +
          static_cast<std::size_t>(lane);
      sliced_.slice_rows[slot] = r;
      sliced_.row_slot[static_cast<std::size_t>(r)] =
          static_cast<row_index>(slot);
      for (int j = 0; j < kInstrNnzPerRow; ++j) {
        const std::size_t at =
            (static_cast<std::size_t>(s) * kInstrNnzPerRow +
             static_cast<std::size_t>(j)) *
                kSliceHeight +
            static_cast<std::size_t>(lane);
        sliced_.slice_values[at] =
            values[r * kNnzPerRow + kInstrCoeffOffset + j];
        sliced_.slice_cols[at] = cols[r * kInstrNnzPerRow + j];
      }
    }
    slice_base += (wrows + kSliceHeight - 1) / kSliceHeight;
  }
}

namespace {

/// Deterministic element-wise down-conversion of one FP64 stream.
/// `Src` is a span (the matrix's AoS records) or a vector (derived
/// streams); only the size/indexing contract matters.
template <typename Src, typename T>
void convert_plane(const Src& src, std::vector<T>& dst) {
  if (dst.size() == src.size()) return;  // already converted, still fresh
  dst.resize(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    if constexpr (std::is_same_v<T, bf16s>) {
      dst[i] = to_bf16s(src[i]);
    } else {
      dst[i] = static_cast<T>(src[i]);
    }
  }
}

}  // namespace

template <typename T>
void LayoutedSystem::convert_into(PrecisionStore<T>& store) {
  convert_plane(A_->values(), store.values);
  if (soa_.built()) {
    convert_plane(soa_.astro, store.soa_astro);
    convert_plane(soa_.att, store.soa_att);
    convert_plane(soa_.instr, store.soa_instr);
    convert_plane(soa_.glob, store.soa_glob);
  }
  if (sliced_.built()) convert_plane(sliced_.slice_values, store.slice_values);
}

template <typename T>
bool LayoutedSystem::store_has(const PrecisionStore<T>& store,
                               StorageLayout layout) const {
  if (!store.built()) return false;
  switch (layout) {
    case StorageLayout::kSeedAos:
      return true;
    case StorageLayout::kSoaTiled:
      return soa_.built() && store.soa_astro.size() == soa_.astro.size();
    case StorageLayout::kSlicedInstr:
      return soa_.built() && sliced_.built() &&
             store.soa_astro.size() == soa_.astro.size() &&
             store.slice_values.size() == sliced_.slice_values.size();
  }
  return false;
}

void LayoutedSystem::build_precision(Precision p) {
  switch (p) {
    case Precision::kFp64:
      return;  // the source of truth; nothing to derive
    case Precision::kFp32:
      convert_into(f32_);
      return;
    case Precision::kBf16s:
      convert_into(b16_);
      return;
  }
}

bool LayoutedSystem::has_precision(Precision p, StorageLayout layout) const {
  switch (p) {
    case Precision::kFp64:
      return has(layout);
    case Precision::kFp32:
      return store_has(f32_, layout);
    case Precision::kBf16s:
      return store_has(b16_, layout);
  }
  return false;
}

byte_size LayoutedSystem::padded_coefficient_bytes(
    StorageLayout layout) const {
  const SystemMatrix& A = *A_;
  const auto rows = static_cast<byte_size>(A.n_rows());
  switch (layout) {
    case StorageLayout::kSeedAos:
      // Every kernel streams the full record regardless of its slice.
      return rows * kNnzPerRow * sizeof(real);
    case StorageLayout::kSoaTiled: {
      const auto padded = static_cast<byte_size>(
          soa_.built() ? soa_.padded_rows
                       : (A.n_rows() + kSoaTileRows - 1) / kSoaTileRows *
                             kSoaTileRows);
      return padded * kNnzPerRow * sizeof(real);
    }
    case StorageLayout::kSlicedInstr: {
      const auto padded = static_cast<byte_size>(
          soa_.built() ? soa_.padded_rows
                       : (A.n_rows() + kSoaTileRows - 1) / kSoaTileRows *
                             kSoaTileRows);
      byte_size n_slices = 0;
      if (sliced_.built()) {
        n_slices = static_cast<byte_size>(sliced_.n_slices);
      } else {
        for (row_index w0 = 0; w0 < A.n_rows(); w0 += kSliceSigmaWindow) {
          const row_index wrows =
              std::min<row_index>(kSliceSigmaWindow, A.n_rows() - w0);
          n_slices += static_cast<byte_size>(
              (wrows + kSliceHeight - 1) / kSliceHeight);
        }
      }
      // Regular blocks from the SoA streams, instrumental from slices
      // (values + explicit columns per padded lane).
      const byte_size regular =
          padded * (kNnzPerRow - kInstrNnzPerRow) * sizeof(real);
      const byte_size instr =
          n_slices * kSliceHeight * kInstrNnzPerRow *
          (sizeof(real) + sizeof(std::int32_t));
      return regular + instr;
    }
  }
  return 0;
}

byte_size LayoutedSystem::compacted_coefficient_bytes() const {
  return static_cast<byte_size>(A_->n_rows()) * kNnzPerRow * sizeof(real);
}

}  // namespace gaia::matrix
