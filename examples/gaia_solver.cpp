/// \file gaia_solver.cpp
/// \brief The `solvergaiaSim` analog: generates a dataset of a requested
/// size in GB from a seed, runs the LSQR for a fixed number of
/// iterations on the selected backend, and reports the average iteration
/// time — the paper's measurement binary.
///
///   $ ./gaia_solver --size 64MB --iterations 100 --backend gpusim
///   $ ./gaia_solver --size 128MB --backend openmp --no-streams
///   $ ./gaia_solver --size 32MB --backend serial --ranks 4
///   $ ./gaia_solver --trace trace.json --metrics metrics.csv
///   $ ./gaia_solver --ranks 3 --trace-dir traces && gaia-critpath \
///         traces/trace.merged.json
///   $ GAIA_TRACE=trace.json GAIA_METRICS=metrics.csv ./gaia_solver
///   $ ./gaia_solver --checkpoint-dir ckpt --checkpoint-every 20
///   $ GAIA_FAULTS='kernel:p=0.01' ./gaia_solver --backend gpusim
#include <iostream>

#include "core/solver.hpp"
#include "dist/dist_lsqr.hpp"
#include "metrics/roofline.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "perfmodel/gpu_spec.hpp"
#include "resilience/fault_injector.hpp"
#include "util/cli.hpp"
#include "util/profiler.hpp"
#include "util/stats.hpp"
#include "util/string_utils.hpp"

int main(int argc, char** argv) {
  using namespace gaia;
  util::Cli cli("gaia_solver",
                "AVU-GSR LSQR solver on a seeded synthetic dataset");
  cli.add_option("size", "64MB",
                 "target system footprint (host-resident; use the "
                 "perf-model benches for the paper's 10-60GB sizes)");
  cli.add_option("iterations", "100", "LSQR iterations (no early stop)");
  cli.add_option("backend", "gpusim",
                 "serial | openmp | pstl | gpusim (aliases: cuda, hip, "
                 "sycl, stdpar, omp)");
  cli.add_option("seed", "1746", "dataset seed");
  cli.add_option("ranks", "1", "simulated MPI ranks (>1 uses dist solver)");
  cli.add_flag("no-streams", "disable aprod2 stream overlap");
  cli.add_flag("untuned", "use naive 256x256 kernel shapes");
  cli.add_flag("autotune",
               "search (blocks, threads) per kernel during warm-up "
               "launches and run the solve with the winners");
  cli.add_option("tuning-cache", "",
                 "CRC-sealed tuning cache file: loaded on startup (a "
                 "complete entry skips the search), winners sealed back "
                 "after a fresh search");
  cli.add_option("scatter", "atomic",
                 "aprod2 scatter strategy: atomic (hardware atomics, "
                 "default) | privatized (contention-free per-worker "
                 "slices + tree reduction) | auto (measured with "
                 "--autotune, cost-model predicted otherwise)");
  cli.add_option("layout", "seed",
                 "kernel storage layout: seed (row-record AoS, default) "
                 "| soa (cache-blocked SoA streams) | sliced (SoA + "
                 "slice-sorted instrumental block) | auto (measured with "
                 "--autotune, cost-model predicted otherwise); also "
                 "honored via GAIA_LAYOUT");
  cli.add_option("precision", "fp64",
                 "coefficient storage precision: fp64 (seed planes, "
                 "default) | fp32 | bf16s (truncated fp32) | auto "
                 "(measured with --autotune, cost-model predicted "
                 "otherwise); reduced precisions arm FP64 iterative "
                 "refinement after the solve; also honored via "
                 "GAIA_PRECISION");
  cli.add_option("refine-max", "6",
                 "outer refinement corrections before falling back to a "
                 "full fp64 re-solve");
  cli.add_option("shape", "",
                 "force one BLOCKSxTHREADS launch shape for all kernels "
                 "(e.g. 64x128); validated at parse time");
  cli.add_flag("validate", "solve from a ground truth and report recovery");
  cli.add_flag("profile",
               "collect and print the per-kernel time breakdown (the "
               "nsys/rocprof-style view of paper SV-A)");
  cli.add_option("trace", "",
                 "write a Chrome/Perfetto kernel timeline here (also "
                 "honored via GAIA_TRACE)");
  cli.add_option("trace-dir", "",
                 "distributed tracing (with --ranks > 1): write one "
                 "trace.rank<N>.json per rank plus a clock-aligned "
                 "trace.merged.json into this directory; feed the merged "
                 "file to gaia-critpath for critical-path / comm-exposure "
                 "analysis");
  cli.add_option("trace-capacity", "0",
                 "event cap per trace buffer; past it the oldest events "
                 "are dropped (sliding window; 0 = default 1M; also "
                 "honored via GAIA_TRACE_CAPACITY for --trace)");
  cli.add_option("metrics", "",
                 "write transfer/atomic/convergence counters as CSV here "
                 "(also honored via GAIA_METRICS; format switchable with "
                 "GAIA_METRICS_FMT=csv|openmetrics|json)");
  cli.add_option("metrics-openmetrics", "",
                 "write the per-kernel counters as an OpenMetrics text "
                 "exposition here (also honored via "
                 "GAIA_METRICS_OPENMETRICS)");
  cli.add_option("metrics-snapshot", "",
                 "write a CRC-sealed JSON metrics snapshot here, "
                 "refreshed on every checkpoint (also honored via "
                 "GAIA_METRICS_SNAPSHOT)");
  cli.add_option("telemetry-file", "",
                 "stream live JSONL telemetry samples (solver progress, "
                 "ETA, headline metrics) here; also honored via "
                 "GAIA_TELEMETRY");
  cli.add_option("telemetry-every-ms", "0",
                 "sampling period in milliseconds (0 = default 250; "
                 "also honored via GAIA_TELEMETRY_EVERY_MS)");
  cli.add_flag("progress",
               "live single-line progress/ETA display on stderr "
               "(also honored via GAIA_PROGRESS=1)");
  cli.add_option("metrics-every-s", "0",
                 "re-seal the --metrics-snapshot file every N seconds "
                 "while solving (0 = off; also honored via "
                 "GAIA_METRICS_EVERY_S)");
  cli.add_option("postmortem-dir", "",
                 "arm the flight recorder: any failure escaping the "
                 "solver seals a postmortem bundle into this directory "
                 "(read it with gaia-postmortem; also honored via "
                 "GAIA_POSTMORTEM)");
  cli.add_option("faults", "",
                 "deterministic fault-injection spec, e.g. "
                 "'kernel:p=0.01;h2d:p=0.005;rank:iter=200,rank=1;"
                 "ckpt:truncate' (also honored via GAIA_FAULTS)");
  cli.add_option("fault-seed", "1746",
                 "seed of the fault-injection decision stream (also "
                 "honored via GAIA_FAULT_SEED)");
  cli.add_option("checkpoint-every", "0",
                 "seal a checkpoint every N iterations (0 = off)");
  cli.add_option("checkpoint-dir", "",
                 "directory for the checkpoint rotation; resumes from "
                 "the newest valid checkpoint found there");
  cli.add_option("checkpoint-keep", "3", "checkpoints kept on disk");
  cli.add_option("max-restarts", "3",
                 "rank-death recoveries allowed (dist solver)");
  cli.add_option("health", "",
                 "silent-data-corruption defense: off (default) | detect "
                 "(stop with a diagnosis on an invariant trip) | repair "
                 "(roll back to a validated snapshot and replay, bounded "
                 "by the repair budget); also honored via GAIA_HEALTH");
  cli.add_option("health-every", "0",
                 "deep-check cadence in iterations (segment checksums, "
                 "true-residual recompute, cross-rank state hash); 0 = "
                 "default 25; also honored via GAIA_HEALTH_EVERY");
  try {
    if (!cli.parse(argc, argv)) return 0;

    // Arms tracing/metrics when requested; flushed at scope exit.
    obs::SessionExtras extras;
    extras.telemetry_path = cli.get("telemetry-file");
    extras.telemetry_every_ms =
        static_cast<int>(cli.get_int("telemetry-every-ms"));
    extras.progress_stderr = cli.get_flag("progress");
    extras.metrics_every_s = cli.get_double("metrics-every-s");
    extras.postmortem_dir = cli.get("postmortem-dir");
    obs::Session obs_session = obs::Session::from_env(
        cli.get("trace"), cli.get("metrics"), cli.get("metrics-openmetrics"),
        cli.get("metrics-snapshot"), extras);
    const auto trace_capacity =
        static_cast<std::size_t>(cli.get_int("trace-capacity"));
    if (trace_capacity > 0)
      obs::TraceRecorder::global().set_capacity(trace_capacity);

    // Arm deterministic fault injection (flag wins over GAIA_FAULTS).
    resilience::FaultInjector::global().configure_from_env(
        cli.get("faults"),
        static_cast<std::uint64_t>(cli.get_int("fault-seed")));

    const auto backend = backends::parse_backend(cli.get("backend"));
    GAIA_CHECK(backend.has_value(), "unknown backend: " + cli.get("backend"));

    core::SolverRunConfig config;
    config.footprint_bytes = cli.get_size("size");
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    config.lsqr.aprod.backend = *backend;
    config.lsqr.aprod.use_streams = !cli.get_flag("no-streams");
    config.lsqr.aprod.tuning =
        cli.get_flag("untuned") ? backends::TuningTable::untuned()
                                : backends::TuningTable::tuned_default();
    if (!cli.get("shape").empty())
      config.lsqr.aprod.tuning = backends::TuningTable::untuned(
          backends::parse_kernel_config(cli.get("shape")));
    config.autotune.enabled = cli.get_flag("autotune");
    config.autotune.cache_path = cli.get("tuning-cache");
    const auto scatter = core::parse_scatter_mode(cli.get("scatter"));
    GAIA_CHECK(scatter.has_value(),
               "unknown scatter mode: " + cli.get("scatter"));
    config.scatter = *scatter;
    std::string layout_source;
    const std::string layout_name =
        cli.get_or_env("layout", "GAIA_LAYOUT", &layout_source);
    const auto layout_mode = core::parse_layout_mode(layout_name);
    GAIA_CHECK(layout_mode.has_value(), "unknown layout mode (from " +
                                            layout_source +
                                            "): " + layout_name);
    config.storage_layout = *layout_mode;
    // Precision shares the layout grammar shape: flag wins over
    // GAIA_PRECISION wins over the default, and a bad token's error
    // names where the token actually came from.
    std::string precision_source;
    const std::string precision_name =
        cli.get_or_env("precision", "GAIA_PRECISION", &precision_source);
    const auto precision_mode = core::parse_precision_mode(precision_name);
    GAIA_CHECK(precision_mode.has_value(), "unknown precision mode (from " +
                                               precision_source +
                                               "): " + precision_name);
    config.precision = *precision_mode;
    config.refine.max_corrections =
        static_cast<int>(cli.get_int("refine-max"));
    config.lsqr.max_iterations = cli.get_int("iterations");
    config.checkpoint.directory = cli.get("checkpoint-dir");
    config.checkpoint.every = cli.get_int("checkpoint-every");
    config.checkpoint.keep_last =
        static_cast<int>(cli.get_int("checkpoint-keep"));
    if (config.checkpoint.every > 0 && config.checkpoint.directory.empty())
      config.checkpoint.directory = "gaia-checkpoints";
    config.lsqr.health = resilience::health_config_from_env(
        cli.get("health"), cli.get_int("health-every"));

    if (cli.get_flag("validate")) {
      auto gen_cfg =
          matrix::config_for_footprint(config.footprint_bytes, config.seed);
      gen_cfg.rhs_mode = matrix::RhsMode::kFromGroundTruth;
      gen_cfg.noise_sigma = 1e-6;
      config.generator = gen_cfg;
    }

    if (cli.get_flag("profile")) {
      util::Profiler::global().reset();
      util::Profiler::global().set_enabled(true);
    }

    const int ranks = static_cast<int>(cli.get_int("ranks"));
    std::cout << "backend: " << backends::to_string(*backend)
              << ", streams: " << std::boolalpha
              << config.lsqr.aprod.use_streams << ", ranks: " << ranks
              << "\n";

    if (ranks <= 1) {
      const core::SolverRunReport report = core::run_solver(config);
      std::cout << report.summary();
      std::cout << "        median iteration time "
                << util::format_seconds(
                       util::median(report.result.iteration_seconds))
                << '\n';
      std::cout << "device:  "
                << util::format_bytes(report.result.device_allocated_bytes)
                << " resident, "
                << util::format_bytes(report.result.h2d_bytes)
                << " H2D (one-time, before the iteration loop)\n";
    } else {
      auto gen_cfg = config.generator.value_or(
          matrix::config_for_footprint(config.footprint_bytes, config.seed));
      matrix::GeneratedSystem gen = matrix::generate_system(gen_cfg);
      dist::DistLsqrOptions dopts;
      dopts.n_ranks = ranks;
      dopts.lsqr = config.lsqr;
      dopts.checkpoint = config.checkpoint;
      dopts.max_restarts = static_cast<int>(cli.get_int("max-restarts"));
      dopts.autotune = config.autotune.enabled;
      dopts.autotune_search = config.autotune.search;
      dopts.trace_dir = cli.get("trace-dir");
      dopts.trace_capacity = trace_capacity;
      // Mirror the single-rank scatter policy: rank 0's winners (incl.
      // the strategy) are broadcast via the encoded tuning table.
      if (config.scatter == core::ScatterMode::kPrivatized) {
        for (backends::KernelId id : backends::all_kernels()) {
          if (!backends::kernel_uses_atomics(id)) continue;
          backends::KernelConfig kcfg = dopts.lsqr.aprod.tuning.get(id);
          kcfg.strategy = backends::ScatterStrategy::kPrivatized;
          dopts.lsqr.aprod.tuning.set(id, kcfg);
        }
        dopts.autotune_search.scatter =
            backends::ScatterStrategy::kPrivatized;
      } else if (config.scatter == core::ScatterMode::kAuto) {
        dopts.autotune_search.scatter = std::nullopt;
      }
      // Same mirroring for the layout policy: force a pinned derived
      // layout into every rank's table, open the search axis for auto.
      if (config.storage_layout == core::LayoutMode::kAuto) {
        dopts.autotune_search.layout = std::nullopt;
      } else if (config.storage_layout != core::LayoutMode::kSeed) {
        const backends::StorageLayout forced =
            config.storage_layout == core::LayoutMode::kSoa
                ? backends::StorageLayout::kSoaTiled
                : backends::StorageLayout::kSlicedInstr;
        for (backends::KernelId id : backends::all_kernels()) {
          backends::KernelConfig kcfg = dopts.lsqr.aprod.tuning.get(id);
          kcfg.layout = forced;
          dopts.lsqr.aprod.tuning.set(id, kcfg);
        }
        dopts.autotune_search.layout = forced;
      }
      // And for the precision policy: rank 0's winners carry the
      // precision field through the 5-real encoded broadcast.
      if (config.precision == core::PrecisionMode::kAuto) {
        dopts.autotune_search.precision = std::nullopt;
      } else if (config.precision != core::PrecisionMode::kFp64) {
        const backends::Precision forced =
            config.precision == core::PrecisionMode::kFp32
                ? backends::Precision::kFp32
                : backends::Precision::kBf16s;
        for (backends::KernelId id : backends::all_kernels()) {
          backends::KernelConfig kcfg = dopts.lsqr.aprod.tuning.get(id);
          kcfg.precision = forced;
          dopts.lsqr.aprod.tuning.set(id, kcfg);
        }
        dopts.autotune_search.precision = forced;
      }
      const dist::DistLsqrResult result = dist::dist_lsqr_solve(gen.A, dopts);
      std::cout << "dist solve: " << result.iterations
                << " iterations on " << result.final_ranks << " ranks\n"
                << "  mean iteration time (max over ranks): "
                << util::format_seconds(result.mean_iteration_s) << '\n'
                << "  |r| = " << result.rnorm << '\n';
      if (result.restarts > 0)
        std::cout << "  resilience: " << result.restarts
                  << " restart(s) after rank death, resumed from iteration "
                  << result.resumed_from_iteration << ", "
                  << result.checkpoints_written << " checkpoint(s) sealed\n";
      if (result.health.mode != resilience::HealthMode::kOff) {
        std::cout << "  health: mode "
                  << resilience::to_string(result.health.mode) << ", "
                  << result.health.checks << " deep check(s), "
                  << result.health.detections << " detection(s), "
                  << result.health.repairs << " repair(s)\n";
        if (!result.health.last_diagnosis.empty())
          std::cout << "          last diagnosis: "
                    << result.health.last_diagnosis << '\n';
      }
      for (int r = 0; r < result.final_ranks; ++r)
        std::cout << "  rank " << r << ": " << result.partition.rows_of(r)
                  << " rows, " << result.partition.stars_of(r) << " stars\n";
      std::cout << "  cluster metrics: " << result.cluster_metrics.size()
                << " row(s), "
                << (result.cluster_metrics_complete ? "complete"
                                                    : "partial")
                << " aggregation over " << result.rank_metrics.size()
                << " rank(s)\n";
      std::cout << "  comm (worst rank): "
                << util::format_seconds(result.comm_seconds_max)
                << " in collectives ("
                << util::format_seconds(result.comm_wait_seconds_max)
                << " barrier wait), exposure "
                << result.comm_exposure_fraction_max << '\n';
      // Roofline placement over the cluster-aggregated kernel rows (the
      // dist driver already published the matching gauges).
      {
        const perfmodel::GpuSpec spec =
            perfmodel::gpu_spec(perfmodel::Platform::kA100);
        const metrics::RooflineMachine machine{
            spec.name, spec.peak_bw_gbs, spec.fp64_tflops * 1000.0,
            spec.spmv_bw_efficiency};
        const std::string table = metrics::roofline_table(
            metrics::roofline_points(obs::MetricsRegistry::global().snapshot(),
                                     machine),
            machine);
        if (!table.empty()) std::cout << table;
      }
      if (!result.merged_trace_file.empty()) {
        std::cout << "  trace: " << result.trace_files.size()
                  << " per-rank file(s) in " << dopts.trace_dir
                  << ", merged timeline " << result.merged_trace_file
                  << "\n         analyze with: gaia-critpath "
                  << result.merged_trace_file << '\n';
        if (result.trace_dropped_events > 0)
          std::cout << "         " << result.trace_dropped_events
                    << " event(s) dropped by the capacity cap\n";
      }
    }
    if (cli.get_flag("profile")) {
      std::cout << "\nper-region time breakdown (all ranks):\n"
                << util::Profiler::global().report();
      std::cout << "aprod share: "
                << util::Profiler::global().fraction_of("aprod") * 100
                << " % (paper SV-A: the products dominate)\n";
      util::Profiler::global().set_enabled(false);
    }
    if (obs_session.tracing())
      std::cout << "trace timeline: " << obs_session.trace_path()
                << " (open in chrome://tracing or ui.perfetto.dev)\n";
    if (!obs_session.metrics_path().empty())
      std::cout << "metrics:        " << obs_session.metrics_path() << '\n';
    if (!obs_session.openmetrics_path().empty())
      std::cout << "openmetrics:    " << obs_session.openmetrics_path()
                << '\n';
    if (!obs_session.snapshot_path().empty())
      std::cout << "snapshot:       " << obs_session.snapshot_path() << '\n';
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
