/// \file validate_ports.cpp
/// \brief Cross-port correctness validation (paper SV-C / Fig. 6): solve
/// one astrometric-scale dataset with the serial "production" reference
/// and with every parallel backend, then check 1-sigma agreement and the
/// 10 micro-arcsecond accuracy goal.
///
///   $ ./validate_ports
///   $ ./validate_ports --stars 1500 --iterations 300
#include <iostream>

#include "util/cli.hpp"
#include "util/table.hpp"
#include "validation/cross_backend.hpp"

int main(int argc, char** argv) {
  using namespace gaia;
  util::Cli cli("validate_ports", "cross-backend solution validation");
  cli.add_option("stars", "600", "stars in the validation dataset");
  cli.add_option("iterations", "250", "LSQR iteration budget");
  cli.add_option("seed", "42", "dataset seed");
  try {
    if (!cli.parse(argc, argv)) return 0;

    validation::ValidationOptions opts;
    opts.dataset.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    opts.dataset.n_stars = cli.get_int("stars");
    opts.dataset.obs_per_star_mean = 30.0;
    opts.dataset.att_dof_per_axis = 64;
    opts.dataset.n_instr_params = 48;
    opts.dataset.noise_sigma = 0.05;
    opts.lsqr.max_iterations = cli.get_int("iterations");
    opts.lsqr.atol = 1e-13;
    opts.lsqr.btol = 1e-13;

    std::cout << "solving the validation dataset with the serial reference "
                 "and every port...\n\n";
    const auto campaign = validation::run_validation(opts);

    util::Table t({"port", "1-sigma agr.", "max |dx| (rad)", "sigma(d se)",
                   "slope", "verdict"});
    for (const auto& port : campaign.ports) {
      const bool pass = port.solution.below_accuracy_goal &&
                        port.std_errors.below_accuracy_goal &&
                        port.solution.sigma_agreement > 0.99;
      t.add_row({backends::to_string(port.backend),
                 util::Table::num(port.solution.sigma_agreement * 100, 1) +
                     " %",
                 util::Table::num(port.solution.max_abs_diff /
                                      kMicroArcsecInRad,
                                  4) +
                     " uas",
                 util::Table::num(port.std_errors.stddev_diff /
                                      kMicroArcsecInRad,
                                  4) +
                     " uas",
                 util::Table::num(port.one_to_one.slope, 6),
                 pass ? "PASS" : "FAIL"});
    }
    std::cout << t.str() << '\n';
    std::cout << "acceptance: agreement within 1 sigma of the reference and "
                 "differences below the 10 uas goal (paper SV-C)\n";
    std::cout << (campaign.all_passed ? "ALL PORTS VALIDATED\n"
                                      : "VALIDATION FAILURES PRESENT\n");
    return campaign.all_passed ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
