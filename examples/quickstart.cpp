/// \file quickstart.cpp
/// \brief Smallest end-to-end use of the library: generate a synthetic
/// Gaia-like system, solve it with the preconditioned LSQR on the
/// GPU-shaped backend, and inspect the result.
///
///   $ ./quickstart
#include <iostream>

#include "core/lsqr.hpp"
#include "matrix/generator.hpp"

int main() {
  using namespace gaia;

  // 1. Describe the dataset: 2000 stars with ~40 observations each,
  //    attitude/instrumental/global sections like production, and a
  //    ground truth so we can check the recovery.
  matrix::GeneratorConfig dataset;
  dataset.seed = 2024;
  dataset.n_stars = 2000;
  dataset.obs_per_star_mean = 40.0;
  dataset.att_dof_per_axis = 64;
  dataset.n_instr_params = 48;
  dataset.rhs_mode = matrix::RhsMode::kFromGroundTruth;
  dataset.noise_sigma = 1e-3;

  std::cout << "generating synthetic AVU-GSR system...\n";
  matrix::GeneratedSystem gen = matrix::generate_system(dataset);
  const auto& A = gen.A;
  std::cout << "  " << A.n_obs() << " observations + " << A.n_constraints()
            << " constraints, " << A.n_cols() << " unknowns\n";

  // 2. Configure the solver: CUDA-shaped backend, tuned kernels,
  //    aprod2 kernels overlapped in streams, standard errors on.
  core::LsqrOptions options;
  options.aprod.backend = backends::BackendKind::kGpuSim;
  options.aprod.tuning = backends::TuningTable::tuned_default();
  options.aprod.use_streams = true;
  options.max_iterations = 300;
  options.atol = 1e-12;
  options.btol = 1e-12;

  std::cout << "running preconditioned LSQR...\n";
  core::LsqrResult result = core::lsqr_solve(A, options);

  std::cout << "  stopped after " << result.iterations
            << " iterations: " << core::to_string(result.istop) << '\n'
            << "  |r| = " << result.rnorm << ", cond(A) ~ " << result.acond
            << '\n'
            << "  mean iteration time: " << result.mean_iteration_s * 1e3
            << " ms\n";

  // 3. Compare against the ground truth the dataset was built from.
  double max_err = 0, mean_se = 0;
  const auto& truth = *gen.ground_truth;
  for (std::size_t i = 0; i < result.x.size(); ++i) {
    max_err = std::max(max_err, std::abs(result.x[i] - truth[i]));
    mean_se += result.std_errors[i];
  }
  mean_se /= static_cast<double>(result.std_errors.size());
  std::cout << "  max |x - x_true| = " << max_err
            << " (noise level 1e-3), mean standard error = " << mean_se
            << '\n';
  return 0;
}
