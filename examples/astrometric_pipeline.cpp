/// \file astrometric_pipeline.cpp
/// \brief The full AVU-GSR pipeline of the paper's Fig. 1, end to end:
///
///   System Generation  -> scan-law simulator builds the observation
///                         equations (matrix/scanlaw)
///   Weights Calculation-> formal + robust (Huber) observation weights
///                         (core/weights)
///   Solver             -> distributed preconditioned LSQR on simulated
///                         MPI ranks (dist)
///   Solution De-rotation-> rigid rotation/spin removed against
///                         reference stars (core/derotation)
///   Verification       -> recovery vs the generated ground truth
///
///   $ ./astrometric_pipeline
///   $ ./astrometric_pipeline --stars 800 --ranks 4 --outliers 50
#include <iostream>

#include "core/derotation.hpp"
#include "core/weights.hpp"
#include "dist/dist_lsqr.hpp"
#include "matrix/scanlaw.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "validation/residual_analysis.hpp"

int main(int argc, char** argv) {
  using namespace gaia;
  util::Cli cli("astrometric_pipeline",
                "scan law -> weights -> distributed LSQR -> de-rotation");
  cli.add_option("stars", "400", "stars in the simulated catalogue");
  cli.add_option("ranks", "2", "simulated MPI ranks");
  cli.add_option("outliers", "20", "corrupted observations to inject");
  cli.add_option("iterations", "400", "LSQR iteration budget");
  cli.add_option("seed", "7", "simulation seed");
  try {
    if (!cli.parse(argc, argv)) return 0;

    // --- 1. system generation from the scanning law ---------------------
    matrix::ScanLawConfig scan;
    scan.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    scan.n_stars = cli.get_int("stars");
    scan.transits_per_star_mean = 14.0;
    scan.att_dof_per_axis = 32;
    scan.n_instr_params = 24;
    scan.noise_sigma = 1e-3;
    std::cout << "[1/6] generating observations from the scanning law...\n";
    matrix::ScanLawSystem sys = matrix::generate_from_scanlaw(scan);
    std::cout << "      " << sys.A.n_obs() << " transits of "
              << scan.n_stars << " stars, " << sys.A.n_cols()
              << " unknowns\n";

    // --- inject outliers the robust weighting must absorb ---------------
    {
      util::Xoshiro256 rng(scan.seed ^ 0xabcdull);
      auto b = sys.A.known_terms();
      for (long long k = 0; k < cli.get_int("outliers"); ++k)
        b[rng.uniform_index(static_cast<std::uint64_t>(sys.A.n_obs()))] +=
            rng.normal(0.0, 50.0 * scan.noise_sigma);
    }

    // --- 2. weights: pilot solve -> residuals -> Huber ------------------
    std::cout << "[2/6] computing robust observation weights...\n";
    core::LsqrOptions solver_opts;
    solver_opts.aprod.backend = backends::BackendKind::kGpuSim;
    solver_opts.max_iterations = cli.get_int("iterations");
    solver_opts.atol = 1e-12;
    solver_opts.btol = 1e-12;
    const auto pilot = core::lsqr_solve(sys.A, solver_opts);
    const auto residuals = core::compute_residuals(sys.A, pilot.x);
    const auto factors = core::huber_factors(residuals);
    int downweighted = 0;
    for (real f : factors) downweighted += (f < 1.0);
    std::cout << "      " << downweighted
              << " observations downweighted by the Huber pass\n";
    matrix::SystemMatrix weighted = sys.A;
    core::apply_row_weights(weighted, factors);

    // --- 3. distributed solve -------------------------------------------
    const int ranks = static_cast<int>(cli.get_int("ranks"));
    std::cout << "[3/6] solving on " << ranks << " simulated MPI ranks...\n";
    dist::DistLsqrOptions dopts;
    dopts.n_ranks = ranks;
    dopts.lsqr = solver_opts;
    auto solved = dist::dist_lsqr_solve(weighted, dopts);
    std::cout << "      " << solved.iterations << " iterations, |r| = "
              << solved.rnorm << ", mean iteration (max over ranks) "
              << solved.mean_iteration_s * 1e3 << " ms\n";

    // --- 4. de-rotation ---------------------------------------------------
    std::cout << "[4/6] de-rotating against reference stars...\n";
    std::vector<row_index> refs;
    for (row_index s = 0; s < scan.n_stars; s += 4) refs.push_back(s);
    const core::FrameRotation removed = core::derotate_solution(
        solved.x, sys.A.layout(), sys.catalogue, refs);
    std::cout << "      removed rotation ("
              << removed.ex << ", " << removed.ey << ", " << removed.ez
              << ") rad, spin (" << removed.wx << ", " << removed.wy << ", "
              << removed.wz << ") rad/yr\n";

    // --- 5. residual time-series analysis ---------------------------------
    std::cout << "[5/6] analyzing post-fit residual time series...\n";
    {
      auto post_res = core::compute_residuals(weighted, solved.x);
      post_res.resize(static_cast<std::size_t>(sys.A.n_obs()));
      const auto analysis =
          validation::analyze_residuals(post_res, sys.row_transits);
      std::cout << "      sigma = " << analysis.global_stddev
                << ", trend = " << analysis.trend_slope
                << " /yr, lag-1 autocorr = "
                << analysis.lag1_autocorrelation << " -> "
                << (analysis.looks_white(0.05, 0.6) ? "white"
                                                     : "structured")
                << '\n';
    }

    // --- 6. verification ----------------------------------------------------
    std::cout << "[6/6] verifying against the generated ground truth...\n";
    // The ground truth itself carries an (unobservable) rotation; remove
    // it the same way before comparing.
    std::vector<real> truth = sys.ground_truth;
    core::derotate_solution(truth, sys.A.layout(), sys.catalogue, refs);
    std::vector<double> errors;
    errors.reserve(static_cast<std::size_t>(
        sys.A.layout().n_astro_params()));
    for (col_index c = 0; c < sys.A.layout().n_astro_params(); ++c)
      errors.push_back(std::abs(solved.x[static_cast<std::size_t>(c)] -
                                truth[static_cast<std::size_t>(c)]));
    const auto summary = util::summarize(errors);
    std::cout << "      astrometric recovery: median |dx| = "
              << summary.median << ", p95 = "
              << util::percentile(errors, 95)
              << " (observation noise " << scan.noise_sigma << ")\n";
    const bool ok = summary.median < 10 * scan.noise_sigma;
    std::cout << (ok ? "PIPELINE OK\n" : "PIPELINE DEGRADED\n");
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
