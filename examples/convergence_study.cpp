/// \file convergence_study.cpp
/// \brief Convergence behaviour of the preconditioned LSQR: records the
/// per-iteration residual history with and without the column-norm
/// preconditioner and with damping, and prints the curves — the "why the
/// production solver preconditions" story behind paper SIII-B.
///
///   $ ./convergence_study
///   $ ./convergence_study --stars 600 --skew 1e5
#include <algorithm>
#include <iostream>

#include "core/lsqr.hpp"
#include "matrix/generator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gaia;
  util::Cli cli("convergence_study",
                "LSQR convergence with/without preconditioning");
  cli.add_option("stars", "300", "stars in the test system");
  cli.add_option("skew", "1e4",
                 "column-scale skew injected into the system (conditioning)");
  cli.add_option("iterations", "600", "iteration budget");
  try {
    if (!cli.parse(argc, argv)) return 0;

    matrix::GeneratorConfig cfg;
    cfg.seed = 99;
    cfg.n_stars = cli.get_int("stars");
    cfg.obs_per_star_mean = 20.0;
    cfg.att_dof_per_axis = 48;
    cfg.n_instr_params = 32;
    auto gen = matrix::generate_system(cfg);

    // Skew some columns to worsen the conditioning, as real systems do
    // (parallax vs proper-motion partials differ by orders of magnitude).
    const double skew = cli.get_double("skew");
    auto vals = gen.A.values();
    for (row_index r = 0; r < gen.A.n_rows(); ++r) {
      vals[static_cast<std::size_t>(r) * kNnzPerRow + 2] *= skew;   // parallax
      vals[static_cast<std::size_t>(r) * kNnzPerRow + 3] /= skew;   // mu_a*
    }

    auto run = [&](bool precondition, real damp) {
      core::LsqrOptions opts;
      opts.aprod.backend = backends::BackendKind::kGpuSim;
      opts.max_iterations = cli.get_int("iterations");
      opts.atol = 1e-10;
      opts.btol = 1e-10;
      opts.precondition = precondition;
      opts.damp = damp;
      opts.record_history = true;
      opts.compute_std_errors = false;
      return core::lsqr_solve(gen.A, opts);
    };

    const auto plain = run(false, 0);
    const auto precond = run(true, 0);
    const auto damped = run(true, 0.1);

    std::cout << "iterations to the 1e-10 stopping tests:\n"
              << "  unpreconditioned: " << plain.iterations
              << "  (cond ~ " << plain.acond << ")\n"
              << "  preconditioned:   " << precond.iterations
              << "  (cond ~ " << precond.acond << ")\n"
              << "  + damping 0.1:    " << damped.iterations << "\n\n";

    std::cout << "relative residual |r|/|r0| every 25 iterations:\n";
    util::Table t({"iteration", "unpreconditioned", "preconditioned",
                   "precond + damp"});
    const auto at = [](const core::LsqrResult& r, std::size_t k) {
      if (r.rnorm_history.empty()) return std::string("-");
      const std::size_t i = std::min(k, r.rnorm_history.size() - 1);
      return util::Table::num(r.rnorm_history[i] / r.rnorm_history.front(),
                              6);
    };
    const std::size_t span = std::max({plain.rnorm_history.size(),
                                       precond.rnorm_history.size(),
                                       damped.rnorm_history.size()});
    for (std::size_t k = 0; k < span; k += 25) {
      t.add_row({std::to_string(k), at(plain, k), at(precond, k),
                 at(damped, k)});
    }
    std::cout << t.str();
    std::cout << "\ncolumn equilibration collapses the condition number, "
                 "which is why the production AVU-GSR runs a "
                 "*preconditioned* LSQR (paper SIII-B).\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
