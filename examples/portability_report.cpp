/// \file portability_report.cpp
/// \brief Reproduces the paper's headline analysis interactively: runs
/// the framework x platform measurement campaign at a chosen problem
/// size and prints the efficiency cascade and Pennycook-P scores
/// (terminal rendition of Fig. 3).
///
///   $ ./portability_report --size-gb 10
///   $ ./portability_report --size-gb 60
#include <iostream>

#include <fstream>

#include "metrics/cascade.hpp"
#include "metrics/report.hpp"
#include "metrics/pennycook.hpp"
#include "perfmodel/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gaia;
  using namespace gaia::perfmodel;

  util::Cli cli("portability_report",
                "framework x platform performance-portability campaign");
  cli.add_option("size-gb", "10", "problem size in GB (paper: 10, 30, 60)");
  cli.add_option("markdown", "", "also write a markdown report to this path");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const double gb = cli.get_double("size-gb");
    const auto footprint = static_cast<byte_size>(gb * kGiB);

    const auto platforms = platforms_for_size(footprint);
    std::cout << "problem size " << gb << " GB fits "
              << platforms.size() << " platforms:";
    for (Platform p : platforms) std::cout << ' ' << to_string(p);
    std::cout << "\n\n";

    PlatformSimulator sim;
    const auto m =
        sim.measure_campaign(footprint, all_frameworks(), platforms);

    // Iteration-time table (Fig. 4 analog).
    std::vector<std::string> headers = {"framework"};
    for (const auto& p : m.platforms()) headers.push_back(p + " (ms)");
    util::Table times(headers);
    for (std::size_t a = 0; a < m.n_applications(); ++a) {
      std::vector<std::string> row = {m.applications()[a]};
      for (std::size_t p = 0; p < m.n_platforms(); ++p) {
        row.push_back(m.supported(a, p)
                          ? util::Table::num(m.time(a, p) * 1e3, 1)
                          : "n/a");
      }
      times.add_row(row);
    }
    std::cout << "average LSQR iteration time\n" << times.str() << '\n';

    // Cascade + P (Fig. 3 analog).
    const auto cascade = metrics::build_cascade(m);
    std::cout << "application-efficiency cascade (running Pennycook P)\n\n"
              << metrics::render_cascade(cascade);

    const auto p_nv = metrics::pennycook_scores(m, [&] {
      std::vector<std::string> nv;
      for (Platform p : platforms)
        if (gpu_spec(p).vendor == Vendor::kNvidia) nv.push_back(to_string(p));
      return nv;
    }());
    util::Table ptab({"framework", "P (all)", "P (NVIDIA-only)"});
    const auto p_all = metrics::pennycook_scores(m);
    for (std::size_t a = 0; a < m.n_applications(); ++a) {
      ptab.add_row({m.applications()[a], util::Table::num(p_all[a], 3),
                    util::Table::num(p_nv[a], 3)});
    }
    std::cout << "Pennycook P summary\n" << ptab.str();

    if (const std::string md_path = cli.get("markdown"); !md_path.empty()) {
      metrics::ReportOptions ropts;
      ropts.title = "Gaia AVU-GSR portability campaign";
      ropts.subtitle = std::to_string(gb) + " GB problem";
      std::ofstream f(md_path);
      GAIA_CHECK(f.good(), "cannot write markdown report: " + md_path);
      f << metrics::markdown_report(m, ropts);
      std::cout << "markdown report written to " << md_path << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
