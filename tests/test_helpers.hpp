/// \file test_helpers.hpp
/// \brief Shared fixtures/utilities for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "matrix/generator.hpp"

namespace gaia::testing {

/// Small, deterministic system usable with the dense oracle.
inline matrix::GeneratorConfig small_config(std::uint64_t seed = 42) {
  matrix::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.n_stars = 24;
  cfg.obs_per_star_mean = 9.0;
  cfg.obs_per_star_min = 5;
  cfg.att_dof_per_axis = 16;
  cfg.n_instr_params = 12;
  cfg.has_global = true;
  cfg.constraints_per_axis = 1;
  return cfg;
}

/// Medium system for concurrency-sensitive tests (enough rows that the
/// pool actually splits work and atomics actually collide).
inline matrix::GeneratorConfig medium_config(std::uint64_t seed = 7) {
  matrix::GeneratorConfig cfg = small_config(seed);
  cfg.n_stars = 400;
  cfg.obs_per_star_mean = 25.0;
  cfg.att_dof_per_axis = 64;
  cfg.n_instr_params = 48;
  return cfg;
}

inline double max_abs_diff(std::span<const double> a,
                           std::span<const double> b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

/// Relative L2 error ||a-b|| / max(||b||, tiny).
inline double rel_l2_error(std::span<const double> a,
                           std::span<const double> b) {
  EXPECT_EQ(a.size(), b.size());
  double num = 0, den = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += b[i] * b[i];
  }
  return std::sqrt(num) / std::max(std::sqrt(den), 1e-300);
}

}  // namespace gaia::testing
