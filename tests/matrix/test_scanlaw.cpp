#include "matrix/scanlaw.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/lsqr.hpp"
#include "matrix/dense.hpp"
#include "test_helpers.hpp"

namespace gaia::matrix {
namespace {

ScanLawConfig small_scanlaw(std::uint64_t seed = 7) {
  ScanLawConfig cfg;
  cfg.seed = seed;
  cfg.n_stars = 40;
  cfg.transits_per_star_mean = 10.0;
  cfg.att_dof_per_axis = 24;
  cfg.n_instr_params = 16;
  return cfg;
}

TEST(Catalogue, DeterministicAndOnSphere) {
  const auto a = make_catalogue(100, 5);
  const auto b = make_catalogue(100, 5);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].alpha, b[i].alpha);
    EXPECT_EQ(a[i].delta, b[i].delta);
    EXPECT_GE(a[i].alpha, 0.0);
    EXPECT_LT(a[i].alpha, 2 * 3.14159266);
    EXPECT_GT(a[i].delta, -1.5708);
    EXPECT_LT(a[i].delta, 1.5708);
  }
}

TEST(Catalogue, CoversBothHemispheres) {
  const auto stars = make_catalogue(500, 6);
  int north = 0;
  for (const auto& s : stars) north += (s.delta > 0);
  EXPECT_GT(north, 150);
  EXPECT_LT(north, 350);
}

TEST(Transits, SortedWithinMission) {
  const auto cfg = small_scanlaw();
  const auto stars = make_catalogue(cfg.n_stars, cfg.seed);
  for (row_index s = 0; s < 5; ++s) {
    const auto transits = transits_for(cfg, stars[static_cast<std::size_t>(s)], s);
    EXPECT_GE(static_cast<row_index>(transits.size()),
              cfg.transits_per_star_min);
    for (std::size_t k = 0; k < transits.size(); ++k) {
      EXPECT_GE(transits[k].time, 0.0);
      EXPECT_LE(transits[k].time, cfg.mission_years);
      if (k > 0) EXPECT_GE(transits[k].time, transits[k - 1].time);
    }
  }
}

TEST(Transits, DifferentStarsGetDifferentSequences) {
  const auto cfg = small_scanlaw();
  const auto stars = make_catalogue(cfg.n_stars, cfg.seed);
  const auto t0 = transits_for(cfg, stars[0], 0);
  const auto t1 = transits_for(cfg, stars[1], 1);
  bool differ = t0.size() != t1.size();
  for (std::size_t k = 0; !differ && k < t0.size(); ++k)
    differ = t0[k].time != t1[k].time || t0[k].scan_angle != t1[k].scan_angle;
  EXPECT_TRUE(differ);
}

TEST(ScanLawSystem, StructurePassesValidation) {
  const auto sys = generate_from_scanlaw(small_scanlaw());
  EXPECT_NO_THROW(sys.A.validate_structure());
  EXPECT_EQ(sys.row_transits.size(),
            static_cast<std::size_t>(sys.A.n_obs()));
  EXPECT_EQ(sys.catalogue.size(),
            static_cast<std::size_t>(sys.A.layout().n_stars()));
}

TEST(ScanLawSystem, DeterministicForEqualConfig) {
  const auto a = generate_from_scanlaw(small_scanlaw(9));
  const auto b = generate_from_scanlaw(small_scanlaw(9));
  ASSERT_EQ(a.A.n_rows(), b.A.n_rows());
  EXPECT_TRUE(std::equal(a.A.values().begin(), a.A.values().end(),
                         b.A.values().begin()));
}

TEST(ScanLawSystem, AstroPartialsFollowObservationEquation) {
  const auto sys = generate_from_scanlaw(small_scanlaw());
  // sin^2 + cos^2 of the position partials must be 1 per row; proper
  // motion partials are (t - t_ref) times the position ones.
  for (row_index r = 0; r < sys.A.n_obs(); ++r) {
    const auto rv = sys.A.row_values(r);
    const real sp = rv[kAstroCoeffOffset + 0];
    const real cp = rv[kAstroCoeffOffset + 1];
    EXPECT_NEAR(sp * sp + cp * cp, 1.0, 1e-12) << "row " << r;
    const real dt = sys.row_transits[static_cast<std::size_t>(r)].time -
                    2.5;  // t_ref = mission/2
    EXPECT_NEAR(rv[kAstroCoeffOffset + 3], dt * sp, 1e-12);
    EXPECT_NEAR(rv[kAstroCoeffOffset + 4], dt * cp, 1e-12);
    // Parallax factor is a projection of a unit displacement.
    EXPECT_LE(std::abs(rv[kAstroCoeffOffset + 2]), 1.0 + 1e-12);
  }
}

TEST(ScanLawSystem, AttitudeIndexTracksTransitTime) {
  const auto sys = generate_from_scanlaw(small_scanlaw());
  const auto idx = sys.A.matrix_index_att();
  const col_index span =
      sys.A.layout().att_stride() - kAttBlockSize;
  for (row_index r = 0; r < sys.A.n_obs(); ++r) {
    const real phase =
        sys.row_transits[static_cast<std::size_t>(r)].time / 5.0;
    const auto expect = static_cast<col_index>(std::floor(
        phase * (static_cast<double>(span) + 1) * 0.999999));
    EXPECT_EQ(idx[static_cast<std::size_t>(r)],
              std::clamp<col_index>(expect, 0, span))
        << "row " << r;
  }
}

TEST(ScanLawSystem, RhsConsistentWithGroundTruth) {
  auto cfg = small_scanlaw(11);
  cfg.noise_sigma = 0.0;
  const auto sys = generate_from_scanlaw(cfg);
  const auto M = to_dense(sys.A);
  const auto expect =
      dense_matvec(M, sys.A.n_rows(), sys.A.n_cols(), sys.ground_truth);
  for (row_index r = 0; r < sys.A.n_obs(); ++r) {
    EXPECT_NEAR(sys.A.known_terms()[static_cast<std::size_t>(r)],
                expect[static_cast<std::size_t>(r)], 1e-10)
        << "row " << r;
  }
}

TEST(ScanLawSystem, SolvableByLsqr) {
  auto cfg = small_scanlaw(12);
  cfg.transits_per_star_mean = 14.0;
  const auto sys = generate_from_scanlaw(cfg);
  core::LsqrOptions opts;
  opts.aprod.backend = backends::BackendKind::kSerial;
  opts.aprod.use_streams = false;
  opts.max_iterations = 600;
  opts.atol = 1e-12;
  opts.btol = 1e-12;
  const auto result = core::lsqr_solve(sys.A, opts);
  const auto M = to_dense(sys.A);
  const auto x_ref = dense_least_squares(M, sys.A.n_rows(), sys.A.n_cols(),
                                         sys.A.known_terms());
  EXPECT_LT(gaia::testing::rel_l2_error(result.x, x_ref), 1e-5);
}

TEST(ScanLawSystem, RejectsBadConfig) {
  auto cfg = small_scanlaw();
  cfg.mission_years = 0;
  EXPECT_THROW(generate_from_scanlaw(cfg), gaia::Error);
  cfg = small_scanlaw();
  cfg.spin_period_hours = 0;
  const auto stars = make_catalogue(4, 1);
  EXPECT_THROW(transits_for(cfg, stars[0], 0), gaia::Error);
}

}  // namespace
}  // namespace gaia::matrix
