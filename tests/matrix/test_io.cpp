#include "matrix/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "matrix/generator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gaia::matrix {
namespace {

TEST(Io, RoundTripPreservesEverything) {
  const auto gen = generate_system(gaia::testing::small_config(21));
  std::stringstream buf;
  save_system(gen.A, buf);
  const SystemMatrix B = load_system(buf);

  EXPECT_EQ(B.layout(), gen.A.layout());
  EXPECT_EQ(B.n_obs(), gen.A.n_obs());
  EXPECT_EQ(B.n_constraints(), gen.A.n_constraints());
  EXPECT_TRUE(std::equal(B.values().begin(), B.values().end(),
                         gen.A.values().begin()));
  EXPECT_TRUE(std::equal(B.matrix_index_astro().begin(),
                         B.matrix_index_astro().end(),
                         gen.A.matrix_index_astro().begin()));
  EXPECT_TRUE(std::equal(B.matrix_index_att().begin(),
                         B.matrix_index_att().end(),
                         gen.A.matrix_index_att().begin()));
  EXPECT_TRUE(std::equal(B.instr_col().begin(), B.instr_col().end(),
                         gen.A.instr_col().begin()));
  EXPECT_TRUE(std::equal(B.known_terms().begin(), B.known_terms().end(),
                         gen.A.known_terms().begin()));
  EXPECT_TRUE(std::equal(B.star_row_start().begin(),
                         B.star_row_start().end(),
                         gen.A.star_row_start().begin()));
  EXPECT_NO_THROW(B.validate_structure());
}

TEST(Io, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "gaia_sys_test.bin";
  const auto gen = generate_system(gaia::testing::small_config(22));
  save_system(gen.A, path);
  const SystemMatrix B = load_system(path);
  EXPECT_EQ(B.n_rows(), gen.A.n_rows());
  EXPECT_TRUE(std::equal(B.values().begin(), B.values().end(),
                         gen.A.values().begin()));
  std::remove(path.c_str());
}

TEST(Io, BadMagicRejected) {
  std::stringstream buf("NOTAGAIA-file-content");
  EXPECT_THROW(load_system(buf), gaia::Error);
}

TEST(Io, TruncatedStreamRejected) {
  const auto gen = generate_system(gaia::testing::small_config(23));
  std::stringstream buf;
  save_system(gen.A, buf);
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_system(cut), gaia::Error);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW(load_system(std::string("/no/such/dir/x.bin")), gaia::Error);
}

}  // namespace
}  // namespace gaia::matrix
