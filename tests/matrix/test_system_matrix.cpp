#include "matrix/system_matrix.hpp"

#include <gtest/gtest.h>

#include "matrix/generator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gaia::matrix {
namespace {

TEST(SystemMatrix, AllocatesExpectedShapes) {
  const ParameterLayout lay(4, 3, 8, 6, true);
  SystemMatrix A(lay, 20, 3);
  EXPECT_EQ(A.n_obs(), 20);
  EXPECT_EQ(A.n_constraints(), 3);
  EXPECT_EQ(A.n_rows(), 23);
  EXPECT_EQ(A.n_cols(), lay.n_unknowns());
  EXPECT_EQ(A.values().size(), 23u * kNnzPerRow);
  EXPECT_EQ(A.matrix_index_astro().size(), 23u);
  EXPECT_EQ(A.matrix_index_att().size(), 23u);
  EXPECT_EQ(A.instr_col().size(), 23u * kInstrNnzPerRow);
  EXPECT_EQ(A.known_terms().size(), 23u);
  EXPECT_EQ(A.star_row_start().size(), 5u);
}

TEST(SystemMatrix, CoefficientRecordLayoutConstants) {
  // The 24-coefficient row record must tile exactly.
  EXPECT_EQ(kAstroCoeffOffset, 0);
  EXPECT_EQ(kAttCoeffOffset, 5);
  EXPECT_EQ(kInstrCoeffOffset, 17);
  EXPECT_EQ(kGlobCoeffOffset, 23);
  EXPECT_EQ(kNnzPerRow, 24);
}

TEST(SystemMatrix, RowValuesViewsCorrectSlice) {
  const ParameterLayout lay(2, 3, 8, 6, true);
  SystemMatrix A(lay, 10, 0);
  A.values()[3 * kNnzPerRow + 7] = 42.0;
  EXPECT_DOUBLE_EQ(A.row_values(3)[7], 42.0);
}

TEST(SystemMatrix, FootprintMatchesStaticFormula) {
  const ParameterLayout lay(8, 3, 8, 6, true);
  SystemMatrix A(lay, 100, 3);
  EXPECT_EQ(A.footprint_bytes(),
            SystemMatrix::footprint_bytes_for(103, 8));
  // 24 coeffs * 8 + 2 idx * 8 + 6 instr * 4 + b * 8 = 240 B/row.
  EXPECT_EQ(SystemMatrix::footprint_bytes_for(1, 0), 240u + 8u);
}

TEST(SystemMatrix, FootprintIsDominatedByCoefficients) {
  // "The astrometric submatrix represents ~90% of the memory footprint":
  // the coefficient payload dominates index arrays.
  const auto total = SystemMatrix::footprint_bytes_for(1000, 10);
  const auto coeffs = 1000u * kNnzPerRow * sizeof(real);
  EXPECT_GT(static_cast<double>(coeffs) / static_cast<double>(total), 0.75);
}

TEST(SystemMatrix, RejectsDegenerateShapes) {
  const ParameterLayout lay(2, 3, 8, 6, true);
  EXPECT_THROW(SystemMatrix(lay, 0, 0), gaia::Error);
  EXPECT_THROW(SystemMatrix(lay, 10, -1), gaia::Error);
}

TEST(SystemMatrixValidate, GeneratedSystemPasses) {
  const auto gen = generate_system(gaia::testing::small_config());
  EXPECT_NO_THROW(gen.A.validate_structure());
}

TEST(SystemMatrixValidate, CatchesAstroIndexOutOfRange) {
  auto gen = generate_system(gaia::testing::small_config());
  gen.A.matrix_index_astro()[0] = gen.A.layout().n_astro_params();
  EXPECT_THROW(gen.A.validate_structure(), gaia::Error);
}

TEST(SystemMatrixValidate, CatchesUnalignedAstroIndex) {
  auto gen = generate_system(gaia::testing::small_config());
  gen.A.matrix_index_astro()[0] = 1;  // not a multiple of 5
  EXPECT_THROW(gen.A.validate_structure(), gaia::Error);
}

TEST(SystemMatrixValidate, CatchesAttBlockWrap) {
  auto gen = generate_system(gaia::testing::small_config());
  // Push the attitude start so the block crosses the axis boundary.
  gen.A.matrix_index_att()[0] = gen.A.layout().att_stride() - 1;
  EXPECT_THROW(gen.A.validate_structure(), gaia::Error);
}

TEST(SystemMatrixValidate, CatchesDuplicateInstrColumns) {
  auto gen = generate_system(gaia::testing::small_config());
  auto ic = gen.A.instr_col();
  ic[1] = ic[0];
  EXPECT_THROW(gen.A.validate_structure(), gaia::Error);
}

TEST(SystemMatrixValidate, CatchesInstrColumnOutOfRange) {
  auto gen = generate_system(gaia::testing::small_config());
  gen.A.instr_col()[0] =
      static_cast<std::int32_t>(gen.A.layout().n_instr_params());
  EXPECT_THROW(gen.A.validate_structure(), gaia::Error);
}

TEST(SystemMatrixValidate, CatchesNonZeroAstroInConstraintRow) {
  auto gen = generate_system(gaia::testing::small_config());
  ASSERT_GT(gen.A.n_constraints(), 0);
  const auto r = static_cast<std::size_t>(gen.A.n_obs());
  gen.A.values()[r * kNnzPerRow + kAstroCoeffOffset] = 1.0;
  EXPECT_THROW(gen.A.validate_structure(), gaia::Error);
}

TEST(SystemMatrixValidate, CatchesBrokenStarPartition) {
  auto gen = generate_system(gaia::testing::small_config());
  gen.A.star_row_start()[1] += 1;  // row 'moves' between stars
  EXPECT_THROW(gen.A.validate_structure(), gaia::Error);
}

}  // namespace
}  // namespace gaia::matrix
