/// Down-conversion contract of the precision stores: the scalar
/// converters are deterministic pure bit operations with bounded
/// relative error, and LayoutedSystem::build_precision converts every
/// built stream once, idempotently, bit-identically across rebuilds.
#include "matrix/precision.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "matrix/layouted_system.hpp"
#include "matrix/system_matrix.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gaia::matrix {
namespace {

TEST(PrecisionScalars, Bf16sRoundTripIsExactOnRepresentables) {
  // A value already representable in 8-exp/7-mantissa bits survives the
  // down/up trip bit for bit; the second trip is always the identity.
  for (real v : {0.0, 1.0, -2.0, 0.5, -0.09375, 1.5e20, -3.0e-20}) {
    const real once = from_bf16s(to_bf16s(v));
    EXPECT_EQ(from_bf16s(to_bf16s(once)), once) << v;
  }
  EXPECT_EQ(from_bf16s(to_bf16s(0.0)), 0.0);
  EXPECT_EQ(from_bf16s(to_bf16s(1.0)), 1.0);
  EXPECT_EQ(from_bf16s(to_bf16s(-1.0)), -1.0);
}

TEST(PrecisionScalars, Bf16sTruncationErrorIsBoundedByitsMantissa) {
  // Truncating 16 low bits of FP32 keeps 7 mantissa bits: the relative
  // error of one conversion is below 2^-7 (plus the fp64->fp32 step,
  // well inside that bound).
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const real v = rng.normal() * std::pow(10.0, (i % 17) - 8);
    if (v == 0.0) continue;
    const real back = from_bf16s(to_bf16s(v));
    EXPECT_LE(std::abs(back - v) / std::abs(v), 1.0 / 128.0) << v;
    // Truncation never changes sign.
    EXPECT_GE(back * v, 0.0) << v;
  }
}

TEST(PrecisionScalars, Fp32LoadIsRoundToNearest) {
  util::Xoshiro256 rng(12);
  for (int i = 0; i < 10000; ++i) {
    const real v = rng.normal();
    const real back = load_real(static_cast<float>(v));
    EXPECT_LE(std::abs(back - v),
              std::abs(v) * std::numeric_limits<float>::epsilon());
  }
  // The fp64 load is the identity — the seed kernel bodies are
  // unchanged at CoefT = real.
  EXPECT_EQ(load_real(real{0.1}), real{0.1});
}

TEST(PrecisionScalars, BytesNamesAndParsingAgree) {
  EXPECT_EQ(precision_bytes(Precision::kFp64), 8);
  EXPECT_EQ(precision_bytes(Precision::kFp32), 4);
  EXPECT_EQ(precision_bytes(Precision::kBf16s), 2);
  for (Precision p :
       {Precision::kFp64, Precision::kFp32, Precision::kBf16s}) {
    const auto parsed = parse_precision(to_string(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_EQ(parse_precision("double"), Precision::kFp64);
  EXPECT_EQ(parse_precision("single"), Precision::kFp32);
  EXPECT_EQ(parse_precision("bfloat16"), Precision::kBf16s);
  EXPECT_FALSE(parse_precision("fp16").has_value());
  EXPECT_FALSE(parse_precision("").has_value());
}

class PrecisionStoreTest : public ::testing::Test {
 protected:
  PrecisionStoreTest()
      : gen_(generate_system(gaia::testing::small_config(97))) {}
  GeneratedSystem gen_;
};

TEST_F(PrecisionStoreTest, BuildConvertsEveryBuiltStreamElementwise) {
  LayoutedSystem layouts(gen_.A);
  layouts.build(StorageLayout::kSlicedInstr);  // implies SoA
  layouts.build_precision(Precision::kFp32);
  layouts.build_precision(Precision::kBf16s);

  ASSERT_TRUE(layouts.has_precision(Precision::kFp32,
                                    StorageLayout::kSlicedInstr));
  ASSERT_TRUE(layouts.has_precision(Precision::kBf16s,
                                    StorageLayout::kSlicedInstr));

  // Seed AoS records: same length, per-element converted values.
  const auto seed = gen_.A.values();
  ASSERT_EQ(layouts.f32().values.size(), seed.size());
  ASSERT_EQ(layouts.b16().values.size(), seed.size());
  for (std::size_t i = 0; i < seed.size(); ++i) {
    EXPECT_EQ(layouts.f32().values[i], static_cast<float>(seed[i]));
    EXPECT_EQ(layouts.b16().values[i].bits, to_bf16s(seed[i]).bits);
  }
  // Derived streams share the FP64 arrays' shapes (indices unchanged;
  // only payload bytes shrink).
  EXPECT_EQ(layouts.f32().soa_astro.size(), layouts.soa().astro.size());
  EXPECT_EQ(layouts.f32().slice_values.size(),
            layouts.sliced().slice_values.size());
  EXPECT_EQ(layouts.b16().soa_att.size(), layouts.soa().att.size());
  for (std::size_t i = 0; i < layouts.soa().glob.size(); ++i)
    EXPECT_EQ(layouts.f32().soa_glob[i],
              static_cast<float>(layouts.soa().glob[i]));
}

TEST_F(PrecisionStoreTest, RebuildIsBitIdenticalAndIdempotent) {
  LayoutedSystem a(gen_.A);
  a.build(StorageLayout::kSoaTiled);
  a.build_precision(Precision::kBf16s);
  const auto first = a.b16().soa_astro;
  a.build_precision(Precision::kBf16s);  // idempotent: no re-conversion
  EXPECT_EQ(a.b16().soa_astro.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(a.b16().soa_astro[i].bits, first[i].bits);

  LayoutedSystem b(gen_.A);
  b.build(StorageLayout::kSoaTiled);
  b.build_precision(Precision::kBf16s);
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(b.b16().soa_astro[i].bits, first[i].bits);
}

TEST_F(PrecisionStoreTest, LateLayoutBuildBackfillsOnNextBuildPrecision) {
  LayoutedSystem layouts(gen_.A);
  layouts.build_precision(Precision::kFp32);  // only the seed is built
  EXPECT_TRUE(layouts.has_precision(Precision::kFp32,
                                    StorageLayout::kSeedAos));
  EXPECT_FALSE(layouts.has_precision(Precision::kFp32,
                                     StorageLayout::kSoaTiled));
  layouts.build(StorageLayout::kSoaTiled);
  EXPECT_FALSE(layouts.has_precision(Precision::kFp32,
                                     StorageLayout::kSoaTiled));
  layouts.build_precision(Precision::kFp32);  // converts the new streams
  EXPECT_TRUE(layouts.has_precision(Precision::kFp32,
                                    StorageLayout::kSoaTiled));
  // kFp64 needs no store: the seed planes are the conversion.
  EXPECT_TRUE(layouts.has_precision(Precision::kFp64,
                                    StorageLayout::kSoaTiled));
}

}  // namespace
}  // namespace gaia::matrix
