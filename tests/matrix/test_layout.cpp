#include "matrix/layout.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace gaia::matrix {
namespace {

TEST(Layout, OffsetsArePackedContiguously) {
  const ParameterLayout lay(100, 3, 40, 25, true);
  EXPECT_EQ(lay.astro_offset(), 0);
  EXPECT_EQ(lay.n_astro_params(), 500);
  EXPECT_EQ(lay.att_offset(), 500);
  EXPECT_EQ(lay.n_att_params(), 120);
  EXPECT_EQ(lay.instr_offset(), 620);
  EXPECT_EQ(lay.n_instr_params(), 25);
  EXPECT_EQ(lay.glob_offset(), 645);
  EXPECT_EQ(lay.n_glob_params(), 1);
  EXPECT_EQ(lay.n_unknowns(), 646);
}

TEST(Layout, GlobalSectionOptional) {
  const ParameterLayout lay(10, 3, 8, 6, false);
  EXPECT_EQ(lay.n_glob_params(), 0);
  EXPECT_EQ(lay.n_unknowns(), lay.glob_offset());
}

TEST(Layout, AttStrideEqualsPerAxisDof) {
  const ParameterLayout lay(10, 3, 17, 6, true);
  EXPECT_EQ(lay.att_stride(), 17);
  EXPECT_EQ(lay.n_att_params(), 51);
}

TEST(Layout, AstroDominatesProductionShapedLayout) {
  // The astrometric section must dominate the unknowns, as in production
  // (5 params x ~1e8 stars vs O(1e6) attitude+instrumental).
  const ParameterLayout lay(100000, 3, 100, 50, true);
  const double astro_frac =
      static_cast<double>(lay.n_astro_params()) /
      static_cast<double>(lay.n_unknowns());
  EXPECT_GT(astro_frac, 0.99);
}

TEST(Layout, RejectsInvalidShapes) {
  EXPECT_THROW(ParameterLayout(0, 3, 8, 6, true), Error);   // no stars
  EXPECT_THROW(ParameterLayout(10, 2, 8, 6, true), Error);  // not 3 axes
  EXPECT_THROW(ParameterLayout(10, 3, 3, 6, true), Error);  // block misfit
  EXPECT_THROW(ParameterLayout(10, 3, 8, 5, true), Error);  // instr too small
}

TEST(Layout, EqualityComparesAllFields) {
  const ParameterLayout a(10, 3, 8, 6, true);
  const ParameterLayout b(10, 3, 8, 6, true);
  const ParameterLayout c(10, 3, 8, 6, false);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace gaia::matrix
