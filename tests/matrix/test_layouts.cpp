/// \file test_layouts.cpp
/// \brief Storage-layout suite: structural invariants of the derived
/// SoA-tiled and sliced-instrumental formats, numerical equivalence of
/// every (layout, strategy, backend) combination with the serial seed
/// reference, bit-identical fixed-config repeats, and the launcher's
/// clamp-to-seed fallback when derived arrays are not attached.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "backends/scratch_arena.hpp"
#include "core/kernel_catalog.hpp"
#include "core/system_view.hpp"
#include "matrix/generator.hpp"
#include "matrix/layouted_system.hpp"
#include "matrix/storage_layout.hpp"
#include "test_helpers.hpp"
#include "tuning/kernel_registry.hpp"
#include "util/rng.hpp"

namespace gaia::matrix {
namespace {

using backends::BackendKind;
using backends::KernelConfig;
using backends::KernelId;
using backends::ScatterStrategy;

TEST(LayoutedSystem, SeedBuildIsANoop) {
  const auto gen = generate_system(gaia::testing::small_config(61));
  LayoutedSystem layouts(gen.A);
  EXPECT_TRUE(layouts.has(StorageLayout::kSeedAos));
  layouts.build(StorageLayout::kSeedAos);
  EXPECT_FALSE(layouts.has(StorageLayout::kSoaTiled));
  EXPECT_FALSE(layouts.has(StorageLayout::kSlicedInstr));
  EXPECT_EQ(layouts.derived_bytes(), 0u);
}

TEST(LayoutedSystem, SoaPaddingInvariants) {
  const auto gen = generate_system(gaia::testing::medium_config(62));
  LayoutedSystem layouts(gen.A);
  layouts.build(StorageLayout::kSoaTiled);
  ASSERT_TRUE(layouts.has(StorageLayout::kSoaTiled));
  const SoaStreams& soa = layouts.soa();
  EXPECT_EQ(soa.n_rows, gen.A.n_rows());
  EXPECT_GE(soa.padded_rows, soa.n_rows);
  EXPECT_EQ(soa.padded_rows % kSoaTileRows, 0);
  EXPECT_LT(soa.padded_rows - soa.n_rows, kSoaTileRows);
  const auto padded = static_cast<std::size_t>(soa.padded_rows);
  EXPECT_EQ(soa.astro.size(), kAstroNnzPerRow * padded);
  EXPECT_EQ(soa.att.size(), kAttNnzPerRow * padded);
  EXPECT_EQ(soa.instr.size(), kInstrNnzPerRow * padded);
  EXPECT_EQ(soa.glob.size(), padded);
  // Padded tail rows carry zero coefficients (the glob stream has one
  // plane, so its flat index is just the row).
  for (row_index r = soa.n_rows; r < soa.padded_rows; ++r)
    EXPECT_EQ(soa.glob[static_cast<std::size_t>(r)], 0.0);
}

TEST(LayoutedSystem, SlicedPermutationIsBijective) {
  const auto gen = generate_system(gaia::testing::medium_config(63));
  LayoutedSystem layouts(gen.A);
  layouts.build(StorageLayout::kSlicedInstr);
  ASSERT_TRUE(layouts.has(StorageLayout::kSlicedInstr));
  const SlicedInstr& s = layouts.sliced();
  EXPECT_EQ(s.n_rows, gen.A.n_rows());
  EXPECT_GE(s.n_slices * kSliceHeight, s.n_rows);
  ASSERT_EQ(s.slice_rows.size(),
            static_cast<std::size_t>(s.n_slices * kSliceHeight));
  ASSERT_EQ(s.row_slot.size(), static_cast<std::size_t>(s.n_rows));

  // Every real row occupies exactly one lane; padded lanes are -1.
  std::set<row_index> seen;
  std::int64_t padded = 0;
  for (std::size_t slot = 0; slot < s.slice_rows.size(); ++slot) {
    const row_index r = s.slice_rows[slot];
    if (r < 0) {
      ++padded;
      continue;
    }
    ASSERT_LT(r, s.n_rows);
    EXPECT_TRUE(seen.insert(r).second) << "row " << r << " in two lanes";
    // The inverse permutation agrees with the forward one.
    EXPECT_EQ(s.row_slot[static_cast<std::size_t>(r)],
              static_cast<row_index>(slot));
  }
  EXPECT_EQ(static_cast<row_index>(seen.size()), s.n_rows);
  EXPECT_EQ(padded, s.n_slices * kSliceHeight - s.n_rows);
}

TEST(LayoutedSystem, BuildIsIdempotentAndDeterministic) {
  const auto gen = generate_system(gaia::testing::medium_config(64));
  LayoutedSystem a(gen.A);
  a.build(StorageLayout::kSlicedInstr);
  const byte_size bytes_once = a.derived_bytes();
  a.build(StorageLayout::kSlicedInstr);  // idempotent: no growth
  a.build(StorageLayout::kSoaTiled);
  EXPECT_EQ(a.derived_bytes(), bytes_once);

  // Same matrix -> bit-identical derived arrays (the slice permutation
  // is part of fixed-config reproducibility).
  LayoutedSystem b(gen.A);
  b.build(StorageLayout::kSlicedInstr);
  EXPECT_EQ(a.soa().att, b.soa().att);
  EXPECT_EQ(a.sliced().slice_values, b.sliced().slice_values);
  EXPECT_EQ(a.sliced().slice_rows, b.sliced().slice_rows);
  EXPECT_EQ(a.sliced().row_slot, b.sliced().row_slot);
}

TEST(LayoutedSystem, PaddedVsCompactedByteAccounting) {
  const auto gen = generate_system(gaia::testing::medium_config(65));
  LayoutedSystem layouts(gen.A);
  layouts.build(StorageLayout::kSlicedInstr);
  const byte_size compacted = layouts.compacted_coefficient_bytes();
  EXPECT_EQ(compacted, static_cast<byte_size>(gen.A.n_rows()) * kNnzPerRow *
                           sizeof(real));
  // The seed's line-granular records charge at least the information
  // content; the SoA padding only adds a partial tile's tail.
  EXPECT_GE(layouts.padded_coefficient_bytes(StorageLayout::kSeedAos),
            compacted);
  EXPECT_GE(layouts.padded_coefficient_bytes(StorageLayout::kSoaTiled),
            compacted);
  EXPECT_LT(layouts.padded_coefficient_bytes(StorageLayout::kSoaTiled),
            compacted + kSoaTileRows * kNnzPerRow * sizeof(real));
}

/// Fixture for the equivalence sweep: one medium system, its derived
/// layouts, and the serial seed-layout result as the reference for both
/// aprod directions. All launches go through the production registry.
class LayoutEquivalence : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    core::ensure_kernel_catalog();
    gen_ = generate_system(gaia::testing::medium_config(67));
    layouts_ = std::make_unique<LayoutedSystem>(gen_.A);
    layouts_->build(StorageLayout::kSlicedInstr);
    view_ = core::SystemView::from(gen_.A);
    view_.attach_layout(*layouts_);

    util::Xoshiro256 rng(29);
    x_.resize(static_cast<std::size_t>(gen_.A.n_cols()));
    y_.resize(static_cast<std::size_t>(gen_.A.n_rows()));
    for (auto& v : x_) v = rng.normal();
    for (auto& v : y_) v = rng.normal();

    ref_y_ = run_aprod1(BackendKind::kSerial, {});
    ref_x_ = run_aprod2(BackendKind::kSerial, {});
  }

  std::vector<real> run_aprod1(BackendKind backend, KernelConfig cfg,
                               const core::SystemView* view = nullptr) {
    std::vector<real> y(y_.size(), 0.0);
    launch_group(backend, cfg, view ? *view : view_, KernelId::kAprod1Astro,
                 KernelId::kAprod1Glob, x_.data(), y.data());
    return y;
  }

  std::vector<real> run_aprod2(BackendKind backend, KernelConfig cfg,
                               const core::SystemView* view = nullptr) {
    std::vector<real> x(x_.size(), 0.0);
    launch_group(backend, cfg, view ? *view : view_, KernelId::kAprod2Astro,
                 KernelId::kAprod2Glob, y_.data(), x.data());
    return x;
  }

  matrix::GeneratedSystem gen_;
  std::unique_ptr<LayoutedSystem> layouts_;
  core::SystemView view_{};
  std::vector<real> x_, y_;
  std::vector<real> ref_y_, ref_x_;

 private:
  void launch_group(BackendKind backend, KernelConfig cfg,
                    const core::SystemView& view, KernelId first,
                    KernelId last, const real* in, real* out) {
    const auto& registry = tuning::KernelRegistry::global();
    backends::ScratchArena arena;
    for (int k = static_cast<int>(first); k <= static_cast<int>(last); ++k) {
      tuning::LaunchArgs args;
      args.view = &view;
      args.in = in;
      args.out = out;
      args.config = cfg;
      args.arena = &arena;
      registry.launch(static_cast<KernelId>(k), backend, args);
    }
  }
};

TEST_P(LayoutEquivalence, AllLayoutsAndStrategiesMatchSerialSeed) {
  for (int li = 0; li < kNumStorageLayouts; ++li) {
    for (const ScatterStrategy strategy :
         {ScatterStrategy::kAtomic, ScatterStrategy::kPrivatized}) {
      KernelConfig cfg{64, 32, strategy,
                       static_cast<StorageLayout>(li)};
      const auto y = run_aprod1(GetParam(), cfg);
      const auto x = run_aprod2(GetParam(), cfg);
      const std::string what = to_string(cfg.layout) + "/" +
                               backends::to_string(strategy) + "/" +
                               backends::to_string(GetParam());
      EXPECT_LT(gaia::testing::rel_l2_error(y, ref_y_), 1e-12) << what;
      EXPECT_LT(gaia::testing::rel_l2_error(x, ref_x_), 1e-12) << what;
    }
  }
}

TEST_P(LayoutEquivalence, FixedConfigRepeatsAreBitIdentical) {
  // A fixed (layout, strategy, shape) config is a reproducibility
  // contract: repeats agree to the last bit, whatever the layout.
  for (int li = 0; li < kNumStorageLayouts; ++li) {
    const KernelConfig cfg{64, 32, ScatterStrategy::kPrivatized,
                           static_cast<StorageLayout>(li)};
    const auto y0 = run_aprod1(GetParam(), cfg);
    const auto x0 = run_aprod2(GetParam(), cfg);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const auto y = run_aprod1(GetParam(), cfg);
      const auto x = run_aprod2(GetParam(), cfg);
      for (std::size_t i = 0; i < y.size(); ++i)
        ASSERT_EQ(y[i], y0[i]) << "y[" << i << "] layout " << li;
      for (std::size_t i = 0; i < x.size(); ++i)
        ASSERT_EQ(x[i], x0[i]) << "x[" << i << "] layout " << li;
    }
  }
}

TEST_P(LayoutEquivalence, UnattachedLayoutClampsToSeedSemantics) {
  // A view without derived arrays keeps seed semantics: the launcher
  // clamps the config instead of dereferencing null descriptors.
  core::SystemView bare = core::SystemView::from(gen_.A);
  ASSERT_FALSE(bare.has_layout(StorageLayout::kSoaTiled));
  const KernelConfig cfg{64, 32, ScatterStrategy::kAtomic,
                         StorageLayout::kSoaTiled};
  const auto y = run_aprod1(GetParam(), cfg, &bare);
  const auto x = run_aprod2(GetParam(), cfg, &bare);
  EXPECT_LT(gaia::testing::rel_l2_error(y, ref_y_), 1e-12);
  EXPECT_LT(gaia::testing::rel_l2_error(x, ref_x_), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, LayoutEquivalence,
                         ::testing::ValuesIn(backends::all_backends()),
                         [](const auto& info) {
                           return backends::to_string(info.param);
                         });

}  // namespace
}  // namespace gaia::matrix
