#include "matrix/generator.hpp"

#include <gtest/gtest.h>

#include "matrix/dense.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gaia::matrix {
namespace {

TEST(Generator, DeterministicForEqualSeeds) {
  const auto a = generate_system(gaia::testing::small_config(99));
  const auto b = generate_system(gaia::testing::small_config(99));
  ASSERT_EQ(a.A.n_rows(), b.A.n_rows());
  EXPECT_TRUE(std::equal(a.A.values().begin(), a.A.values().end(),
                         b.A.values().begin()));
  EXPECT_TRUE(std::equal(a.A.known_terms().begin(), a.A.known_terms().end(),
                         b.A.known_terms().begin()));
  EXPECT_TRUE(std::equal(a.A.instr_col().begin(), a.A.instr_col().end(),
                         b.A.instr_col().begin()));
}

TEST(Generator, DifferentSeedsDiffer) {
  const auto a = generate_system(gaia::testing::small_config(1));
  const auto b = generate_system(gaia::testing::small_config(2));
  // Known terms are random draws; identical content would be a bug.
  bool any_diff = false;
  const auto ka = a.A.known_terms();
  const auto kb = b.A.known_terms();
  for (std::size_t i = 0; i < std::min(ka.size(), kb.size()); ++i)
    any_diff |= (ka[i] != kb[i]);
  EXPECT_TRUE(any_diff);
}

TEST(Generator, StructurePassesValidation) {
  const auto gen = generate_system(gaia::testing::medium_config());
  EXPECT_NO_THROW(gen.A.validate_structure());
}

TEST(Generator, RespectsMinObservationsPerStar) {
  auto cfg = gaia::testing::small_config();
  cfg.obs_per_star_min = 7;
  cfg.obs_per_star_mean = 7.0;
  const auto gen = generate_system(cfg);
  const auto starts = gen.A.star_row_start();
  for (std::size_t s = 0; s + 1 < starts.size(); ++s)
    EXPECT_GE(starts[s + 1] - starts[s], 7);
}

TEST(Generator, ConstraintRowCountMatchesConfig) {
  auto cfg = gaia::testing::small_config();
  cfg.constraints_per_axis = 2;
  const auto gen = generate_system(cfg);
  EXPECT_EQ(gen.A.n_constraints(), 6);  // 2 per axis x 3 axes
}

TEST(Generator, ConstraintRowsPinEachAxis) {
  const auto gen = generate_system(gaia::testing::small_config());
  const auto& A = gen.A;
  ASSERT_EQ(A.n_constraints(), 3);
  for (row_index c = 0; c < 3; ++c) {
    const auto rv = A.row_values(A.n_obs() + c);
    const int axis = static_cast<int>(c % kAttBlocks);
    for (int blk = 0; blk < kAttBlocks; ++blk) {
      for (int i = 0; i < kAttBlockSize; ++i) {
        const real v = rv[kAttCoeffOffset + blk * kAttBlockSize + i];
        if (blk == axis)
          EXPECT_DOUBLE_EQ(v, 1.0);
        else
          EXPECT_DOUBLE_EQ(v, 0.0);
      }
    }
    EXPECT_DOUBLE_EQ(A.known_terms()[static_cast<std::size_t>(
                         A.n_obs() + c)], 0.0);
  }
}

TEST(Generator, GroundTruthModeIsConsistentWithDenseProduct) {
  auto cfg = gaia::testing::small_config();
  cfg.rhs_mode = RhsMode::kFromGroundTruth;
  cfg.noise_sigma = 0.0;
  const auto gen = generate_system(cfg);
  ASSERT_TRUE(gen.ground_truth.has_value());

  const auto M = to_dense(gen.A);
  const auto b_expect =
      dense_matvec(M, gen.A.n_rows(), gen.A.n_cols(), *gen.ground_truth);
  // Observation rows must match A x* exactly (no noise requested).
  for (row_index r = 0; r < gen.A.n_obs(); ++r) {
    EXPECT_NEAR(gen.A.known_terms()[static_cast<std::size_t>(r)],
                b_expect[static_cast<std::size_t>(r)], 1e-12)
        << "row " << r;
  }
}

TEST(Generator, NoiseChangesRhsButNotMatrix) {
  auto clean_cfg = gaia::testing::small_config();
  clean_cfg.rhs_mode = RhsMode::kFromGroundTruth;
  auto noisy_cfg = clean_cfg;
  noisy_cfg.noise_sigma = 0.1;
  const auto clean = generate_system(clean_cfg);
  const auto noisy = generate_system(noisy_cfg);
  EXPECT_TRUE(std::equal(clean.A.values().begin(), clean.A.values().end(),
                         noisy.A.values().begin()));
  bool rhs_differs = false;
  for (row_index r = 0; r < clean.A.n_obs(); ++r)
    rhs_differs |= clean.A.known_terms()[static_cast<std::size_t>(r)] !=
                   noisy.A.known_terms()[static_cast<std::size_t>(r)];
  EXPECT_TRUE(rhs_differs);
}

TEST(Generator, AttitudeIndexDriftsAcrossObservationSequence) {
  // The measurement-campaign stride: early rows hit early spline knots,
  // late rows hit late ones.
  auto cfg = gaia::testing::medium_config();
  cfg.att_dof_per_axis = 128;
  const auto gen = generate_system(cfg);
  const auto idx = gen.A.matrix_index_att();
  const auto n = static_cast<std::size_t>(gen.A.n_obs());
  double head = 0, tail = 0;
  for (std::size_t i = 0; i < n / 10; ++i) head += static_cast<double>(idx[i]);
  for (std::size_t i = n - n / 10; i < n; ++i)
    tail += static_cast<double>(idx[i]);
  EXPECT_LT(head, tail);
}

TEST(Generator, RejectsInvalidConfig) {
  auto cfg = gaia::testing::small_config();
  cfg.n_stars = 0;
  EXPECT_THROW(generate_system(cfg), gaia::Error);
  cfg = gaia::testing::small_config();
  cfg.obs_per_star_min = 0;
  EXPECT_THROW(generate_system(cfg), gaia::Error);
  cfg = gaia::testing::small_config();
  cfg.obs_per_star_mean = 1.0;
  cfg.obs_per_star_min = 5;
  EXPECT_THROW(generate_system(cfg), gaia::Error);
}

TEST(ConfigForFootprint, HitsRequestedSizeApproximately) {
  for (const byte_size target : {16 * kMiB, 64 * kMiB, 256 * kMiB}) {
    const auto cfg = config_for_footprint(target);
    const auto gen = generate_system(cfg);
    const double ratio = static_cast<double>(gen.A.footprint_bytes()) /
                         static_cast<double>(target);
    EXPECT_GT(ratio, 0.85) << "target " << target;
    EXPECT_LT(ratio, 1.15) << "target " << target;
  }
}

TEST(ConfigForFootprint, SecondarySectionsStaySmall) {
  const auto cfg = config_for_footprint(64 * kMiB);
  const auto gen = generate_system(cfg);
  const auto& lay = gen.A.layout();
  const double astro_frac = static_cast<double>(lay.n_astro_params()) /
                            static_cast<double>(lay.n_unknowns());
  EXPECT_GT(astro_frac, 0.9);  // production: astro dominates
}

TEST(ConfigForFootprint, TooSmallThrows) {
  EXPECT_THROW(config_for_footprint(1024), gaia::Error);
}

}  // namespace
}  // namespace gaia::matrix
