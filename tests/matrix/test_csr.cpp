#include "matrix/csr.hpp"

#include <gtest/gtest.h>

#include "core/aprod.hpp"
#include "matrix/dense.hpp"
#include "matrix/generator.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gaia::matrix {
namespace {

TEST(Csr, StructureIsWellFormed) {
  const auto gen = generate_system(gaia::testing::small_config(170));
  const auto M = to_csr(gen.A);
  EXPECT_EQ(M.n_rows, gen.A.n_rows());
  EXPECT_EQ(M.n_cols, gen.A.n_cols());
  ASSERT_EQ(M.row_ptr.size(), static_cast<std::size_t>(M.n_rows) + 1);
  EXPECT_EQ(M.row_ptr.front(), 0);
  EXPECT_EQ(M.row_ptr.back(), M.nnz());
  for (std::size_t r = 0; r + 1 < M.row_ptr.size(); ++r) {
    EXPECT_LE(M.row_ptr[r], M.row_ptr[r + 1]);
    // Columns sorted and in range within each row.
    for (std::int64_t k = M.row_ptr[r]; k < M.row_ptr[r + 1]; ++k) {
      EXPECT_GE(M.col_idx[static_cast<std::size_t>(k)], 0);
      EXPECT_LT(M.col_idx[static_cast<std::size_t>(k)], M.n_cols);
      if (k > M.row_ptr[r])
        EXPECT_LT(M.col_idx[static_cast<std::size_t>(k - 1)],
                  M.col_idx[static_cast<std::size_t>(k)]);
    }
  }
}

TEST(Csr, ObservationRowsCarryTwentyFourEntries) {
  const auto gen = generate_system(gaia::testing::small_config(171));
  const auto M = to_csr(gen.A);
  for (row_index r = 0; r < gen.A.n_obs(); ++r) {
    EXPECT_EQ(M.row_ptr[static_cast<std::size_t>(r) + 1] -
                  M.row_ptr[static_cast<std::size_t>(r)],
              kNnzPerRow)
        << "row " << r;
  }
  // Constraint rows drop their structurally-zero blocks.
  for (row_index r = gen.A.n_obs(); r < gen.A.n_rows(); ++r) {
    EXPECT_EQ(M.row_ptr[static_cast<std::size_t>(r) + 1] -
                  M.row_ptr[static_cast<std::size_t>(r)],
              kAttBlockSize)
        << "constraint row " << r;
  }
}

TEST(Csr, MatchesDenseExpansion) {
  const auto gen = generate_system(gaia::testing::small_config(172));
  const auto M = to_csr(gen.A);
  const auto D = to_dense(gen.A);
  const auto cols = static_cast<std::size_t>(gen.A.n_cols());
  for (row_index r = 0; r < M.n_rows; ++r) {
    std::vector<real> dense_row(
        D.begin() + static_cast<std::ptrdiff_t>(r * cols),
        D.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols));
    std::vector<real> csr_row(cols, 0.0);
    for (std::int64_t k = M.row_ptr[static_cast<std::size_t>(r)];
         k < M.row_ptr[static_cast<std::size_t>(r) + 1]; ++k)
      csr_row[static_cast<std::size_t>(
          M.col_idx[static_cast<std::size_t>(k)])] +=
          M.values[static_cast<std::size_t>(k)];
    ASSERT_LT(gaia::testing::max_abs_diff(csr_row, dense_row), 1e-14)
        << "row " << r;
  }
}

TEST(Csr, SpmvAgreesWithAprodKernels) {
  const auto gen = generate_system(gaia::testing::medium_config(173));
  const auto M = to_csr(gen.A);
  util::Xoshiro256 rng(9);
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()));
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();

  backends::DeviceContext device;
  core::AprodOptions opts;
  opts.backend = backends::BackendKind::kSerial;
  opts.use_streams = false;
  core::Aprod aprod(gen.A, device, opts);

  std::vector<real> y_aprod(y.size(), 0.0), y_csr(y.size(), 0.0);
  aprod.apply1(x, y_aprod);
  csr_matvec(M, x, y_csr);
  EXPECT_LT(gaia::testing::rel_l2_error(y_csr, y_aprod), 1e-13);

  std::vector<real> x_aprod(x.size(), 0.0), x_csr(x.size(), 0.0);
  aprod.apply2(y, x_aprod);
  csr_rmatvec(M, y, x_csr);
  EXPECT_LT(gaia::testing::rel_l2_error(x_csr, x_aprod), 1e-12);
}

TEST(Csr, CustomStorageIsSmallerThanCsr) {
  // The paper's storage argument: exploiting the block structure avoids
  // one explicit column index per non-zero.
  const auto gen = generate_system(gaia::testing::medium_config(174));
  const auto M = to_csr(gen.A);
  EXPECT_LT(gen.A.footprint_bytes(), M.bytes());
  // The saving is the column-index payload: ~8 B x 24 per row vs the
  // custom ~40 B of indexes per row.
  const double ratio = static_cast<double>(M.bytes()) /
                       static_cast<double>(gen.A.footprint_bytes());
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 2.0);
}

TEST(Csr, SizeMismatchRejected) {
  const auto gen = generate_system(gaia::testing::small_config(175));
  const auto M = to_csr(gen.A);
  std::vector<real> bad(3), y(static_cast<std::size_t>(M.n_rows));
  EXPECT_THROW(csr_matvec(M, bad, y), gaia::Error);
  EXPECT_THROW(csr_rmatvec(M, bad, y), gaia::Error);
}

}  // namespace
}  // namespace gaia::matrix
