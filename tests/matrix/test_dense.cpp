#include "matrix/dense.hpp"

#include <gtest/gtest.h>

#include "matrix/generator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gaia::matrix {
namespace {

TEST(Dense, ExpansionHasTwentyFourNnzPerObservationRow) {
  const auto gen = generate_system(gaia::testing::small_config());
  const auto M = to_dense(gen.A);
  const auto cols = static_cast<std::size_t>(gen.A.n_cols());
  for (row_index r = 0; r < gen.A.n_obs(); ++r) {
    int nnz = 0;
    for (std::size_t c = 0; c < cols; ++c)
      nnz += (M[static_cast<std::size_t>(r) * cols + c] != 0.0);
    // Random normal coefficients are almost surely non-zero; column
    // collisions inside a row cannot happen across sections.
    EXPECT_EQ(nnz, kNnzPerRow) << "row " << r;
  }
}

TEST(Dense, ExpansionRespectsSectionBoundaries) {
  const auto gen = generate_system(gaia::testing::small_config());
  const auto& lay = gen.A.layout();
  const auto M = to_dense(gen.A);
  const auto cols = static_cast<std::size_t>(gen.A.n_cols());
  // For each observation row, entries outside the four recorded block
  // windows must be zero; we spot-check the astrometric window.
  for (row_index r = 0; r < gen.A.n_obs(); ++r) {
    const auto c0 = gen.A.matrix_index_astro()[static_cast<std::size_t>(r)];
    for (col_index c = 0; c < lay.n_astro_params(); ++c) {
      const real v = M[static_cast<std::size_t>(r) * cols +
                       static_cast<std::size_t>(c)];
      if (c < c0 || c >= c0 + kAstroNnzPerRow) {
        EXPECT_DOUBLE_EQ(v, 0.0) << "row " << r << " col " << c;
        if (v != 0.0) return;  // avoid error spam
      }
    }
  }
}

TEST(Dense, OracleSizeLimitEnforced) {
  const auto gen = generate_system(gaia::testing::small_config());
  EXPECT_THROW(to_dense(gen.A, 16), gaia::Error);
}

TEST(Dense, MatvecAgainstHandComputed) {
  // 2x3 matrix [[1,2,3],[4,5,6]]
  const std::vector<real> M{1, 2, 3, 4, 5, 6};
  const std::vector<real> x{1, 0, -1};
  const auto y = dense_matvec(M, 2, 3, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Dense, RmatvecAgainstHandComputed) {
  const std::vector<real> M{1, 2, 3, 4, 5, 6};
  const std::vector<real> y{1, 1};
  const auto x = dense_rmatvec(M, 2, 3, y);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_DOUBLE_EQ(x[0], 5.0);
  EXPECT_DOUBLE_EQ(x[1], 7.0);
  EXPECT_DOUBLE_EQ(x[2], 9.0);
}

TEST(Dense, MatvecRmatvecAdjointIdentity) {
  // <A x, y> == <x, A^T y> for random inputs (adjoint property).
  const auto gen = generate_system(gaia::testing::small_config(3));
  const auto M = to_dense(gen.A);
  const auto rows = gen.A.n_rows();
  const auto cols = gen.A.n_cols();
  util::Xoshiro256 rng(5);
  std::vector<real> x(static_cast<std::size_t>(cols));
  std::vector<real> y(static_cast<std::size_t>(rows));
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  const auto Ax = dense_matvec(M, rows, cols, x);
  const auto Aty = dense_rmatvec(M, rows, cols, y);
  real lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < Ax.size(); ++i) lhs += Ax[i] * y[i];
  for (std::size_t i = 0; i < Aty.size(); ++i) rhs += Aty[i] * x[i];
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, std::abs(lhs)));
}

TEST(Dense, LeastSquaresSolvesSquareSystemExactly) {
  // Full-rank square system: least squares == exact solve.
  const std::vector<real> M{2, 0, 0, 3};  // diag(2,3)
  const std::vector<real> b{4, 9};
  const auto x = dense_least_squares(M, 2, 2, b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Dense, LeastSquaresMinimizesResidual) {
  // Overdetermined 3x2; verify the normal equations hold: A^T(Ax-b)=0.
  const std::vector<real> M{1, 1, 1, 2, 1, 3};
  const std::vector<real> b{1, 2, 2};
  const auto x = dense_least_squares(M, 3, 2, b);
  auto r = dense_matvec(M, 3, 2, x);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= b[i];
  const auto g = dense_rmatvec(M, 3, 2, r);
  EXPECT_NEAR(g[0], 0.0, 1e-10);
  EXPECT_NEAR(g[1], 0.0, 1e-10);
}

TEST(Dense, LeastSquaresDampingShrinksSolution) {
  const std::vector<real> M{1, 0, 0, 1};
  const std::vector<real> b{1, 1};
  const auto x0 = dense_least_squares(M, 2, 2, b, 0.0);
  const auto x1 = dense_least_squares(M, 2, 2, b, 1.0);
  EXPECT_NEAR(x0[0], 1.0, 1e-12);
  EXPECT_NEAR(x1[0], 0.5, 1e-12);  // (1 + damp^2)^-1
}

TEST(Dense, LeastSquaresRejectsRankDeficient) {
  // Two identical columns: singular normal matrix without damping.
  const std::vector<real> M{1, 1, 2, 2};
  const std::vector<real> b{1, 2};
  EXPECT_THROW(dense_least_squares(M, 2, 2, b), gaia::Error);
  // ...but solvable with damping.
  EXPECT_NO_THROW(dense_least_squares(M, 2, 2, b, 0.1));
}

TEST(Dense, GeneratedSystemIsFullColumnRankWithConstraints) {
  // The constraint rows must remove the attitude nullspace: the normal
  // matrix of the full generated system is SPD.
  auto cfg = gaia::testing::small_config();
  const auto gen = generate_system(cfg);
  const auto M = to_dense(gen.A);
  EXPECT_NO_THROW(dense_least_squares(M, gen.A.n_rows(), gen.A.n_cols(),
                                      gen.A.known_terms()));
}

}  // namespace
}  // namespace gaia::matrix
