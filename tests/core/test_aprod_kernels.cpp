#include "core/aprod_kernels.hpp"

#include <gtest/gtest.h>

#include "matrix/dense.hpp"
#include "matrix/generator.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gaia::core {
namespace {

using backends::BackendKind;
using matrix::dense_matvec;
using matrix::dense_rmatvec;
using matrix::to_dense;

/// Fixture: one generated system + its dense oracle + random vectors.
class AprodKernels : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    gen_ = matrix::generate_system(gaia::testing::small_config(17));
    view_ = SystemView::from(gen_.A);
    dense_ = to_dense(gen_.A);
    util::Xoshiro256 rng(31);
    x_.resize(static_cast<std::size_t>(gen_.A.n_cols()));
    y_.resize(static_cast<std::size_t>(gen_.A.n_rows()));
    for (auto& v : x_) v = rng.normal();
    for (auto& v : y_) v = rng.normal();
  }

  template <typename F>
  void run(F&& f) {
    backends::dispatch(GetParam(), std::forward<F>(f));
  }

  matrix::GeneratedSystem gen_;
  SystemView view_{};
  std::vector<real> dense_;
  std::vector<real> x_;
  std::vector<real> y_;
};

TEST_P(AprodKernels, Aprod1SumOfKernelsMatchesDenseMatvec) {
  std::vector<real> y(y_.size(), 0.0);
  run([&](auto exec) {
    using Exec = decltype(exec);
    aprod1_astro<Exec>(view_, x_.data(), y.data(), {});
    aprod1_att<Exec>(view_, x_.data(), y.data(), {});
    aprod1_instr<Exec>(view_, x_.data(), y.data(), {});
    aprod1_glob<Exec>(view_, x_.data(), y.data(), {});
  });
  const auto oracle = dense_matvec(dense_, gen_.A.n_rows(), gen_.A.n_cols(),
                                   x_);
  EXPECT_LT(gaia::testing::rel_l2_error(y, oracle), 1e-12);
}

TEST_P(AprodKernels, Aprod1AccumulatesOntoExistingY) {
  // y += A x semantics: pre-filled y must be preserved additively.
  std::vector<real> y = y_;
  run([&](auto exec) {
    using Exec = decltype(exec);
    aprod1_astro<Exec>(view_, x_.data(), y.data(), {});
    aprod1_att<Exec>(view_, x_.data(), y.data(), {});
    aprod1_instr<Exec>(view_, x_.data(), y.data(), {});
    aprod1_glob<Exec>(view_, x_.data(), y.data(), {});
  });
  auto oracle = dense_matvec(dense_, gen_.A.n_rows(), gen_.A.n_cols(), x_);
  for (std::size_t i = 0; i < oracle.size(); ++i) oracle[i] += y_[i];
  EXPECT_LT(gaia::testing::rel_l2_error(y, oracle), 1e-12);
}

TEST_P(AprodKernels, Aprod2SumOfKernelsMatchesDenseRmatvec) {
  std::vector<real> x(x_.size(), 0.0);
  run([&](auto exec) {
    using Exec = decltype(exec);
    aprod2_astro<Exec>(view_, y_.data(), x.data(), {});
    aprod2_att<Exec>(view_, y_.data(), x.data(), {},
                     backends::AtomicMode::kNativeRmw);
    aprod2_instr<Exec>(view_, y_.data(), x.data(), {},
                       backends::AtomicMode::kNativeRmw);
    aprod2_glob<Exec>(view_, y_.data(), x.data(), {},
                      backends::AtomicMode::kNativeRmw);
  });
  const auto oracle = dense_rmatvec(dense_, gen_.A.n_rows(), gen_.A.n_cols(),
                                    y_);
  EXPECT_LT(gaia::testing::rel_l2_error(x, oracle), 1e-10);
}

TEST_P(AprodKernels, Aprod2CasModeMatchesOracleToo) {
  std::vector<real> x(x_.size(), 0.0);
  run([&](auto exec) {
    using Exec = decltype(exec);
    aprod2_astro<Exec>(view_, y_.data(), x.data(), {});
    aprod2_att<Exec>(view_, y_.data(), x.data(), {},
                     backends::AtomicMode::kCasLoop);
    aprod2_instr<Exec>(view_, y_.data(), x.data(), {},
                       backends::AtomicMode::kCasLoop);
    aprod2_glob<Exec>(view_, y_.data(), x.data(), {},
                      backends::AtomicMode::kCasLoop);
  });
  const auto oracle = dense_rmatvec(dense_, gen_.A.n_rows(), gen_.A.n_cols(),
                                    y_);
  EXPECT_LT(gaia::testing::rel_l2_error(x, oracle), 1e-10);
}

TEST_P(AprodKernels, IndividualKernelsTargetOnlyTheirSection) {
  const auto& lay = gen_.A.layout();
  std::vector<real> x(x_.size(), 0.0);
  run([&](auto exec) {
    aprod2_att<decltype(exec)>(view_, y_.data(), x.data(), {},
                               backends::AtomicMode::kNativeRmw);
  });
  // Astro, instr and glob sections must be untouched by the att kernel.
  for (col_index c = 0; c < lay.att_offset(); ++c)
    ASSERT_EQ(x[static_cast<std::size_t>(c)], 0.0) << c;
  for (col_index c = lay.instr_offset(); c < lay.n_unknowns(); ++c)
    ASSERT_EQ(x[static_cast<std::size_t>(c)], 0.0) << c;
}

TEST_P(AprodKernels, AdjointIdentityHolds) {
  // <A x, y> == <x, A^T y>: ties aprod1 and aprod2 together without the
  // dense oracle.
  std::vector<real> Ax(y_.size(), 0.0);
  std::vector<real> Aty(x_.size(), 0.0);
  run([&](auto exec) {
    using Exec = decltype(exec);
    aprod1_astro<Exec>(view_, x_.data(), Ax.data(), {});
    aprod1_att<Exec>(view_, x_.data(), Ax.data(), {});
    aprod1_instr<Exec>(view_, x_.data(), Ax.data(), {});
    aprod1_glob<Exec>(view_, x_.data(), Ax.data(), {});
    aprod2_astro<Exec>(view_, y_.data(), Aty.data(), {});
    aprod2_att<Exec>(view_, y_.data(), Aty.data(), {},
                     backends::AtomicMode::kNativeRmw);
    aprod2_instr<Exec>(view_, y_.data(), Aty.data(), {},
                       backends::AtomicMode::kNativeRmw);
    aprod2_glob<Exec>(view_, y_.data(), Aty.data(), {},
                      backends::AtomicMode::kNativeRmw);
  });
  real lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < Ax.size(); ++i) lhs += Ax[i] * y_[i];
  for (std::size_t i = 0; i < Aty.size(); ++i) rhs += Aty[i] * x_[i];
  EXPECT_NEAR(lhs, rhs, 1e-9 * std::max<real>(1, std::abs(lhs)));
}

TEST_P(AprodKernels, ExtremeKernelShapesPreserveResults) {
  // Tuning must never change semantics, only performance.
  const auto oracle = dense_rmatvec(dense_, gen_.A.n_rows(), gen_.A.n_cols(),
                                    y_);
  for (const backends::KernelConfig cfg :
       {backends::KernelConfig{1, 1}, backends::KernelConfig{3, 7},
        backends::KernelConfig{512, 64}}) {
    std::vector<real> x(x_.size(), 0.0);
    run([&](auto exec) {
      using Exec = decltype(exec);
      aprod2_astro<Exec>(view_, y_.data(), x.data(), cfg);
      aprod2_att<Exec>(view_, y_.data(), x.data(), cfg,
                       backends::AtomicMode::kNativeRmw);
      aprod2_instr<Exec>(view_, y_.data(), x.data(), cfg,
                         backends::AtomicMode::kNativeRmw);
      aprod2_glob<Exec>(view_, y_.data(), x.data(), cfg,
                        backends::AtomicMode::kNativeRmw);
    });
    EXPECT_LT(gaia::testing::rel_l2_error(x, oracle), 1e-10)
        << "cfg " << cfg.blocks << "x" << cfg.threads;
  }
}

TEST_P(AprodKernels, GlobalKernelsNoopWithoutGlobalSection) {
  auto cfg = gaia::testing::small_config(18);
  cfg.has_global = false;
  auto gen = matrix::generate_system(cfg);
  const SystemView view = SystemView::from(gen.A);
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()), 0.0);
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()), 0.0);
  std::vector<real> ones(y.size(), 1.0);
  run([&](auto exec) {
    using Exec = decltype(exec);
    aprod1_glob<Exec>(view, x.data(), y.data(), {});
    aprod2_glob<Exec>(view, ones.data(), x.data(), {},
                      backends::AtomicMode::kNativeRmw);
  });
  for (real v : y) ASSERT_EQ(v, 0.0);
  for (real v : x) ASSERT_EQ(v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, AprodKernels,
                         ::testing::ValuesIn(backends::all_backends()),
                         [](const auto& info) {
                           return backends::to_string(info.param);
                         });

}  // namespace
}  // namespace gaia::core
