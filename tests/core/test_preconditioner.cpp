#include "core/preconditioner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "matrix/dense.hpp"
#include "matrix/generator.hpp"
#include "test_helpers.hpp"

namespace gaia::core {
namespace {

TEST(Preconditioner, ColumnNormsMatchDenseOracle) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(40));
  const auto norms = column_norms(gen.A);
  const auto M = matrix::to_dense(gen.A);
  const auto cols = static_cast<std::size_t>(gen.A.n_cols());
  for (std::size_t c = 0; c < cols; ++c) {
    real sq = 0;
    for (row_index r = 0; r < gen.A.n_rows(); ++r) {
      const real v = M[static_cast<std::size_t>(r) * cols + c];
      sq += v * v;
    }
    const real expected = sq > 0 ? std::sqrt(sq) : real{1};
    EXPECT_NEAR(norms[c], expected, 1e-10 * std::max<real>(1, expected))
        << "column " << c;
  }
}

TEST(Preconditioner, ScaledSystemHasUnitColumnNorms) {
  auto gen = matrix::generate_system(gaia::testing::small_config(41));
  const auto norms = column_norms(gen.A);
  apply_column_scaling(gen.A, norms);
  const auto rescaled = column_norms(gen.A);
  for (real n : rescaled) EXPECT_NEAR(n, 1.0, 1e-10);
}

TEST(Preconditioner, UnscaleInvertsScaling) {
  std::vector<real> x{2.0, 6.0, 12.0};
  const std::vector<real> norms{2.0, 3.0, 4.0};
  unscale_solution(x, norms);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(Preconditioner, ScalingPreservesLeastSquaresSolution) {
  // Solving the scaled system and mapping back must give the original
  // least-squares solution (the algebraic identity preconditioning
  // relies on).
  auto gen = matrix::generate_system(gaia::testing::small_config(42));
  const auto M = matrix::to_dense(gen.A);
  const auto x_ref = matrix::dense_least_squares(
      M, gen.A.n_rows(), gen.A.n_cols(), gen.A.known_terms());

  const auto norms = column_norms(gen.A);
  apply_column_scaling(gen.A, norms);
  const auto Ms = matrix::to_dense(gen.A);
  auto z = matrix::dense_least_squares(Ms, gen.A.n_rows(), gen.A.n_cols(),
                                       gen.A.known_terms());
  unscale_solution(z, norms);
  EXPECT_LT(gaia::testing::rel_l2_error(z, x_ref), 1e-8);
}

TEST(Preconditioner, ScalingImprovesConditioning) {
  // Make one column pathologically large; scaling must equalize it.
  auto gen = matrix::generate_system(gaia::testing::small_config(43));
  auto vals = gen.A.values();
  for (row_index r = 0; r < gen.A.n_rows(); ++r)
    vals[static_cast<std::size_t>(r) * kNnzPerRow] *= 1e6;
  const auto norms_before = column_norms(gen.A);
  const real spread_before =
      *std::max_element(norms_before.begin(), norms_before.end()) /
      *std::min_element(norms_before.begin(), norms_before.end());
  apply_column_scaling(gen.A, norms_before);
  const auto norms_after = column_norms(gen.A);
  const real spread_after =
      *std::max_element(norms_after.begin(), norms_after.end()) /
      *std::min_element(norms_after.begin(), norms_after.end());
  EXPECT_GT(spread_before, 1e4);
  EXPECT_NEAR(spread_after, 1.0, 1e-8);
}

TEST(Preconditioner, SizeMismatchRejected) {
  auto gen = matrix::generate_system(gaia::testing::small_config(44));
  std::vector<real> wrong(3, 1.0);
  EXPECT_THROW(apply_column_scaling(gen.A, wrong), gaia::Error);
  std::vector<real> x(5, 1.0);
  EXPECT_THROW(unscale_solution(x, wrong), gaia::Error);
}

}  // namespace
}  // namespace gaia::core
