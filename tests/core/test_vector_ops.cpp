#include "core/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace gaia::core {
namespace {

using backends::BackendKind;

class VectorOps : public ::testing::TestWithParam<BackendKind> {
 protected:
  static std::vector<real> random_vec(std::size_t n, std::uint64_t seed) {
    util::Xoshiro256 rng(seed);
    std::vector<real> v(n);
    for (auto& x : v) x = rng.normal();
    return v;
  }
};

TEST_P(VectorOps, ScaleMultipliesEveryElement) {
  auto v = random_vec(10001, 1);
  const auto orig = v;
  vscale(GetParam(), v, 2.5);
  for (std::size_t i = 0; i < v.size(); ++i)
    ASSERT_DOUBLE_EQ(v[i], orig[i] * 2.5);
}

TEST_P(VectorOps, AxpyMatchesReference) {
  auto y = random_vec(10001, 2);
  const auto x = random_vec(10001, 3);
  const auto y0 = y;
  vaxpy(GetParam(), y, -1.5, x);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_DOUBLE_EQ(y[i], y0[i] - 1.5 * x[i]);
}

TEST_P(VectorOps, XpbyMatchesReference) {
  auto y = random_vec(5000, 4);
  const auto x = random_vec(5000, 5);
  const auto y0 = y;
  vxpby(GetParam(), y, x, 0.75);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_DOUBLE_EQ(y[i], x[i] + 0.75 * y0[i]);
}

TEST_P(VectorOps, AccumulateSquareMatchesReference) {
  auto y = random_vec(5000, 6);
  const auto x = random_vec(5000, 7);
  const auto y0 = y;
  vaccumulate_sq(GetParam(), y, 0.5, x);
  for (std::size_t i = 0; i < y.size(); ++i)
    ASSERT_DOUBLE_EQ(y[i], y0[i] + 0.25 * x[i] * x[i]);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, VectorOps,
                         ::testing::ValuesIn(backends::all_backends()),
                         [](const auto& info) {
                           return backends::to_string(info.param);
                         });

TEST(VectorNorm, MatchesHandComputed) {
  std::vector<real> v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(vnorm(v), 5.0);
  EXPECT_DOUBLE_EQ(vnorm(std::vector<real>{}), 0.0);
}

TEST(VectorDot, KahanSummationBeatsNaiveOnSkewedData) {
  // One large product followed by many small ones of alternating sign:
  // naive left-to-right summation loses the small terms entirely;
  // compensated summation keeps them. Compare against a long-double
  // reference.
  std::vector<real> a, b;
  a.push_back(1e12);
  b.push_back(1.0);
  for (int i = 0; i < 100000; ++i) {
    a.push_back(1.0);
    b.push_back(i % 2 ? 1e-3 : -1e-3 + 1e-5);
  }
  long double exact = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    exact += static_cast<long double>(a[i]) * b[i];
  double naive = 0;
  for (std::size_t i = 0; i < a.size(); ++i) naive += a[i] * b[i];
  const real kahan = vdot(a, b);
  const double kahan_err = std::abs(static_cast<double>(kahan - exact));
  const double naive_err = std::abs(static_cast<double>(naive - exact));
  EXPECT_LE(kahan_err, naive_err);
  EXPECT_LT(kahan_err, 1e-3);
}

TEST(VectorDot, MatchesHandComputed) {
  std::vector<real> a{1, 2, 3};
  std::vector<real> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(vdot(a, b), 32.0);
}

TEST(VectorDot, DeterministicAcrossCalls) {
  util::Xoshiro256 rng(11);
  std::vector<real> a(100000), b(100000);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  const real d1 = vdot(a, b);
  const real d2 = vdot(a, b);
  EXPECT_EQ(d1, d2);  // bitwise: reductions are serial by design
}

}  // namespace
}  // namespace gaia::core
