#include "gaia.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "matrix/dense.hpp"
#include "matrix/generator.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gaia::core {
namespace {

using backends::BackendKind;

class AprodDriver : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    gen_ = matrix::generate_system(gaia::testing::medium_config(5));
    dense_ = matrix::to_dense(gen_.A);
    util::Xoshiro256 rng(8);
    x_.resize(static_cast<std::size_t>(gen_.A.n_cols()));
    y_.resize(static_cast<std::size_t>(gen_.A.n_rows()));
    for (auto& v : x_) v = rng.normal();
    for (auto& v : y_) v = rng.normal();
  }

  AprodOptions opts(bool streams) const {
    AprodOptions o;
    o.backend = GetParam();
    o.use_streams = streams;
    return o;
  }

  matrix::GeneratedSystem gen_;
  std::vector<real> dense_;
  std::vector<real> x_;
  std::vector<real> y_;
};

TEST_P(AprodDriver, Apply1MatchesOracleWithAndWithoutStreams) {
  const auto oracle =
      matrix::dense_matvec(dense_, gen_.A.n_rows(), gen_.A.n_cols(), x_);
  for (bool streams : {false, true}) {
    backends::DeviceContext device;
    Aprod aprod(gen_.A, device, opts(streams));
    std::vector<real> y(y_.size(), 0.0);
    aprod.apply1(x_, y);
    EXPECT_LT(gaia::testing::rel_l2_error(y, oracle), 1e-12)
        << "streams=" << streams;
  }
}

TEST_P(AprodDriver, Apply2MatchesOracleWithAndWithoutStreams) {
  const auto oracle =
      matrix::dense_rmatvec(dense_, gen_.A.n_rows(), gen_.A.n_cols(), y_);
  for (bool streams : {false, true}) {
    backends::DeviceContext device;
    Aprod aprod(gen_.A, device, opts(streams));
    std::vector<real> x(x_.size(), 0.0);
    aprod.apply2(y_, x);
    EXPECT_LT(gaia::testing::rel_l2_error(x, oracle), 1e-10)
        << "streams=" << streams;
  }
}

TEST_P(AprodDriver, SystemIsCopiedToDeviceOnceAtConstruction) {
  backends::DeviceContext device;
  Aprod aprod(gen_.A, device, opts(true));
  const auto h2d_after_setup = device.h2d_bytes();
  EXPECT_GE(h2d_after_setup, gen_.A.values().size_bytes());

  // The iteration-phase products must not trigger further transfers —
  // the paper's "copied before the main loop, stays on GPU" contract.
  std::vector<real> y(y_.size(), 0.0);
  std::vector<real> x(x_.size(), 0.0);
  for (int it = 0; it < 3; ++it) {
    aprod.apply1(x_, y);
    aprod.apply2(y_, x);
  }
  EXPECT_EQ(device.h2d_bytes(), h2d_after_setup);
  EXPECT_EQ(device.d2h_bytes(), 0u);
}

TEST_P(AprodDriver, DeviceCapacityEnforced) {
  backends::DeviceContext tiny(1024, "tiny");
  EXPECT_THROW(Aprod(gen_.A, tiny, opts(false)), gaia::Error);
}

TEST_P(AprodDriver, LaunchCounterTracksKernels) {
  backends::DeviceContext device;
  Aprod aprod(gen_.A, device, opts(false));
  std::vector<real> y(y_.size(), 0.0);
  std::vector<real> x(x_.size(), 0.0);
  aprod.apply1(x_, y);
  EXPECT_EQ(aprod.launches(), 4u);
  aprod.apply2(y_, x);
  EXPECT_EQ(aprod.launches(), 8u);
}

TEST_P(AprodDriver, SizeMismatchesRejected) {
  backends::DeviceContext device;
  Aprod aprod(gen_.A, device, opts(false));
  std::vector<real> bad_x(3), bad_y(3);
  std::vector<real> y(y_.size());
  std::vector<real> x(x_.size());
  EXPECT_THROW(aprod.apply1(bad_x, y), gaia::Error);
  EXPECT_THROW(aprod.apply1(x, bad_y), gaia::Error);
  EXPECT_THROW(aprod.apply2(bad_y, x), gaia::Error);
  EXPECT_THROW(aprod.apply2(y, bad_x), gaia::Error);
}

TEST_P(AprodDriver, StreamedAndUnstreamedResultsAgreeClosely) {
  // Overlapping the aprod2 kernels changes only the accumulation order
  // within shared columns — results must agree to fp roundoff.
  backends::DeviceContext d1, d2;
  Aprod seq(gen_.A, d1, opts(false));
  Aprod ovl(gen_.A, d2, opts(true));
  std::vector<real> xs(x_.size(), 0.0), xo(x_.size(), 0.0);
  seq.apply2(y_, xs);
  ovl.apply2(y_, xo);
  EXPECT_LT(gaia::testing::rel_l2_error(xo, xs), 1e-12);
}

TEST_P(AprodDriver, TunedAndUntunedProduceSameNumbers) {
  AprodOptions tuned = opts(false);
  tuned.tuning = backends::TuningTable::tuned_default();
  AprodOptions untuned = opts(false);
  untuned.tuning = backends::TuningTable::untuned();
  backends::DeviceContext d1, d2;
  Aprod a(gen_.A, d1, tuned), b(gen_.A, d2, untuned);
  std::vector<real> xa(x_.size(), 0.0), xb(x_.size(), 0.0);
  a.apply2(y_, xa);
  b.apply2(y_, xb);
  EXPECT_LT(gaia::testing::rel_l2_error(xa, xb), 1e-11);
}

TEST_P(AprodDriver, ConcurrentDriversShareThePoolSafely) {
  // Two independent Aprod instances running streamed aprod2 at the same
  // time: the shared thread pool and per-driver streams must not
  // interfere (this is the multi-solver / multi-rank-in-process shape).
  const auto oracle =
      matrix::dense_rmatvec(dense_, gen_.A.n_rows(), gen_.A.n_cols(), y_);
  backends::DeviceContext d1, d2;
  Aprod a(gen_.A, d1, opts(true)), b(gen_.A, d2, opts(true));
  std::vector<real> xa(x_.size(), 0.0), xb(x_.size(), 0.0);
  std::thread ta([&] {
    for (int i = 0; i < 3; ++i) {
      std::fill(xa.begin(), xa.end(), 0.0);
      a.apply2(y_, xa);
    }
  });
  std::thread tb([&] {
    for (int i = 0; i < 3; ++i) {
      std::fill(xb.begin(), xb.end(), 0.0);
      b.apply2(y_, xb);
    }
  });
  ta.join();
  tb.join();
  EXPECT_LT(gaia::testing::rel_l2_error(xa, oracle), 1e-10);
  EXPECT_LT(gaia::testing::rel_l2_error(xb, oracle), 1e-10);
}

TEST_P(AprodDriver, FusedAprod2MatchesSplitKernels) {
  // The stdpar-port shape: one fused shared-section scatter. Same
  // algebra, two launches instead of four.
  const auto oracle =
      matrix::dense_rmatvec(dense_, gen_.A.n_rows(), gen_.A.n_cols(), y_);
  AprodOptions fused = opts(false);
  fused.fuse_aprod2 = true;
  backends::DeviceContext device;
  Aprod aprod(gen_.A, device, fused);
  std::vector<real> x(x_.size(), 0.0);
  aprod.apply2(y_, x);
  EXPECT_LT(gaia::testing::rel_l2_error(x, oracle), 1e-10);
  EXPECT_EQ(aprod.launches(), 2u);
}

TEST_P(AprodDriver, UmbrellaHeaderExposesDriver) {
  // gaia.hpp must be self-sufficient for the public API surface; this
  // test includes it transitively via the test target and touches the
  // aliases it re-exports.
  static_assert(std::is_same_v<gaia::core::Aprod, Aprod>);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(AllBackends, AprodDriver,
                         ::testing::ValuesIn(backends::all_backends()),
                         [](const auto& info) {
                           return backends::to_string(info.param);
                         });

}  // namespace
}  // namespace gaia::core
