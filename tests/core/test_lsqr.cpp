#include "core/lsqr.hpp"

#include "core/lsqr_engine.hpp"
#include "core/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "matrix/dense.hpp"
#include "matrix/generator.hpp"
#include "test_helpers.hpp"

namespace gaia::core {
namespace {

using backends::BackendKind;

LsqrOptions base_options(BackendKind backend, std::int64_t iters = 400) {
  LsqrOptions opts;
  opts.aprod.backend = backend;
  opts.aprod.use_streams = backend != BackendKind::kSerial;
  opts.max_iterations = iters;
  opts.atol = 1e-12;
  opts.btol = 1e-12;
  return opts;
}

class LsqrSolve : public ::testing::TestWithParam<BackendKind> {};

TEST_P(LsqrSolve, MatchesDenseLeastSquaresSolution) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(60));
  const auto M = matrix::to_dense(gen.A);
  const auto x_ref = matrix::dense_least_squares(
      M, gen.A.n_rows(), gen.A.n_cols(), gen.A.known_terms());
  const auto result = lsqr_solve(gen.A, base_options(GetParam()));
  EXPECT_LT(gaia::testing::rel_l2_error(result.x, x_ref), 1e-6)
      << "stopped after " << result.iterations << ": "
      << to_string(result.istop);
}

TEST_P(LsqrSolve, RecoversNoiselessGroundTruth) {
  auto cfg = gaia::testing::small_config(61);
  cfg.rhs_mode = matrix::RhsMode::kFromGroundTruth;
  cfg.noise_sigma = 0.0;
  const auto gen = matrix::generate_system(cfg);
  ASSERT_TRUE(gen.ground_truth.has_value());
  const auto result = lsqr_solve(gen.A, base_options(GetParam()));
  // The consistent part of the system is A x* = b; the three constraint
  // rows pull the attitude solution toward the constrained subspace, so
  // agreement is approximate but strong for a random x*.
  const auto M = matrix::to_dense(gen.A);
  const auto x_ref = matrix::dense_least_squares(
      M, gen.A.n_rows(), gen.A.n_cols(), gen.A.known_terms());
  EXPECT_LT(gaia::testing::rel_l2_error(result.x, x_ref), 1e-6);
}

TEST_P(LsqrSolve, ZeroRhsStopsImmediately) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(62));
  std::vector<real> zero(static_cast<std::size_t>(gen.A.n_rows()), 0.0);
  const auto result = lsqr_solve(gen.A, zero, base_options(GetParam()));
  EXPECT_EQ(result.istop, LsqrStop::kXZero);
  for (real v : result.x) EXPECT_EQ(v, 0.0);
}

TEST_P(LsqrSolve, FixedIterationModeNeverStopsEarly) {
  // The paper's timing runs: tolerances zero, exactly N iterations.
  const auto gen = matrix::generate_system(gaia::testing::small_config(63));
  LsqrOptions opts;
  opts.aprod.backend = GetParam();
  opts.max_iterations = 25;
  const auto result = lsqr_solve(gen.A, opts);
  EXPECT_EQ(result.iterations, 25);
  EXPECT_EQ(result.istop, LsqrStop::kIterationLimit);
  EXPECT_EQ(result.iteration_seconds.size(), 25u);
  EXPECT_GT(result.mean_iteration_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, LsqrSolve,
                         ::testing::ValuesIn(backends::all_backends()),
                         [](const auto& info) {
                           return backends::to_string(info.param);
                         });

// ---- scalar-path behaviour (serial backend for speed) ---------------------

TEST(Lsqr, PreconditioningAcceleratesConvergence) {
  // Badly scaled columns: preconditioned LSQR must reach the tolerance
  // in (far) fewer iterations.
  auto gen = matrix::generate_system(gaia::testing::small_config(64));
  auto vals = gen.A.values();
  for (row_index r = 0; r < gen.A.n_rows(); ++r) {
    vals[static_cast<std::size_t>(r) * kNnzPerRow + 0] *= 1e4;
    vals[static_cast<std::size_t>(r) * kNnzPerRow + 1] *= 1e-3;
  }
  LsqrOptions with = base_options(BackendKind::kSerial, 2000);
  with.precondition = true;
  LsqrOptions without = with;
  without.precondition = false;
  const auto res_with = lsqr_solve(gen.A, with);
  const auto res_without = lsqr_solve(gen.A, without);
  EXPECT_LT(res_with.iterations, res_without.iterations);
}

TEST(Lsqr, DampingShrinksSolutionNorm) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(65));
  LsqrOptions opts = base_options(BackendKind::kSerial);
  const auto plain = lsqr_solve(gen.A, opts);
  opts.damp = 5.0;
  const auto damped = lsqr_solve(gen.A, opts);
  EXPECT_LT(vnorm(damped.x), vnorm(plain.x));
}

TEST(Lsqr, DampedSolutionMatchesDenseDampedLeastSquares) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(66));
  const real damp = 0.7;
  const auto M = matrix::to_dense(gen.A);
  // Note: LSQR damps the *scaled* system when preconditioning is on, so
  // compare without preconditioning.
  LsqrOptions opts = base_options(BackendKind::kSerial, 3000);
  opts.precondition = false;
  opts.damp = damp;
  const auto result = lsqr_solve(gen.A, opts);
  const auto x_ref = matrix::dense_least_squares(
      M, gen.A.n_rows(), gen.A.n_cols(), gen.A.known_terms(), damp);
  EXPECT_LT(gaia::testing::rel_l2_error(result.x, x_ref), 1e-6);
}

TEST(Lsqr, StandardErrorsArePositiveAndScaleWithNoise) {
  auto cfg = gaia::testing::small_config(67);
  cfg.rhs_mode = matrix::RhsMode::kFromGroundTruth;
  cfg.noise_sigma = 0.01;
  const auto low_noise = matrix::generate_system(cfg);
  cfg.noise_sigma = 1.0;
  const auto high_noise = matrix::generate_system(cfg);

  LsqrOptions opts = base_options(BackendKind::kSerial);
  opts.compute_std_errors = true;
  const auto lo = lsqr_solve(low_noise.A, opts);
  const auto hi = lsqr_solve(high_noise.A, opts);
  ASSERT_EQ(lo.std_errors.size(), lo.x.size());
  for (real se : lo.std_errors) EXPECT_GT(se, 0.0);
  // More observation noise => larger residual => larger standard errors.
  // (The factor is well below the 100x noise ratio because the constraint
  // rows conflict with the random ground truth and dominate the low-noise
  // residual.)
  double lo_mean = 0, hi_mean = 0;
  for (real se : lo.std_errors) lo_mean += se;
  for (real se : hi.std_errors) hi_mean += se;
  EXPECT_GT(hi_mean, lo_mean * 2);
}

TEST(Lsqr, StdErrorsCanBeDisabled) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(68));
  LsqrOptions opts = base_options(BackendKind::kSerial, 10);
  opts.compute_std_errors = false;
  const auto result = lsqr_solve(gen.A, opts);
  EXPECT_TRUE(result.std_errors.empty());
}

TEST(Lsqr, NormEstimatesAreFiniteAndConsistent) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(69));
  const auto result = lsqr_solve(gen.A, base_options(BackendKind::kSerial));
  EXPECT_TRUE(std::isfinite(result.anorm));
  EXPECT_TRUE(std::isfinite(result.acond));
  EXPECT_GT(result.anorm, 0.0);
  EXPECT_GE(result.acond, 1.0);
  EXPECT_GE(result.rnorm, 0.0);
  EXPECT_GT(result.xnorm, 0.0);
}

TEST(Lsqr, ResidualNormMatchesDirectComputation) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(70));
  const auto result = lsqr_solve(gen.A, base_options(BackendKind::kSerial));
  const auto M = matrix::to_dense(gen.A);
  auto r = matrix::dense_matvec(M, gen.A.n_rows(), gen.A.n_cols(), result.x);
  const auto b = gen.A.known_terms();
  real sq = 0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    const real d = r[i] - b[i];
    sq += d * d;
  }
  EXPECT_NEAR(result.rnorm, std::sqrt(sq),
              1e-6 * std::max<real>(1, result.rnorm));
}

TEST(Lsqr, DeviceResidencyContractHolds) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(71));
  LsqrOptions opts = base_options(BackendKind::kGpuSim, 20);
  const auto result = lsqr_solve(gen.A, opts);
  // One-time H2D: system + initial rhs. Must be at least the system
  // payload and no more than ~2x (no per-iteration re-uploads).
  EXPECT_GE(result.h2d_bytes, gen.A.values().size_bytes());
  EXPECT_LT(result.h2d_bytes, 2 * gen.A.footprint_bytes());
}

TEST(Lsqr, TooSmallDeviceThrows) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(72));
  LsqrOptions opts = base_options(BackendKind::kSerial, 5);
  opts.device_capacity = 1024;
  EXPECT_THROW(lsqr_solve(gen.A, opts), gaia::Error);
}

TEST(Lsqr, RejectsBadInputs) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(73));
  LsqrOptions opts = base_options(BackendKind::kSerial);
  std::vector<real> short_b(3);
  EXPECT_THROW(lsqr_solve(gen.A, short_b, opts), gaia::Error);
  opts.max_iterations = 0;
  EXPECT_THROW(lsqr_solve(gen.A, opts), gaia::Error);
}

TEST(Lsqr, ConlimStopTriggersOnIllConditionedSystem) {
  auto gen = matrix::generate_system(gaia::testing::small_config(74));
  auto vals = gen.A.values();
  // Make the system ill-conditioned (huge spread across columns), then
  // ask for a tiny condition limit.
  for (row_index r = 0; r < gen.A.n_rows(); ++r)
    vals[static_cast<std::size_t>(r) * kNnzPerRow + 2] *= 1e8;
  LsqrOptions opts = base_options(BackendKind::kSerial, 5000);
  opts.precondition = false;
  opts.conlim = 10.0;
  const auto result = lsqr_solve(gen.A, opts);
  EXPECT_TRUE(result.istop == LsqrStop::kConlim ||
              result.istop == LsqrStop::kConlimEps)
      << to_string(result.istop);
}

TEST(Lsqr, HistoryRecordingIsOptIn) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(75));
  LsqrOptions opts = base_options(BackendKind::kSerial, 30);
  opts.atol = 0;
  opts.btol = 0;
  const auto without = lsqr_solve(gen.A, opts);
  EXPECT_TRUE(without.rnorm_history.empty());

  opts.record_history = true;
  const auto with = lsqr_solve(gen.A, opts);
  ASSERT_EQ(with.rnorm_history.size(), 30u);
  ASSERT_EQ(with.arnorm_history.size(), 30u);
  ASSERT_EQ(with.xnorm_history.size(), 30u);
  // rnorm history is non-increasing and ends at the reported rnorm.
  for (std::size_t i = 1; i < with.rnorm_history.size(); ++i)
    EXPECT_LE(with.rnorm_history[i], with.rnorm_history[i - 1] + 1e-12);
  EXPECT_EQ(with.rnorm_history.back(), with.rnorm);
  // xnorm grows from zero toward the solution norm.
  EXPECT_GT(with.xnorm_history.back(), with.xnorm_history.front() * 0.99);
}

TEST(Lsqr, HistorySurvivesCheckpointRestore) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(76));
  LsqrOptions opts = base_options(BackendKind::kSerial, 20);
  opts.atol = 0;
  opts.btol = 0;
  opts.record_history = true;

  LsqrEngine full(gen.A, opts);
  full.run_to_completion();
  const auto expected = full.result();

  LsqrEngine first(gen.A, opts);
  for (int i = 0; i < 7; ++i) first.step();
  std::stringstream ckpt;
  first.checkpoint(ckpt);
  LsqrEngine second(gen.A, opts);
  second.restore(ckpt);
  second.run_to_completion();
  const auto resumed = second.result();
  ASSERT_EQ(resumed.rnorm_history.size(), expected.rnorm_history.size());
  for (std::size_t i = 0; i < expected.rnorm_history.size(); ++i)
    EXPECT_EQ(resumed.rnorm_history[i], expected.rnorm_history[i]);
}

}  // namespace
}  // namespace gaia::core
