#include "core/derotation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace gaia::core {
namespace {

matrix::ParameterLayout layout_for(row_index stars) {
  return matrix::ParameterLayout(stars, 3, 8, 6, true);
}

std::vector<row_index> all_stars(row_index n) {
  std::vector<row_index> idx(static_cast<std::size_t>(n));
  for (row_index s = 0; s < n; ++s) idx[static_cast<std::size_t>(s)] = s;
  return idx;
}

TEST(RotationOffsets, PoleStarOnlySeesZRotationInAlpha) {
  // Near the pole, sin(delta) ~ 1: ez rotation shifts alpha* by cos(delta)
  // ~ 0 while ex/ey dominate.
  const matrix::Star pole{0.0, 1.5607};  // ~89.4 deg
  const FrameRotation ez_only{0, 0, 1e-6, 0, 0, 0};
  const auto off = rotation_offsets(ez_only, pole);
  EXPECT_NEAR(off.dalpha_star, 1e-6 * std::cos(pole.delta), 1e-18);
  EXPECT_DOUBLE_EQ(off.ddelta, 0.0);
}

TEST(RotationOffsets, EquatorStarDeltaRespondsToXy) {
  const matrix::Star eq{0.0, 0.0};  // alpha=0, delta=0
  const FrameRotation rot{1e-6, 2e-6, 3e-6, 0, 0, 0};
  const auto off = rotation_offsets(rot, eq);
  // d(alpha*) = -ex*0 - ey*0 + ez*1; d(delta) = ex*0 - ey*1.
  EXPECT_NEAR(off.dalpha_star, 3e-6, 1e-18);
  EXPECT_NEAR(off.ddelta, -2e-6, 1e-18);
}

TEST(ApplyRotation, OnlyTouchesPositionsAndProperMotions) {
  const auto layout = layout_for(20);
  const auto cat = matrix::make_catalogue(20, 1);
  std::vector<real> x(static_cast<std::size_t>(layout.n_unknowns()), 0.0);
  apply_rotation(x, layout, cat, {1e-6, -2e-6, 3e-6, 1e-7, 2e-7, -3e-7});
  for (row_index s = 0; s < 20; ++s) {
    const auto base = static_cast<std::size_t>(s) * kAstroParamsPerStar;
    EXPECT_NE(x[base + 0], 0.0);  // alpha*
    EXPECT_DOUBLE_EQ(x[base + 2], 0.0);  // parallax untouched
  }
  // Attitude/instrumental/global untouched.
  for (col_index c = layout.att_offset(); c < layout.n_unknowns(); ++c)
    EXPECT_DOUBLE_EQ(x[static_cast<std::size_t>(c)], 0.0);
}

TEST(EstimateRotation, RecoversInjectedRotationExactly) {
  const auto layout = layout_for(50);
  const auto cat = matrix::make_catalogue(50, 2);
  std::vector<real> x(static_cast<std::size_t>(layout.n_unknowns()), 0.0);
  const FrameRotation injected{4e-7, -1e-7, 2.5e-7, 3e-8, -2e-8, 1e-8};
  apply_rotation(x, layout, cat, injected);
  const auto refs = all_stars(50);
  const FrameRotation est = estimate_rotation(x, layout, cat, refs);
  EXPECT_NEAR(est.ex, injected.ex, 1e-18);
  EXPECT_NEAR(est.ey, injected.ey, 1e-18);
  EXPECT_NEAR(est.ez, injected.ez, 1e-18);
  EXPECT_NEAR(est.wx, injected.wx, 1e-19);
  EXPECT_NEAR(est.wy, injected.wy, 1e-19);
  EXPECT_NEAR(est.wz, injected.wz, 1e-19);
}

TEST(EstimateRotation, RobustToUncorrelatedNoise) {
  const auto layout = layout_for(400);
  const auto cat = matrix::make_catalogue(400, 3);
  std::vector<real> x(static_cast<std::size_t>(layout.n_unknowns()), 0.0);
  const FrameRotation injected{5e-7, 5e-7, -5e-7, 0, 0, 0};
  apply_rotation(x, layout, cat, injected);
  util::Xoshiro256 rng(4);
  for (row_index s = 0; s < 400; ++s) {
    const auto base = static_cast<std::size_t>(s) * kAstroParamsPerStar;
    x[base + 0] += rng.normal(0.0, 1e-8);
    x[base + 1] += rng.normal(0.0, 1e-8);
  }
  const auto est = estimate_rotation(x, layout, cat, all_stars(400));
  EXPECT_NEAR(est.ex, injected.ex, 3e-9);
  EXPECT_NEAR(est.ey, injected.ey, 3e-9);
  EXPECT_NEAR(est.ez, injected.ez, 3e-9);
}

TEST(Derotate, RemovesRotationFromFullSolution) {
  const auto layout = layout_for(60);
  const auto cat = matrix::make_catalogue(60, 5);
  util::Xoshiro256 rng(6);
  // A "real" solution plus a rigid rotation.
  std::vector<real> clean(static_cast<std::size_t>(layout.n_unknowns()));
  for (auto& v : clean) v = rng.normal(0.0, 1e-9);
  std::vector<real> contaminated = clean;
  const FrameRotation injected{2e-7, -3e-7, 1e-7, 4e-8, 0, -4e-8};
  apply_rotation(contaminated, layout, cat, injected);

  const FrameRotation removed =
      derotate_solution(contaminated, layout, cat, all_stars(60));
  EXPECT_NEAR(removed.ex, injected.ex, 2e-9);
  EXPECT_NEAR(removed.ez, injected.ez, 2e-9);
  // The de-rotated solution is close to the clean one (up to the small
  // rotation component present in `clean` itself, now also removed).
  for (std::size_t i = 0; i < clean.size(); ++i)
    EXPECT_NEAR(contaminated[i], clean[i], 5e-9);
}

TEST(Derotate, DerotatedSolutionHasNoResidualRotation) {
  const auto layout = layout_for(80);
  const auto cat = matrix::make_catalogue(80, 7);
  util::Xoshiro256 rng(8);
  std::vector<real> x(static_cast<std::size_t>(layout.n_unknowns()));
  for (auto& v : x) v = rng.normal(0.0, 1e-8);
  derotate_solution(x, layout, cat, all_stars(80));
  const auto residual = estimate_rotation(x, layout, cat, all_stars(80));
  EXPECT_NEAR(residual.ex, 0.0, 1e-20);
  EXPECT_NEAR(residual.ey, 0.0, 1e-20);
  EXPECT_NEAR(residual.ez, 0.0, 1e-20);
}

TEST(EstimateRotation, RejectsDegenerateInputs) {
  const auto layout = layout_for(10);
  const auto cat = matrix::make_catalogue(10, 9);
  std::vector<real> x(static_cast<std::size_t>(layout.n_unknowns()), 0.0);
  std::vector<row_index> too_few{0, 1};
  EXPECT_THROW(estimate_rotation(x, layout, cat, too_few), gaia::Error);
  std::vector<row_index> out_of_range{0, 1, 99};
  EXPECT_THROW(estimate_rotation(x, layout, cat, out_of_range), gaia::Error);
  std::vector<real> wrong_size(5);
  std::vector<row_index> refs{0, 1, 2};
  EXPECT_THROW(estimate_rotation(wrong_size, layout, cat, refs),
               gaia::Error);
}

TEST(EstimateRotation, DegenerateGeometryThrows) {
  // All reference stars at the same position: the 3x3 normal matrix is
  // singular.
  const auto layout = layout_for(5);
  std::vector<matrix::Star> cat(5, matrix::Star{1.0, 0.5});
  std::vector<real> x(static_cast<std::size_t>(layout.n_unknowns()), 0.0);
  EXPECT_THROW(estimate_rotation(x, layout, cat, all_stars(5)), gaia::Error);
}

}  // namespace
}  // namespace gaia::core
