/// Integration test of the paper's SV-A profiling claim: "most of the
/// time of this code is spent computing the matrix-by-vector products of
/// aprod1 and aprod2".
#include <gtest/gtest.h>

#include "core/lsqr.hpp"
#include "matrix/generator.hpp"
#include "test_helpers.hpp"
#include "util/profiler.hpp"

namespace gaia::core {
namespace {

class SolverProfile : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Profiler::global().reset();
    util::Profiler::global().set_enabled(true);
  }
  void TearDown() override {
    util::Profiler::global().set_enabled(false);
    util::Profiler::global().reset();
  }
};

TEST_F(SolverProfile, AprodKernelsDominateTheIteration) {
  // Large-ish system so per-element work dwarfs instrumentation noise.
  auto cfg = gaia::testing::medium_config(150);
  cfg.n_stars = 1200;
  cfg.obs_per_star_mean = 30.0;
  const auto gen = matrix::generate_system(cfg);

  LsqrOptions opts;
  opts.aprod.backend = backends::BackendKind::kSerial;
  opts.aprod.use_streams = false;
  opts.max_iterations = 10;
  const auto result = lsqr_solve(gen.A, opts);
  ASSERT_EQ(result.iterations, 10);

  auto& p = util::Profiler::global();
  // The paper's profiler observation (SV-A): aprod dominates.
  EXPECT_GT(p.fraction_of("aprod"), 0.5) << p.report();
  // Every one of the eight kernels ran 10 (aprod1) / 10-11 (aprod2,
  // including the bidiagonalization start) times.
  for (const auto& region : p.snapshot()) {
    if (region.name.rfind("aprod", 0) == 0) {
      EXPECT_GE(region.calls, 10u) << region.name;
      EXPECT_LE(region.calls, 11u) << region.name;
    }
  }
}

TEST_F(SolverProfile, AllEightKernelRegionsAppear) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(151));
  LsqrOptions opts;
  opts.aprod.backend = backends::BackendKind::kGpuSim;
  opts.max_iterations = 3;
  (void)lsqr_solve(gen.A, opts);
  const auto stats = util::Profiler::global().snapshot();
  int kernel_regions = 0;
  for (const auto& s : stats)
    if (s.name.rfind("aprod", 0) == 0) ++kernel_regions;
  EXPECT_EQ(kernel_regions, 8);
}

TEST_F(SolverProfile, BlasAndReductionRegionsTracked) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(152));
  LsqrOptions opts;
  opts.aprod.backend = backends::BackendKind::kSerial;
  opts.aprod.use_streams = false;
  opts.max_iterations = 5;
  (void)lsqr_solve(gen.A, opts);
  auto& p = util::Profiler::global();
  EXPECT_GT(p.fraction_of("blas1"), 0.0);
  EXPECT_GT(p.fraction_of("reduction"), 0.0);
}

TEST_F(SolverProfile, DisabledProfilerLeavesNoTrace) {
  util::Profiler::global().set_enabled(false);
  const auto gen = matrix::generate_system(gaia::testing::small_config(153));
  LsqrOptions opts;
  opts.aprod.backend = backends::BackendKind::kSerial;
  opts.max_iterations = 2;
  (void)lsqr_solve(gen.A, opts);
  EXPECT_TRUE(util::Profiler::global().snapshot().empty());
}

}  // namespace
}  // namespace gaia::core
