#include "core/outer_loop.hpp"

#include <gtest/gtest.h>

#include "matrix/generator.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gaia::core {
namespace {

OuterLoopOptions loop_options() {
  OuterLoopOptions opts;
  opts.lsqr.aprod.backend = backends::BackendKind::kSerial;
  opts.lsqr.aprod.use_streams = false;
  opts.lsqr.max_iterations = 300;
  opts.lsqr.atol = 1e-12;
  opts.lsqr.btol = 1e-12;
  opts.weight_change_tol = 2e-2;
  return opts;
}

matrix::GeneratedSystem corrupted_system(std::uint64_t seed, int outliers) {
  auto cfg = gaia::testing::medium_config(seed);
  cfg.rhs_mode = matrix::RhsMode::kFromGroundTruth;
  cfg.noise_sigma = 0.01;
  auto gen = matrix::generate_system(cfg);
  util::Xoshiro256 rng(seed ^ 0x0717e5ull);
  auto b = gen.A.known_terms();
  for (int k = 0; k < outliers; ++k)
    b[rng.uniform_index(static_cast<std::uint64_t>(gen.A.n_obs()))] +=
        rng.normal(0.0, 30.0);
  return gen;
}

TEST(OuterLoop, CleanDataConvergesImmediatelyWithUnitWeights) {
  auto cfg = gaia::testing::small_config(160);
  cfg.rhs_mode = matrix::RhsMode::kFromGroundTruth;
  cfg.noise_sigma = 0.01;
  const auto gen = matrix::generate_system(cfg);
  const auto result = robust_solve(gen.A, loop_options());
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.outer_iterations, 3);
  // Only a modest fraction of rows flagged on clean (gaussian + mild
  // constraint-inconsistency) data.
  EXPECT_LT(result.downweighted_rows.back(), gen.A.n_obs() / 5);
}

TEST(OuterLoop, OutliersGetDownweighted) {
  const auto gen = corrupted_system(161, 30);
  const auto result = robust_solve(gen.A, loop_options());
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.downweighted_rows.back(), 20);
  int strongly_downweighted = 0;
  for (real w : result.weights) strongly_downweighted += (w < 0.5);
  EXPECT_GE(strongly_downweighted, 20);
}

TEST(OuterLoop, RobustSolutionBeatsSingleSolve) {
  const auto gen = corrupted_system(162, 30);
  const auto naive = lsqr_solve(gen.A, loop_options().lsqr);
  const auto robust = robust_solve(gen.A, loop_options());
  const auto& truth = *gen.ground_truth;
  EXPECT_LT(gaia::testing::rel_l2_error(robust.solution.x, truth),
            gaia::testing::rel_l2_error(naive.x, truth));
}

TEST(OuterLoop, WeightChangesShrinkAcrossIterations) {
  const auto gen = corrupted_system(163, 40);
  auto opts = loop_options();
  opts.weight_change_tol = 0;  // run all outer iterations
  opts.max_outer_iterations = 4;
  const auto result = robust_solve(gen.A, opts);
  EXPECT_EQ(result.outer_iterations, 4);
  ASSERT_EQ(result.weight_rms_change.size(), 4u);
  EXPECT_LT(result.weight_rms_change.back(),
            result.weight_rms_change.front());
}

TEST(OuterLoop, ConstraintRowsKeepUnitWeight) {
  const auto gen = corrupted_system(164, 25);
  const auto result = robust_solve(gen.A, loop_options());
  for (row_index r = gen.A.n_obs(); r < gen.A.n_rows(); ++r)
    EXPECT_DOUBLE_EQ(result.weights[static_cast<std::size_t>(r)], 1.0);
}

TEST(OuterLoop, RejectsBadOptions) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(165));
  auto opts = loop_options();
  opts.max_outer_iterations = 0;
  EXPECT_THROW(robust_solve(gen.A, opts), gaia::Error);
}

}  // namespace
}  // namespace gaia::core
