/// \file test_scatter_strategies.cpp
/// \brief Property suite for the privatized (contention-free) aprod2
/// scatter strategy: equivalence with the atomic path and the serial
/// reference on every backend, robustness across worker counts and
/// degenerate shapes, bit-reproducibility at a fixed launch shape, and
/// the scratch-arena reuse contract (allocator goes silent after the
/// first iteration).
#include <gtest/gtest.h>

#include "backends/scratch_arena.hpp"
#include "core/aprod.hpp"
#include "core/aprod_kernels.hpp"
#include "matrix/generator.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gaia::core {
namespace {

using backends::BackendKind;
using backends::KernelConfig;
using backends::ScatterStrategy;

/// Fixture: a system with enough rows per column that scatters actually
/// collide, plus the serial atomic result as the reference.
class ScatterStrategies : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    gen_ = matrix::generate_system(gaia::testing::medium_config(23));
    view_ = SystemView::from(gen_.A);
    util::Xoshiro256 rng(47);
    y_.resize(static_cast<std::size_t>(gen_.A.n_rows()));
    for (auto& v : y_) v = rng.normal();
    reference_.assign(static_cast<std::size_t>(gen_.A.n_cols()), 0.0);
    run_atomic<backends::SerialExec>(view_, reference_, {});
  }

  template <typename Exec>
  void run_atomic(const SystemView& view, std::vector<real>& x,
                  KernelConfig cfg) const {
    aprod2_att<Exec>(view, y_.data(), x.data(), cfg,
                     backends::AtomicMode::kNativeRmw);
    aprod2_instr<Exec>(view, y_.data(), x.data(), cfg,
                       backends::AtomicMode::kNativeRmw);
    aprod2_glob<Exec>(view, y_.data(), x.data(), cfg,
                      backends::AtomicMode::kNativeRmw);
  }

  template <typename Exec>
  void run_privatized(const SystemView& view, std::vector<real>& x,
                      KernelConfig cfg,
                      backends::ScratchArena* arena = nullptr) const {
    aprod2_att_privatized<Exec>(view, y_.data(), x.data(), cfg, arena);
    aprod2_instr_privatized<Exec>(view, y_.data(), x.data(), cfg, arena);
    aprod2_glob_privatized<Exec>(view, y_.data(), x.data(), cfg, arena);
  }

  std::vector<real> privatized_result(KernelConfig cfg) const {
    std::vector<real> x(reference_.size(), 0.0);
    backends::dispatch(GetParam(), [&](auto exec) {
      run_privatized<decltype(exec)>(view_, x, cfg);
    });
    return x;
  }

  matrix::GeneratedSystem gen_;
  SystemView view_{};
  std::vector<real> y_;
  std::vector<real> reference_;
};

TEST_P(ScatterStrategies, PrivatizedMatchesSerialAtomicReference) {
  const auto x = privatized_result({});
  EXPECT_LT(gaia::testing::rel_l2_error(x, reference_), 1e-12);
}

TEST_P(ScatterStrategies, PrivatizedMatchesAtomicOnSameBackend) {
  const KernelConfig cfg{64, 32};
  std::vector<real> atomic(reference_.size(), 0.0);
  std::vector<real> priv(reference_.size(), 0.0);
  backends::dispatch(GetParam(), [&](auto exec) {
    using Exec = decltype(exec);
    run_atomic<Exec>(view_, atomic, cfg);
    run_privatized<Exec>(view_, priv, cfg);
  });
  EXPECT_LT(gaia::testing::rel_l2_error(priv, atomic), 1e-12);
}

TEST_P(ScatterStrategies, WorkerCountSweepPreservesResults) {
  // scatter_workers is a pure function of the launch shape; every shape
  // (1 worker, odd counts, the kMaxScatterWorkers cap) must agree with
  // the reference.
  for (const KernelConfig cfg :
       {KernelConfig{1, 1}, KernelConfig{2, 3}, KernelConfig{7, 5},
        KernelConfig{64, 32}, KernelConfig{300, 64},
        KernelConfig{1024, 256}}) {
    const auto x = privatized_result(cfg);
    EXPECT_LT(gaia::testing::rel_l2_error(x, reference_), 1e-12)
        << "cfg " << cfg.blocks << "x" << cfg.threads;
  }
}

TEST_P(ScatterStrategies, BitIdenticalAcrossRepeatedRuns) {
  // The fold order is fixed by the worker count alone, and each worker
  // accumulates its row chunk sequentially — repeated runs at the same
  // shape must agree to the last bit, on every backend.
  const KernelConfig cfg{64, 32};
  const auto first = privatized_result(cfg);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto again = privatized_result(cfg);
    for (std::size_t i = 0; i < first.size(); ++i)
      ASSERT_EQ(first[i], again[i]) << "element " << i << " run " << repeat;
  }
}

TEST_P(ScatterStrategies, DegenerateSingleStarSystem) {
  auto cfg = gaia::testing::small_config(29);
  cfg.n_stars = 1;
  const auto gen = matrix::generate_system(cfg);
  const SystemView view = SystemView::from(gen.A);
  util::Xoshiro256 rng(5);
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
  for (auto& v : y) v = rng.normal();

  std::vector<real> ref(static_cast<std::size_t>(gen.A.n_cols()), 0.0);
  aprod2_att<backends::SerialExec>(view, y.data(), ref.data(), {},
                                   backends::AtomicMode::kNativeRmw);
  aprod2_instr<backends::SerialExec>(view, y.data(), ref.data(), {},
                                     backends::AtomicMode::kNativeRmw);
  aprod2_glob<backends::SerialExec>(view, y.data(), ref.data(), {},
                                    backends::AtomicMode::kNativeRmw);

  std::vector<real> x(ref.size(), 0.0);
  backends::dispatch(GetParam(), [&](auto exec) {
    using Exec = decltype(exec);
    aprod2_att_privatized<Exec>(view, y.data(), x.data(), {128, 64});
    aprod2_instr_privatized<Exec>(view, y.data(), x.data(), {128, 64});
    aprod2_glob_privatized<Exec>(view, y.data(), x.data(), {128, 64});
  });
  EXPECT_LT(gaia::testing::rel_l2_error(x, ref), 1e-12);
}

TEST_P(ScatterStrategies, NoGlobalSectionIsANoop) {
  auto cfg = gaia::testing::small_config(31);
  cfg.has_global = false;
  const auto gen = matrix::generate_system(cfg);
  const SystemView view = SystemView::from(gen.A);
  std::vector<real> ones(static_cast<std::size_t>(gen.A.n_rows()), 1.0);
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()), 0.0);
  backends::dispatch(GetParam(), [&](auto exec) {
    aprod2_glob_privatized<decltype(exec)>(view, ones.data(), x.data(), {});
  });
  for (real v : x) ASSERT_EQ(v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ScatterStrategies,
                         ::testing::ValuesIn(backends::all_backends()),
                         [](const auto& info) {
                           return backends::to_string(info.param);
                         });

/// Installs `strategy` on the three atomic kernels of a tuned table,
/// and optionally `layout` on every kernel.
backends::TuningTable strategy_table(
    ScatterStrategy strategy,
    backends::StorageLayout layout = backends::StorageLayout::kSeedAos) {
  backends::TuningTable table = backends::TuningTable::tuned_default();
  for (backends::KernelId id : backends::all_kernels()) {
    KernelConfig cfg = table.get(id);
    if (backends::kernel_uses_atomics(id)) cfg.strategy = strategy;
    cfg.layout = layout;
    table.set(id, cfg);
  }
  return table;
}

TEST(ScatterStrategyDriver, PrivatizedTableMatchesAtomicThroughAprod) {
  // End-to-end through the registry routing: an Aprod whose tuning table
  // selects kPrivatized must produce the same apply2 as the atomic one.
  const auto gen = matrix::generate_system(gaia::testing::medium_config(37));
  util::Xoshiro256 rng(11);
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
  for (auto& v : y) v = rng.normal();

  auto apply2_with = [&](ScatterStrategy strategy) {
    backends::DeviceContext device;
    AprodOptions opts;
    opts.backend = BackendKind::kGpuSim;
    opts.use_streams = false;
    opts.tuning = strategy_table(strategy);
    Aprod aprod(gen.A, device, opts);
    std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()), 0.0);
    aprod.apply2(y, x);
    return x;
  };
  const auto atomic = apply2_with(ScatterStrategy::kAtomic);
  const auto priv = apply2_with(ScatterStrategy::kPrivatized);
  EXPECT_LT(gaia::testing::rel_l2_error(priv, atomic), 1e-12);
}

TEST(ScatterStrategyDriver, DerivedLayoutsMatchSeedThroughAprod) {
  // End-to-end through Aprod's lazy layout path: a tuning table that
  // selects a derived storage layout makes the driver build and attach
  // the LayoutedSystem on first launch, and both aprod directions must
  // agree with the seed layout for either scatter strategy.
  const auto gen = matrix::generate_system(gaia::testing::medium_config(53));
  util::Xoshiro256 rng(19);
  std::vector<real> x_in(static_cast<std::size_t>(gen.A.n_cols()));
  std::vector<real> y_in(static_cast<std::size_t>(gen.A.n_rows()));
  for (auto& v : x_in) v = rng.normal();
  for (auto& v : y_in) v = rng.normal();

  auto run_with = [&](ScatterStrategy strategy,
                      backends::StorageLayout layout) {
    backends::DeviceContext device;
    AprodOptions opts;
    opts.backend = BackendKind::kGpuSim;
    opts.use_streams = false;
    opts.tuning = strategy_table(strategy, layout);
    Aprod aprod(gen.A, device, opts);
    std::vector<real> y(y_in.size(), 0.0);
    std::vector<real> x(x_in.size(), 0.0);
    aprod.apply1(x_in, y);
    aprod.apply2(y_in, x);
    return std::pair{y, x};
  };

  const auto seed = run_with(ScatterStrategy::kAtomic,
                             backends::StorageLayout::kSeedAos);
  for (const auto layout : {backends::StorageLayout::kSoaTiled,
                            backends::StorageLayout::kSlicedInstr}) {
    for (const auto strategy :
         {ScatterStrategy::kAtomic, ScatterStrategy::kPrivatized}) {
      const auto [y, x] = run_with(strategy, layout);
      EXPECT_LT(gaia::testing::rel_l2_error(y, seed.first), 1e-12)
          << backends::to_string(layout);
      EXPECT_LT(gaia::testing::rel_l2_error(x, seed.second), 1e-12)
          << backends::to_string(layout);
    }
  }
}

TEST(ScatterStrategyDriver, ArenaAllocatorSilentAfterFirstIteration) {
  // The pool contract of the tentpole: every buffer the privatized
  // scatters need is allocated during the first apply2; after that the
  // miss counter must not move — iterations run allocation-free.
  const auto gen = matrix::generate_system(gaia::testing::medium_config(41));
  backends::DeviceContext device;
  AprodOptions opts;
  opts.backend = BackendKind::kGpuSim;
  opts.use_streams = false;  // deterministic lease pattern
  opts.tuning = strategy_table(ScatterStrategy::kPrivatized);
  Aprod aprod(gen.A, device, opts);

  util::Xoshiro256 rng(13);
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
  for (auto& v : y) v = rng.normal();
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()), 0.0);

  aprod.apply2(y, x);  // warm-up: populates the pool
  const std::uint64_t misses_after_warmup = aprod.scratch_arena().misses();
  EXPECT_GT(misses_after_warmup, 0u);  // the privatized path really ran
  EXPECT_GT(aprod.scratch_arena().pooled_bytes(), 0u);

  for (int iter = 0; iter < 5; ++iter) aprod.apply2(y, x);
  EXPECT_EQ(aprod.scratch_arena().misses(), misses_after_warmup);
  EXPECT_GT(aprod.scratch_arena().hits(), 0u);
}

TEST(ScatterStrategyDriver, ArenaBytesSurfaceInObsMetrics) {
  auto& reg = obs::MetricsRegistry::global();
  reg.set_enabled(true);
  reg.reset();

  const auto gen = matrix::generate_system(gaia::testing::small_config(43));
  backends::DeviceContext device;
  AprodOptions opts;
  opts.backend = BackendKind::kGpuSim;
  opts.use_streams = false;
  opts.tuning = strategy_table(ScatterStrategy::kPrivatized);
  Aprod aprod(gen.A, device, opts);
  util::Xoshiro256 rng(17);
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
  for (auto& v : y) v = rng.normal();
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()), 0.0);
  aprod.apply2(y, x);

  EXPECT_GT(reg.gauge("scratch.arena.pooled_bytes").value(), 0.0);
  EXPECT_GT(reg.counter("scratch.arena.misses").value(), 0u);

  reg.set_enabled(false);
  reg.reset();
}

}  // namespace
}  // namespace gaia::core
