#include "core/solver.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace gaia::core {
namespace {

TEST(Solver, RunsEndToEndWithFootprintSizing) {
  SolverRunConfig cfg;
  cfg.footprint_bytes = 8 * kMiB;
  cfg.lsqr.max_iterations = 5;
  cfg.lsqr.aprod.backend = backends::BackendKind::kGpuSim;
  const auto report = run_solver(cfg);
  EXPECT_EQ(report.result.iterations, 5);
  EXPECT_GT(report.n_obs, 0);
  const double ratio = static_cast<double>(report.system_bytes) /
                       static_cast<double>(cfg.footprint_bytes);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.2);
  EXPECT_GT(report.generation_seconds, 0.0);
  EXPECT_GT(report.solve_seconds, 0.0);
}

TEST(Solver, ExplicitGeneratorConfigWins) {
  SolverRunConfig cfg;
  cfg.generator = gaia::testing::small_config(80);
  cfg.footprint_bytes = 999 * kMiB;  // must be ignored
  cfg.lsqr.max_iterations = 3;
  cfg.lsqr.aprod.backend = backends::BackendKind::kSerial;
  const auto report = run_solver(cfg);
  EXPECT_EQ(report.layout.n_stars(), cfg.generator->n_stars);
  EXPECT_LT(report.system_bytes, kMiB);
}

TEST(Solver, SummaryMentionsKeyQuantities) {
  SolverRunConfig cfg;
  cfg.generator = gaia::testing::small_config(81);
  cfg.lsqr.max_iterations = 2;
  cfg.lsqr.aprod.backend = backends::BackendKind::kSerial;
  const auto report = run_solver(cfg);
  const std::string s = report.summary();
  EXPECT_NE(s.find("iterations"), std::string::npos);
  EXPECT_NE(s.find("observations"), std::string::npos);
  EXPECT_NE(s.find("mean iteration time"), std::string::npos);
}

TEST(Solver, SameSeedSameSolution) {
  SolverRunConfig cfg;
  cfg.generator = gaia::testing::small_config(82);
  cfg.lsqr.max_iterations = 10;
  cfg.lsqr.aprod.backend = backends::BackendKind::kSerial;
  const auto a = run_solver(cfg);
  const auto b = run_solver(cfg);
  ASSERT_EQ(a.result.x.size(), b.result.x.size());
  for (std::size_t i = 0; i < a.result.x.size(); ++i)
    EXPECT_EQ(a.result.x[i], b.result.x[i]);  // bitwise: serial backend
}

}  // namespace
}  // namespace gaia::core
