#include "core/solver.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace gaia::core {
namespace {

TEST(Solver, RunsEndToEndWithFootprintSizing) {
  SolverRunConfig cfg;
  cfg.footprint_bytes = 8 * kMiB;
  cfg.lsqr.max_iterations = 5;
  cfg.lsqr.aprod.backend = backends::BackendKind::kGpuSim;
  const auto report = run_solver(cfg);
  EXPECT_EQ(report.result.iterations, 5);
  EXPECT_GT(report.n_obs, 0);
  const double ratio = static_cast<double>(report.system_bytes) /
                       static_cast<double>(cfg.footprint_bytes);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.2);
  EXPECT_GT(report.generation_seconds, 0.0);
  EXPECT_GT(report.solve_seconds, 0.0);
}

TEST(Solver, ExplicitGeneratorConfigWins) {
  SolverRunConfig cfg;
  cfg.generator = gaia::testing::small_config(80);
  cfg.footprint_bytes = 999 * kMiB;  // must be ignored
  cfg.lsqr.max_iterations = 3;
  cfg.lsqr.aprod.backend = backends::BackendKind::kSerial;
  const auto report = run_solver(cfg);
  EXPECT_EQ(report.layout.n_stars(), cfg.generator->n_stars);
  EXPECT_LT(report.system_bytes, kMiB);
}

TEST(Solver, SummaryMentionsKeyQuantities) {
  SolverRunConfig cfg;
  cfg.generator = gaia::testing::small_config(81);
  cfg.lsqr.max_iterations = 2;
  cfg.lsqr.aprod.backend = backends::BackendKind::kSerial;
  const auto report = run_solver(cfg);
  const std::string s = report.summary();
  EXPECT_NE(s.find("iterations"), std::string::npos);
  EXPECT_NE(s.find("observations"), std::string::npos);
  EXPECT_NE(s.find("mean iteration time"), std::string::npos);
}

TEST(Solver, SameSeedSameSolution) {
  SolverRunConfig cfg;
  cfg.generator = gaia::testing::small_config(82);
  cfg.lsqr.max_iterations = 10;
  cfg.lsqr.aprod.backend = backends::BackendKind::kSerial;
  const auto a = run_solver(cfg);
  const auto b = run_solver(cfg);
  ASSERT_EQ(a.result.x.size(), b.result.x.size());
  for (std::size_t i = 0; i < a.result.x.size(); ++i)
    EXPECT_EQ(a.result.x[i], b.result.x[i]);  // bitwise: serial backend
}

TEST(Solver, PrecisionModeGrammarMirrorsTheLayoutGrammar) {
  // Canonical tokens plus the CLI short forms, exactly the grammar the
  // cache JSON and --precision share.
  EXPECT_EQ(parse_precision_mode("fp64"), PrecisionMode::kFp64);
  EXPECT_EQ(parse_precision_mode("double"), PrecisionMode::kFp64);
  EXPECT_EQ(parse_precision_mode("f64"), PrecisionMode::kFp64);
  EXPECT_EQ(parse_precision_mode("fp32"), PrecisionMode::kFp32);
  EXPECT_EQ(parse_precision_mode("single"), PrecisionMode::kFp32);
  EXPECT_EQ(parse_precision_mode("float"), PrecisionMode::kFp32);
  EXPECT_EQ(parse_precision_mode("bf16s"), PrecisionMode::kBf16s);
  EXPECT_EQ(parse_precision_mode("bf16"), PrecisionMode::kBf16s);
  EXPECT_EQ(parse_precision_mode("bfloat16"), PrecisionMode::kBf16s);
  EXPECT_EQ(parse_precision_mode("auto"), PrecisionMode::kAuto);
  // Bad tokens: nullopt, so the caller can report the value *and* its
  // origin (flag vs env) — the positioned-error contract.
  EXPECT_FALSE(parse_precision_mode("fp16").has_value());
  EXPECT_FALSE(parse_precision_mode("FP32").has_value());
  EXPECT_FALSE(parse_precision_mode("").has_value());
  EXPECT_FALSE(parse_precision_mode("mixed").has_value());
  for (PrecisionMode m : {PrecisionMode::kFp64, PrecisionMode::kFp32,
                          PrecisionMode::kBf16s, PrecisionMode::kAuto})
    EXPECT_EQ(parse_precision_mode(to_string(m)), m);
}

TEST(Solver, ReducedPrecisionRunRefinesAndReportsIt) {
  SolverRunConfig cfg;
  cfg.generator = gaia::testing::small_config(83);
  cfg.lsqr.max_iterations = 200;
  cfg.lsqr.atol = 1e-12;
  cfg.lsqr.btol = 1e-12;
  cfg.lsqr.aprod.backend = backends::BackendKind::kSerial;
  cfg.precision = PrecisionMode::kFp32;
  const auto report = run_solver(cfg);
  EXPECT_TRUE(report.refinement_ran);
  EXPECT_TRUE(report.refinement.converged);
  EXPECT_FALSE(report.precision_fell_back);
  for (backends::KernelId id : backends::all_kernels())
    EXPECT_EQ(report.tuning_used.get(id).precision,
              backends::Precision::kFp32);
  const std::string s = report.summary();
  EXPECT_NE(s.find("precision: fp32"), std::string::npos);
  EXPECT_NE(s.find("refine:"), std::string::npos);
  EXPECT_NE(s.find("converged"), std::string::npos);

  // The refined solution matches a pure-FP64 run of the same problem.
  SolverRunConfig fp64_cfg = cfg;
  fp64_cfg.precision = PrecisionMode::kFp64;
  const auto fp64_report = run_solver(fp64_cfg);
  EXPECT_FALSE(fp64_report.refinement_ran);
  EXPECT_LT(gaia::testing::rel_l2_error(report.result.x,
                                        fp64_report.result.x),
            1e-6);
}

TEST(Solver, StalledRefinementFallsBackToFp64AndSaysSo) {
  SolverRunConfig cfg;
  cfg.generator = gaia::testing::small_config(84);
  cfg.lsqr.max_iterations = 150;
  cfg.lsqr.aprod.backend = backends::BackendKind::kSerial;
  cfg.precision = PrecisionMode::kBf16s;
  cfg.refine.max_corrections = 1;
  cfg.refine.tolerance = 1e-300;  // unreachable -> guaranteed stall
  const auto report = run_solver(cfg);
  EXPECT_TRUE(report.refinement_ran);
  EXPECT_FALSE(report.refinement.converged);
  EXPECT_TRUE(report.precision_fell_back);
  // The fallback re-solve runs — and is reported — in full precision.
  for (backends::KernelId id : backends::all_kernels())
    EXPECT_EQ(report.tuning_used.get(id).precision,
              backends::Precision::kFp64);
  const std::string s = report.summary();
  EXPECT_NE(s.find("fell back to fp64"), std::string::npos);
}

}  // namespace
}  // namespace gaia::core
