#include "core/weights.hpp"

#include <gtest/gtest.h>

#include "core/lsqr.hpp"
#include "matrix/dense.hpp"
#include "matrix/generator.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace gaia::core {
namespace {

TEST(RowWeights, ScalesMatrixAndRhs) {
  auto gen = matrix::generate_system(gaia::testing::small_config(120));
  const auto values_before =
      std::vector<real>(gen.A.values().begin(), gen.A.values().end());
  const auto b_before = std::vector<real>(gen.A.known_terms().begin(),
                                          gen.A.known_terms().end());
  std::vector<real> w(static_cast<std::size_t>(gen.A.n_rows()));
  util::Xoshiro256 rng(1);
  for (auto& v : w) v = 0.5 + rng.uniform();
  apply_row_weights(gen.A, w);
  for (row_index r = 0; r < gen.A.n_rows(); ++r) {
    const auto ri = static_cast<std::size_t>(r);
    for (int k = 0; k < kNnzPerRow; ++k) {
      EXPECT_DOUBLE_EQ(gen.A.values()[ri * kNnzPerRow + k],
                       values_before[ri * kNnzPerRow + k] * w[ri]);
    }
    EXPECT_DOUBLE_EQ(gen.A.known_terms()[ri], b_before[ri] * w[ri]);
  }
}

TEST(RowWeights, UnitWeightsAreIdentity) {
  auto gen = matrix::generate_system(gaia::testing::small_config(121));
  const auto before =
      std::vector<real>(gen.A.values().begin(), gen.A.values().end());
  std::vector<real> ones(static_cast<std::size_t>(gen.A.n_rows()), 1.0);
  apply_row_weights(gen.A, ones);
  EXPECT_TRUE(std::equal(before.begin(), before.end(),
                         gen.A.values().begin()));
}

TEST(RowWeights, RejectsBadInput) {
  auto gen = matrix::generate_system(gaia::testing::small_config(122));
  std::vector<real> short_w(3, 1.0);
  EXPECT_THROW(apply_row_weights(gen.A, short_w), gaia::Error);
  std::vector<real> bad(static_cast<std::size_t>(gen.A.n_rows()), 1.0);
  bad[0] = 0.0;
  EXPECT_THROW(apply_row_weights(gen.A, bad), gaia::Error);
}

TEST(FormalWeights, InverseOfSigma) {
  std::vector<real> sigmas{0.5, 2.0, 1.0};
  const auto w = weights_from_formal_errors(sigmas);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_DOUBLE_EQ(w[2], 1.0);
  std::vector<real> bad{1.0, 0.0};
  EXPECT_THROW(weights_from_formal_errors(bad), gaia::Error);
}

TEST(Huber, CoreKeepsUnitWeight) {
  std::vector<real> residuals{0.1, -0.2, 0.15, -0.05, 0.12};
  HuberConfig cfg;
  cfg.sigma_unit = 1.0;  // threshold = 3
  const auto f = huber_factors(residuals, cfg);
  for (real v : f) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Huber, OutliersDownweightedProportionally) {
  std::vector<real> residuals{0.1, 6.0, -12.0};
  HuberConfig cfg;
  cfg.k = 3.0;
  cfg.sigma_unit = 1.0;
  const auto f = huber_factors(residuals, cfg);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 0.5);   // 3 / 6
  EXPECT_DOUBLE_EQ(f[2], 0.25);  // 3 / 12
}

TEST(Huber, MadScaleEstimatedWhenUnset) {
  // Gaussian-ish core with one large outlier: the MAD-derived cut must
  // flag only the outlier.
  util::Xoshiro256 rng(2);
  std::vector<real> residuals(500);
  for (auto& r : residuals) r = rng.normal(0.0, 0.1);
  residuals[7] = 5.0;
  const auto f = huber_factors(residuals);
  EXPECT_LT(f[7], 0.2);
  int downweighted = 0;
  for (real v : f) downweighted += (v < 1.0);
  EXPECT_LT(downweighted, 25);  // ~1% expected beyond 3 sigma
}

TEST(Huber, AllZeroResidualsNoop) {
  std::vector<real> residuals(10, 0.0);
  const auto f = huber_factors(residuals);
  for (real v : f) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Residuals, MatchDenseComputation) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(123));
  util::Xoshiro256 rng(3);
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()));
  for (auto& v : x) v = rng.normal();
  const auto res = compute_residuals(gen.A, x);
  const auto M = matrix::to_dense(gen.A);
  auto expect = matrix::dense_matvec(M, gen.A.n_rows(), gen.A.n_cols(), x);
  for (std::size_t i = 0; i < expect.size(); ++i)
    expect[i] -= gen.A.known_terms()[i];
  EXPECT_LT(gaia::testing::max_abs_diff(res, expect), 1e-10);
}

TEST(WeightedSolve, EquivalentToScaledSystem) {
  // Solving the weighted system must equal dense weighted least squares.
  auto gen = matrix::generate_system(gaia::testing::small_config(124));
  std::vector<real> w(static_cast<std::size_t>(gen.A.n_rows()));
  util::Xoshiro256 rng(4);
  for (auto& v : w) v = 0.25 + rng.uniform();
  apply_row_weights(gen.A, w);

  LsqrOptions opts;
  opts.aprod.backend = backends::BackendKind::kSerial;
  opts.aprod.use_streams = false;
  opts.max_iterations = 500;
  opts.atol = 1e-12;
  opts.btol = 1e-12;
  const auto result = lsqr_solve(gen.A, opts);
  const auto M = matrix::to_dense(gen.A);
  const auto x_ref = matrix::dense_least_squares(
      M, gen.A.n_rows(), gen.A.n_cols(), gen.A.known_terms());
  EXPECT_LT(gaia::testing::rel_l2_error(result.x, x_ref), 1e-6);
}

TEST(WeightedSolve, DownweightingOutliersImprovesRecovery) {
  // Ground-truth system with a handful of corrupted observations: the
  // robust re-weighted solve must land closer to the truth.
  auto cfg = gaia::testing::medium_config(125);
  cfg.rhs_mode = matrix::RhsMode::kFromGroundTruth;
  cfg.noise_sigma = 0.01;
  auto gen = matrix::generate_system(cfg);
  auto b = gen.A.known_terms();
  util::Xoshiro256 rng(5);
  for (int k = 0; k < 25; ++k) {
    b[rng.uniform_index(static_cast<std::uint64_t>(gen.A.n_obs()))] +=
        rng.normal(0.0, 20.0);
  }

  LsqrOptions opts;
  opts.aprod.backend = backends::BackendKind::kSerial;
  opts.aprod.use_streams = false;
  opts.max_iterations = 400;
  opts.atol = 1e-12;
  opts.btol = 1e-12;
  const auto naive = lsqr_solve(gen.A, opts);

  // One robust outer iteration: residuals -> Huber factors -> re-solve.
  const auto residuals = compute_residuals(gen.A, naive.x);
  const auto factors = huber_factors(residuals);
  matrix::SystemMatrix weighted = gen.A;
  apply_row_weights(weighted, factors);
  const auto robust = lsqr_solve(weighted, opts);

  const auto& truth = *gen.ground_truth;
  const double err_naive = gaia::testing::rel_l2_error(naive.x, truth);
  const double err_robust = gaia::testing::rel_l2_error(robust.x, truth);
  EXPECT_LT(err_robust, err_naive);
}

}  // namespace
}  // namespace gaia::core
