#include "core/lsqr_engine.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "matrix/generator.hpp"
#include "test_helpers.hpp"

namespace gaia::core {
namespace {

LsqrOptions engine_options(backends::BackendKind backend =
                               backends::BackendKind::kSerial) {
  LsqrOptions opts;
  opts.aprod.backend = backend;
  opts.aprod.use_streams = false;
  opts.max_iterations = 60;
  return opts;
}

TEST(LsqrEngine, SteppedRunMatchesBatchSolve) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(130));
  const auto batch = lsqr_solve(gen.A, engine_options());

  LsqrEngine engine(gen.A, engine_options());
  while (engine.step()) {
  }
  const auto stepped = engine.result();
  ASSERT_EQ(stepped.iterations, batch.iterations);
  for (std::size_t i = 0; i < batch.x.size(); ++i)
    EXPECT_EQ(stepped.x[i], batch.x[i]);  // bitwise: same code path
  EXPECT_EQ(stepped.rnorm, batch.rnorm);
}

TEST(LsqrEngine, IntermediateResultsAreQueryable) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(131));
  LsqrEngine engine(gen.A, engine_options());
  EXPECT_EQ(engine.iteration(), 0);
  engine.step();
  EXPECT_EQ(engine.iteration(), 1);
  const auto mid = engine.result();
  EXPECT_EQ(mid.iterations, 1);
  EXPECT_GT(mid.rnorm, 0.0);
  engine.step();
  EXPECT_EQ(engine.iteration(), 2);
  EXPECT_FALSE(engine.finished());
}

TEST(LsqrEngine, RnormDecreasesMonotonically) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(132));
  LsqrEngine engine(gen.A, engine_options());
  real prev = 1e300;
  while (engine.step()) {
    EXPECT_LE(engine.rnorm(), prev + 1e-12);
    prev = engine.rnorm();
  }
}

TEST(LsqrEngine, RunToCompletionCountsRemainingSteps) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(133));
  LsqrEngine engine(gen.A, engine_options());
  engine.step();
  engine.step();
  const auto remaining = engine.run_to_completion();
  EXPECT_EQ(remaining + 2, engine.iteration());
  EXPECT_TRUE(engine.finished());
  EXPECT_FALSE(engine.step());  // no-op after completion
  EXPECT_EQ(engine.iteration(), remaining + 2);
}

TEST(LsqrEngine, ZeroRhsFinishesImmediately) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(134));
  std::vector<real> zero(static_cast<std::size_t>(gen.A.n_rows()), 0.0);
  LsqrEngine engine(gen.A, zero, engine_options());
  EXPECT_TRUE(engine.finished());
  EXPECT_EQ(engine.stop_reason(), LsqrStop::kXZero);
}

class LsqrCheckpoint : public ::testing::TestWithParam<backends::BackendKind> {
};

TEST_P(LsqrCheckpoint, ResumedRunIsBitIdentical) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(135));
  const auto opts = engine_options(GetParam());

  // Uninterrupted run.
  LsqrEngine full(gen.A, opts);
  full.run_to_completion();
  const auto expected = full.result();

  // Interrupted at iteration 20, checkpointed, restored into a fresh
  // engine, resumed.
  LsqrEngine first(gen.A, opts);
  for (int i = 0; i < 20; ++i) first.step();
  std::stringstream ckpt;
  first.checkpoint(ckpt);

  LsqrEngine second(gen.A, opts);
  second.restore(ckpt);
  EXPECT_EQ(second.iteration(), 20);
  second.run_to_completion();
  const auto resumed = second.result();

  ASSERT_EQ(resumed.iterations, expected.iterations);
  // The serial backend is deterministic -> bitwise identical. Parallel
  // backends have a non-deterministic aprod2 accumulation order whose
  // roundoff the Krylov recurrence amplifies, so the resumed run may
  // only agree as well as two *uninterrupted* runs agree with each
  // other — measure that baseline and require the same level.
  if (GetParam() == backends::BackendKind::kSerial) {
    for (std::size_t i = 0; i < expected.x.size(); ++i)
      ASSERT_EQ(resumed.x[i], expected.x[i]) << i;
    EXPECT_EQ(resumed.rnorm, expected.rnorm);
  } else {
    // The elementwise divergence between two parallel runs is chaotic
    // (atomic-order roundoff amplified by the Krylov recurrence), so the
    // meaningful resume invariant is solution *quality*: the resumed run
    // must land on an equally good least-squares solution. The observed
    // run-to-run rnorm spread of this problem is ~1e-4 relative (the
    // old 1e-6 bound flaked roughly one run in seven), so the bound is
    // set an order of magnitude above the spread. Bit-exactness of the
    // checkpoint mechanism itself is covered by the serial branch above
    // and by SingleLaneGpusimResumeIsBitIdentical below.
    EXPECT_NEAR(resumed.rnorm, expected.rnorm,
                1e-3 * std::max<real>(1, expected.rnorm));
    EXPECT_LT(gaia::testing::rel_l2_error(resumed.x, expected.x), 1e-2);
  }
}

// With a single block and a single thread per block the gpusim backend
// has a deterministic accumulation order, so resume must be bitwise
// exact — this isolates checkpoint-state completeness from the
// atomic-order roundoff the stochastic bound above tolerates.
TEST(LsqrCheckpointDeterministic, SingleLaneGpusimResumeIsBitIdentical) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(135));
  auto opts = engine_options(backends::BackendKind::kGpuSim);
  opts.aprod.tuning = backends::TuningTable::untuned({1, 1});

  LsqrEngine full(gen.A, opts);
  full.run_to_completion();
  const auto expected = full.result();

  LsqrEngine first(gen.A, opts);
  for (int i = 0; i < 20; ++i) first.step();
  std::stringstream ckpt;
  first.checkpoint(ckpt);

  LsqrEngine second(gen.A, opts);
  second.restore(ckpt);
  second.run_to_completion();
  const auto resumed = second.result();

  ASSERT_EQ(resumed.iterations, expected.iterations);
  for (std::size_t i = 0; i < expected.x.size(); ++i)
    ASSERT_EQ(resumed.x[i], expected.x[i]) << i;
  EXPECT_EQ(resumed.rnorm, expected.rnorm);
}

INSTANTIATE_TEST_SUITE_P(Backends, LsqrCheckpoint,
                         ::testing::Values(backends::BackendKind::kSerial,
                                           backends::BackendKind::kGpuSim),
                         [](const auto& info) {
                           return backends::to_string(info.param);
                         });

TEST(LsqrCheckpointErrors, WrongSystemRejected) {
  const auto gen_a = matrix::generate_system(gaia::testing::small_config(136));
  const auto gen_b = matrix::generate_system(gaia::testing::small_config(137));
  LsqrEngine a(gen_a.A, engine_options());
  a.step();
  std::stringstream ckpt;
  a.checkpoint(ckpt);
  LsqrEngine b(gen_b.A, engine_options());
  EXPECT_THROW(b.restore(ckpt), gaia::Error);
}

TEST(LsqrCheckpointErrors, WrongOptionsRejected) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(138));
  LsqrEngine a(gen.A, engine_options());
  a.step();
  std::stringstream ckpt;
  a.checkpoint(ckpt);
  auto other = engine_options();
  other.damp = 0.5;
  LsqrEngine b(gen.A, other);
  EXPECT_THROW(b.restore(ckpt), gaia::Error);
}

TEST(LsqrCheckpointErrors, LargerIterationBudgetStillAccepted) {
  // The iteration budget is not part of the problem: a rerun with a
  // larger --iterations must be able to resume the same checkpoint.
  const auto gen = matrix::generate_system(gaia::testing::small_config(143));
  auto short_opts = engine_options();
  short_opts.max_iterations = 15;
  LsqrEngine a(gen.A, short_opts);
  for (int i = 0; i < 10; ++i) a.step();
  std::stringstream ckpt;
  a.checkpoint(ckpt);

  auto long_opts = engine_options();
  long_opts.max_iterations = 60;
  LsqrEngine b(gen.A, long_opts);
  b.restore(ckpt);
  EXPECT_EQ(b.iteration(), 10);
  b.run_to_completion();
  EXPECT_EQ(b.iteration(), 60);
}

TEST(LsqrCheckpointErrors, CorruptStreamRejected) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(139));
  LsqrEngine a(gen.A, engine_options());
  a.step();
  std::stringstream ckpt;
  a.checkpoint(ckpt);
  const std::string full = ckpt.str();
  std::stringstream truncated(full.substr(0, full.size() / 3));
  LsqrEngine b(gen.A, engine_options());
  EXPECT_THROW(b.restore(truncated), gaia::Error);
  std::stringstream garbage("not a checkpoint at all");
  EXPECT_THROW(b.restore(garbage), gaia::Error);
}

TEST(LsqrCheckpointFiles, RoundTripsThroughDisk) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(140));
  const std::string path = ::testing::TempDir() + "gaia_lsqr.ckpt";
  LsqrEngine a(gen.A, engine_options());
  for (int i = 0; i < 5; ++i) a.step();
  a.checkpoint(path);
  LsqrEngine b(gen.A, engine_options());
  b.restore(path);
  EXPECT_EQ(b.iteration(), 5);
  std::remove(path.c_str());
}

TEST(LsqrCheckpointFiles, TruncatedFileRejectedNamingPathAndReason) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(141));
  const std::string path = ::testing::TempDir() + "gaia_lsqr_trunc.ckpt";
  LsqrEngine a(gen.A, engine_options());
  for (int i = 0; i < 5; ++i) a.step();
  a.checkpoint(path);
  // Simulate a job killed mid-write: the sealed file loses its tail.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 16);
  LsqrEngine b(gen.A, engine_options());
  try {
    b.restore(path);
    FAIL() << "expected gaia::Error";
  } catch (const gaia::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(LsqrCheckpointFiles, BitFlippedFileRejectedNamingPathAndReason) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(142));
  const std::string path = ::testing::TempDir() + "gaia_lsqr_flip.ckpt";
  LsqrEngine a(gen.A, engine_options());
  for (int i = 0; i < 5; ++i) a.step();
  a.checkpoint(path);
  {
    // One bit of cosmic-ray rot in the middle of the payload.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(64);
    const int byte = f.get();
    f.seekp(64);
    f.put(static_cast<char>(byte ^ 0x01));
  }
  LsqrEngine b(gen.A, engine_options());
  try {
    b.restore(path);
    FAIL() << "expected gaia::Error";
  } catch (const gaia::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("CRC mismatch"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gaia::core
