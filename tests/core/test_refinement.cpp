/// Numerics contract of the mixed-precision axis: every reduced storage
/// precision, on every layout, strategy, and backend, converges (with
/// FP64 iterative refinement) to the FP64 serial seed solution within
/// the refinement tolerance; a starved correction budget reports the
/// stall instead of pretending.
#include "core/refinement.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/lsqr.hpp"
#include "matrix/generator.hpp"
#include "test_helpers.hpp"

namespace gaia::core {
namespace {

using backends::BackendKind;
using backends::Precision;
using backends::ScatterStrategy;
using backends::StorageLayout;

LsqrOptions solve_options(BackendKind backend) {
  LsqrOptions opts;
  opts.aprod.backend = backend;
  opts.aprod.use_streams = backend != BackendKind::kSerial;
  opts.max_iterations = 400;
  opts.atol = 1e-12;
  opts.btol = 1e-12;
  opts.compute_std_errors = false;
  return opts;
}

void force_axes(backends::TuningTable& table, Precision p,
                StorageLayout layout, ScatterStrategy strategy) {
  for (backends::KernelId id : backends::all_kernels()) {
    backends::KernelConfig cfg = table.get(id);
    cfg.precision = p;
    cfg.layout = layout;
    if (backends::kernel_uses_atomics(id)) cfg.strategy = strategy;
    table.set(id, cfg);
  }
}

struct Combo {
  BackendKind backend;
  Precision precision;
  StorageLayout layout;
  ScatterStrategy strategy;
};

class RefinedSolve : public ::testing::TestWithParam<Combo> {};

TEST_P(RefinedSolve, MatchesTheFp64SerialSeedWithinTolerance) {
  const Combo c = GetParam();
  const auto gen = matrix::generate_system(gaia::testing::small_config(77));

  // FP64 serial seed: the production reference.
  const auto reference = lsqr_solve(gen.A, solve_options(BackendKind::kSerial));

  LsqrOptions reduced = solve_options(c.backend);
  force_axes(reduced.aprod.tuning, c.precision, c.layout, c.strategy);
  auto result = lsqr_solve(gen.A, reduced);
  const double unrefined =
      gaia::testing::rel_l2_error(result.x, reference.x);

  RefinementOptions ropts;
  const auto report = refine_corrections(gen.A, gen.A.known_terms(),
                                         result.x, reduced, ropts);
  const double refined = gaia::testing::rel_l2_error(result.x, reference.x);
  const std::string tag = backends::to_string(c.backend) + "/" +
                          backends::to_string(c.precision) + "/" +
                          backends::to_string(c.layout);

  if (c.precision == Precision::kFp32) {
    // fp32 storage keeps ~7 significant digits; FP64 refinement closes
    // the rest. The refined solution matches the FP64 seed tightly.
    EXPECT_TRUE(report.converged)
        << tag << " stalled after " << report.corrections;
    EXPECT_LT(refined, 1e-6) << tag;
  } else {
    // bf16s perturbs the matrix by ~2^-8, so plain least-squares
    // refinement has a bias floor of O(eps_bf16s * kappa * ||r||): it
    // must IMPROVE the solution, but may honestly report a stall — the
    // production path then falls back to fp64 (see the solver tests).
    EXPECT_LE(refined, unrefined) << tag;
    EXPECT_LT(refined, 1e-2) << tag;
    if (!report.converged)
      EXPECT_EQ(report.corrections, ropts.max_corrections) << tag;
  }
  // The FP64 true residual is always measured and reported.
  EXPECT_GT(report.true_rnorm, 0.0);
}

std::vector<Combo> all_combos() {
  std::vector<Combo> combos;
  for (BackendKind b :
       {BackendKind::kSerial, BackendKind::kOpenMP, BackendKind::kPstl,
        BackendKind::kGpuSim})
    for (Precision p : {Precision::kFp32, Precision::kBf16s})
      for (StorageLayout l :
           {StorageLayout::kSeedAos, StorageLayout::kSoaTiled,
            StorageLayout::kSlicedInstr})
        for (ScatterStrategy s :
             {ScatterStrategy::kAtomic, ScatterStrategy::kPrivatized})
          combos.push_back({b, p, l, s});
  return combos;
}

INSTANTIATE_TEST_SUITE_P(
    AllAxes, RefinedSolve, ::testing::ValuesIn(all_combos()),
    [](const ::testing::TestParamInfo<Combo>& info) {
      const Combo& c = info.param;
      return backends::to_string(c.backend) + "_" +
             backends::to_string(c.precision) + "_" +
             backends::to_string(c.layout) + "_" +
             backends::to_string(c.strategy);
    });

TEST(Refinement, TrueResidualMatchesHandComputedNorms) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(78));
  LsqrOptions opts = solve_options(BackendKind::kSerial);
  backends::DeviceContext device(opts.device_capacity, "test");
  Aprod aprod(gen.A, device, opts.aprod);
  const auto b = gen.A.known_terms();
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()), 0.0);
  std::vector<real> r(b.size());
  const TrueResidual res = true_residual(aprod, b, x, r);
  // x = 0 -> r = b, so ||r|| = ||b||.
  real bnorm = 0;
  for (real v : b) bnorm += v * v;
  EXPECT_NEAR(res.rnorm, std::sqrt(bnorm), 1e-9 * std::sqrt(bnorm));
  EXPECT_GT(res.arnorm, 0.0);
}

TEST(Refinement, StarvedBudgetReportsTheStall) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(79));
  LsqrOptions reduced = solve_options(BackendKind::kSerial);
  force_axes(reduced.aprod.tuning, Precision::kBf16s,
             StorageLayout::kSeedAos, ScatterStrategy::kAtomic);
  auto result = lsqr_solve(gen.A, reduced);

  RefinementOptions starved;
  starved.max_corrections = 1;
  starved.tolerance = 1e-300;  // unreachable: any correction is "large"
  const auto report = refine_corrections(gen.A, gen.A.known_terms(),
                                         result.x, reduced, starved);
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.corrections, 1);
  ASSERT_EQ(report.update_norms.size(), 1u);
  EXPECT_GT(report.update_norms[0], 0.0);
}

TEST(Refinement, ConvergesOnANoiseFreeSystemWithinBudget) {
  // Property shape (satellite 3): with noise off the system is
  // consistent, so refinement contracts geometrically until the bf16s
  // perturbation floor (empirically ~1e-9 rad inf-norm here). Require
  // convergence to a bf16s-reachable tolerance in <= 6 corrections for
  // several seeds, with a net shrink across the correction sequence.
  for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
    auto cfg = gaia::testing::small_config(seed);
    cfg.noise_sigma = 0.0;
    const auto gen = matrix::generate_system(cfg);

    LsqrOptions reduced = solve_options(BackendKind::kSerial);
    force_axes(reduced.aprod.tuning, Precision::kBf16s,
               StorageLayout::kSoaTiled, ScatterStrategy::kAtomic);
    auto result = lsqr_solve(gen.A, reduced);

    RefinementOptions ropts;  // max_corrections = 6
    ropts.tolerance = 1e-8;   // above the bf16s bias floor
    const auto report = refine_corrections(gen.A, gen.A.known_terms(),
                                           result.x, reduced, ropts);
    EXPECT_TRUE(report.converged) << "seed " << seed;
    EXPECT_LE(report.corrections, 6) << "seed " << seed;
    ASSERT_FALSE(report.update_norms.empty()) << "seed " << seed;
    EXPECT_LE(report.update_norms.back(), ropts.tolerance)
        << "seed " << seed;
    if (report.update_norms.size() > 1)
      EXPECT_LT(report.update_norms.back(), report.update_norms.front())
          << "seed " << seed;
  }
}

}  // namespace
}  // namespace gaia::core
