#include "validation/compare.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace gaia::validation {
namespace {

TEST(CompareSolutions, IdenticalVectorsAreInPerfectAgreement) {
  std::vector<real> a{1e-6, -2e-6, 3e-7};
  const auto cmp = compare_solutions(a, a);
  EXPECT_DOUBLE_EQ(cmp.max_abs_diff, 0.0);
  EXPECT_DOUBLE_EQ(cmp.rel_l2_error, 0.0);
  EXPECT_TRUE(cmp.below_accuracy_goal);
}

TEST(CompareSolutions, DetectsLargeDisagreement) {
  std::vector<real> a{1e-6, 2e-6};
  std::vector<real> b{1e-6, 2e-6 + 1e-9};  // way above 10 uas (4.8e-11)
  const auto cmp = compare_solutions(b, a);
  EXPECT_FALSE(cmp.below_accuracy_goal);
  EXPECT_NEAR(cmp.max_abs_diff, 1e-9, 1e-15);
}

TEST(CompareSolutions, AccuracyGoalUsesMeanAndSigma) {
  // Differences individually below the goal but with custom threshold.
  std::vector<real> ref(100, 0.0);
  std::vector<real> cand(100, 1e-12);
  const auto strict = compare_solutions(cand, ref, {}, {}, 1e-13);
  EXPECT_FALSE(strict.below_accuracy_goal);
  const auto loose = compare_solutions(cand, ref, {}, {}, 1e-11);
  EXPECT_TRUE(loose.below_accuracy_goal);
}

TEST(CompareSolutions, SigmaAgreementCountsCombinedErrors) {
  std::vector<real> ref{0.0, 0.0, 0.0, 0.0};
  std::vector<real> cand{0.5, 1.5, 0.9, 3.0};
  std::vector<real> err(4, 1.0);  // combined sigma = sqrt(2)
  const auto cmp = compare_solutions(cand, ref, err, err);
  // |d| <= sqrt(2): 0.5 yes, 1.5 no... sqrt(2)=1.414 -> 1.5 out, 0.9 in,
  // 3.0 out => 2/4.
  EXPECT_DOUBLE_EQ(cmp.sigma_agreement, 0.5);
}

TEST(CompareSolutions, SizeMismatchThrows) {
  std::vector<real> a{1.0};
  std::vector<real> b{1.0, 2.0};
  EXPECT_THROW(compare_solutions(a, b), gaia::Error);
}

TEST(CompareSolutions, SummaryMentionsVerdict) {
  std::vector<real> a{1e-6};
  EXPECT_NE(compare_solutions(a, a).summary().find("within accuracy goal"),
            std::string::npos);
}

TEST(Scatter, SamplesAstrometricSectionOnly) {
  const matrix::ParameterLayout lay(100, 3, 8, 6, true);
  std::vector<real> ref(static_cast<std::size_t>(lay.n_unknowns()), 1.0);
  std::vector<real> cand = ref;
  const auto pts = astrometric_scatter(lay, cand, ref, 50);
  EXPECT_GT(pts.size(), 10u);
  EXPECT_LE(pts.size(), 60u);
  for (const auto& p : pts) EXPECT_LT(p.unknown, lay.n_astro_params());
}

TEST(Scatter, OneToOneFitOfPerfectAgreement) {
  const matrix::ParameterLayout lay(50, 3, 8, 6, true);
  util::Xoshiro256 rng(3);
  std::vector<real> ref(static_cast<std::size_t>(lay.n_unknowns()));
  for (auto& v : ref) v = rng.normal();
  const auto pts = astrometric_scatter(lay, ref, ref, 1000);
  const auto fit = fit_one_to_one(pts);
  EXPECT_NEAR(fit.slope, 1.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Scatter, FitDetectsSystematicBias) {
  const matrix::ParameterLayout lay(50, 3, 8, 6, true);
  util::Xoshiro256 rng(4);
  std::vector<real> ref(static_cast<std::size_t>(lay.n_unknowns()));
  for (auto& v : ref) v = rng.normal();
  std::vector<real> cand = ref;
  for (auto& v : cand) v = 2.0 * v + 0.5;
  const auto fit = fit_one_to_one(astrometric_scatter(lay, cand, ref, 1000));
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 0.5, 1e-9);
}

}  // namespace
}  // namespace gaia::validation
