#include "validation/residual_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/lsqr.hpp"
#include "core/weights.hpp"
#include "util/rng.hpp"

namespace gaia::validation {
namespace {

std::vector<matrix::Transit> uniform_transits(std::size_t n) {
  std::vector<matrix::Transit> t(n);
  for (std::size_t i = 0; i < n; ++i)
    t[i] = {5.0 * static_cast<real>(i) / static_cast<real>(n - 1), 0.0};
  return t;
}

TEST(ResidualAnalysis, WhiteNoiseLooksWhite) {
  util::Xoshiro256 rng(1);
  const auto transits = uniform_transits(5000);
  std::vector<real> residuals(5000);
  for (auto& r : residuals) r = rng.normal(0.0, 0.1);
  const auto a = analyze_residuals(residuals, transits);
  EXPECT_NEAR(a.global_mean, 0.0, 0.01);
  EXPECT_NEAR(a.global_stddev, 0.1, 0.01);
  EXPECT_TRUE(a.looks_white(0.01, 0.5));
  EXPECT_GT(a.bins_consistent_with_zero, 0.8);
}

TEST(ResidualAnalysis, LinearDriftDetected) {
  util::Xoshiro256 rng(2);
  const auto transits = uniform_transits(5000);
  std::vector<real> residuals(5000);
  for (std::size_t i = 0; i < residuals.size(); ++i)
    residuals[i] = 0.05 * transits[i].time + rng.normal(0.0, 0.01);
  const auto a = analyze_residuals(residuals, transits);
  EXPECT_NEAR(a.trend_slope, 0.05, 0.005);
  EXPECT_FALSE(a.looks_white(0.01, 0.5));
}

TEST(ResidualAnalysis, PeriodicStructureRaisesAutocorrelation) {
  const auto transits = uniform_transits(5000);
  std::vector<real> residuals(5000);
  for (std::size_t i = 0; i < residuals.size(); ++i)
    residuals[i] = 0.2 * std::sin(2.0 * 3.14159 * transits[i].time / 5.0);
  const auto a = analyze_residuals(residuals, transits);
  // Smooth low-frequency structure: adjacent bins strongly correlated.
  EXPECT_GT(a.lag1_autocorrelation, 0.7);
  EXPECT_LT(a.bins_consistent_with_zero, 0.5);
}

TEST(ResidualAnalysis, BinsPartitionAllObservations) {
  util::Xoshiro256 rng(3);
  const auto transits = uniform_transits(1234);
  std::vector<real> residuals(1234, 0.0);
  const auto a = analyze_residuals(residuals, transits, 13);
  std::size_t total = 0;
  for (const auto& b : a.bins) total += b.count;
  EXPECT_EQ(total, 1234u);
  EXPECT_EQ(a.bins.size(), 13u);
}

TEST(ResidualAnalysis, RejectsBadInput) {
  const auto transits = uniform_transits(10);
  std::vector<real> wrong(5);
  EXPECT_THROW(analyze_residuals(wrong, transits), gaia::Error);
  std::vector<real> ok(10);
  EXPECT_THROW(analyze_residuals(ok, transits, 1), gaia::Error);
}

TEST(ResidualAnalysis, SolvedScanLawSystemLeavesWhiteResiduals) {
  // End-to-end: a well-solved scan-law system must leave residuals with
  // no significant time structure (the pipeline's acceptance check).
  matrix::ScanLawConfig cfg;
  cfg.seed = 77;
  cfg.n_stars = 200;
  cfg.transits_per_star_mean = 14.0;
  cfg.noise_sigma = 0.01;
  const auto sys = matrix::generate_from_scanlaw(cfg);

  core::LsqrOptions opts;
  opts.aprod.backend = backends::BackendKind::kSerial;
  opts.aprod.use_streams = false;
  opts.max_iterations = 500;
  opts.atol = 1e-12;
  opts.btol = 1e-12;
  const auto result = core::lsqr_solve(sys.A, opts);
  auto residuals = core::compute_residuals(sys.A, result.x);
  residuals.resize(static_cast<std::size_t>(sys.A.n_obs()));

  const auto a = analyze_residuals(residuals, sys.row_transits);
  EXPECT_NEAR(a.global_mean, 0.0, 3 * 0.01);
  EXPECT_LT(std::abs(a.trend_slope), 0.01);
  EXPECT_GT(a.bins_consistent_with_zero, 0.6);
}

TEST(ResidualAnalysis, UnsolvedSystemShowsStructure) {
  // Residuals of the zero solution are just -b: dominated by the signal,
  // which is strongly time-structured through the scan law.
  matrix::ScanLawConfig cfg;
  cfg.seed = 78;
  cfg.n_stars = 150;
  cfg.noise_sigma = 0.0;
  const auto sys = matrix::generate_from_scanlaw(cfg);
  std::vector<real> zero(static_cast<std::size_t>(sys.A.n_cols()), 0.0);
  auto residuals = core::compute_residuals(sys.A, zero);
  residuals.resize(static_cast<std::size_t>(sys.A.n_obs()));
  const auto a = analyze_residuals(residuals, sys.row_transits);
  EXPECT_GT(a.global_stddev, 0.1);
}

}  // namespace
}  // namespace gaia::validation
