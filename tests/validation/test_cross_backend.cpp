#include "validation/cross_backend.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace gaia::validation {
namespace {

ValidationOptions options() {
  ValidationOptions opts;
  opts.dataset = gaia::testing::medium_config(110);
  opts.dataset.noise_sigma = 0.05;
  opts.lsqr.max_iterations = 200;
  opts.lsqr.atol = 1e-13;
  opts.lsqr.btol = 1e-13;
  return opts;
}

class CrossBackendValidation : public ::testing::Test {
 protected:
  static const ValidationCampaign& campaign() {
    static const ValidationCampaign c = run_validation(options());
    return c;
  }
};

TEST_F(CrossBackendValidation, EveryPortPassesThePaperAcceptance) {
  const auto& c = campaign();
  EXPECT_EQ(c.ports.size(), backends::all_backends().size() - 1);
  for (const auto& port : c.ports) {
    SCOPED_TRACE(backends::to_string(port.backend));
    // Solutions agree within 1 sigma (paper: "in agreement within 1a").
    EXPECT_GT(port.solution.sigma_agreement, 0.99);
    // Mean and sigma of the differences below the 10 uas goal.
    EXPECT_TRUE(port.solution.below_accuracy_goal)
        << port.solution.summary();
    EXPECT_TRUE(port.std_errors.below_accuracy_goal)
        << port.std_errors.summary();
  }
  EXPECT_TRUE(c.all_passed);
}

TEST_F(CrossBackendValidation, OneToOneRelationHolds) {
  for (const auto& port : campaign().ports) {
    SCOPED_TRACE(backends::to_string(port.backend));
    EXPECT_NEAR(port.one_to_one.slope, 1.0, 1e-6);
    EXPECT_NEAR(port.one_to_one.intercept, 0.0, 1e-9);
    EXPECT_GT(port.one_to_one.r2, 0.999999);
  }
}

TEST_F(CrossBackendValidation, SolutionsAreAstrometricScale) {
  // The validation datasets are radian-scale quantities (~1e-6), making
  // the micro-arcsecond threshold meaningful.
  const auto& ref = campaign().reference;
  double max_abs = 0;
  for (real v : ref.x) max_abs = std::max(max_abs, std::abs(v));
  EXPECT_LT(max_abs, 1e-3);
  EXPECT_GT(max_abs, 1e-9);
}

TEST_F(CrossBackendValidation, StdErrorsArePositive) {
  for (const auto& port : campaign().ports) {
    for (real se : port.result.std_errors) {
      ASSERT_GT(se, 0.0);
    }
  }
}

TEST(CrossBackendValidationConfig, ScaleOneLeavesRawUnits) {
  ValidationOptions opts = options();
  opts.dataset = gaia::testing::small_config(111);
  opts.lsqr.max_iterations = 50;
  opts.solution_scale = 1.0;
  const auto c = run_validation(opts);
  double max_abs = 0;
  for (real v : c.reference.x) max_abs = std::max(max_abs, std::abs(v));
  EXPECT_GT(max_abs, 1e-2);  // O(1) ground truth
}

}  // namespace
}  // namespace gaia::validation
