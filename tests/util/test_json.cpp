#include "util/json.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"

namespace gaia::util {
namespace {

TEST(Json, ParsesScalarsAndStructure) {
  const JsonValue v = parse_json(
      R"({"a": 1.5, "b": "text", "c": [true, false, null], "d": {"e": -2e3}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("a")->number, 1.5);
  EXPECT_EQ(v.find("b")->string, "text");
  const JsonValue* c = v.find("c");
  ASSERT_TRUE(c != nullptr && c->is_array());
  ASSERT_EQ(c->array.size(), 3u);
  EXPECT_TRUE(c->array[0].boolean);
  EXPECT_FALSE(c->array[1].boolean);
  EXPECT_TRUE(c->array[2].is_null());
  EXPECT_DOUBLE_EQ(v.find("d")->number_or("e", 0), -2000.0);
}

TEST(Json, MemberOrderIsPreserved) {
  const JsonValue v = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
  EXPECT_EQ(v.object[2].first, "m");
}

TEST(Json, StringEscapesRoundTrip) {
  const JsonValue v =
      parse_json(R"({"s": "line\nbreak\ttab \"q\" back\\slash é"})");
  EXPECT_EQ(v.find("s")->string, "line\nbreak\ttab \"q\" back\\slash \xc3\xa9");
  // dump() re-escapes; re-parsing yields the same string.
  const JsonValue again = parse_json(v.dump());
  EXPECT_EQ(again.find("s")->string, v.find("s")->string);
}

TEST(Json, DumpRoundTripsNestedDocuments) {
  const std::string src =
      R"({"ev":[{"name":"k","ts":1.25,"args":{"n":3,"ok":true}},{"name":"m"}]})";
  const JsonValue v = parse_json(src);
  const JsonValue rt = parse_json(v.dump());
  ASSERT_TRUE(rt.is_object());
  const JsonValue* ev = rt.find("ev");
  ASSERT_TRUE(ev != nullptr && ev->is_array());
  ASSERT_EQ(ev->array.size(), 2u);
  EXPECT_EQ(ev->array[0].find("name")->string, "k");
  EXPECT_DOUBLE_EQ(ev->array[0].find("ts")->number, 1.25);
  EXPECT_DOUBLE_EQ(ev->array[0].find("args")->number_or("n", 0), 3.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), Error);
  EXPECT_THROW(parse_json("{"), Error);                 // truncated
  EXPECT_THROW(parse_json(R"({"a": })"), Error);        // missing value
  EXPECT_THROW(parse_json(R"({"a": 1,})"), Error);      // trailing comma
  EXPECT_THROW(parse_json(R"({"a": 1} extra)"), Error); // trailing garbage
  EXPECT_THROW(parse_json(R"({'a': 1})"), Error);       // single quotes
  EXPECT_THROW(parse_json(R"({"a": 01})"), Error);      // leading zero
  EXPECT_THROW(parse_json(R"({"a": +1})"), Error);      // leading plus
  EXPECT_THROW(parse_json(R"({"a": nul})"), Error);     // bad literal
  EXPECT_THROW(parse_json("{\"a\": \"\x01\"}"), Error); // bare control char
  EXPECT_THROW(parse_json(R"({"a": "\q"})"), Error);    // bad escape
  EXPECT_THROW(parse_json(R"({"a" 1})"), Error);        // missing colon
}

TEST(Json, ErrorsCarryByteOffsets) {
  try {
    (void)parse_json(R"({"ok": 1, "bad": )");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(Json, NumberGrammarIsStrict) {
  EXPECT_DOUBLE_EQ(parse_json("0.5").number, 0.5);
  EXPECT_DOUBLE_EQ(parse_json("-0").number, 0.0);
  EXPECT_DOUBLE_EQ(parse_json("12e-2").number, 0.12);
  EXPECT_THROW(parse_json("."), Error);
  EXPECT_THROW(parse_json("1."), Error);
  EXPECT_THROW(parse_json(".5"), Error);
  EXPECT_THROW(parse_json("1e"), Error);
}

}  // namespace
}  // namespace gaia::util
