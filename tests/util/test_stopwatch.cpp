#include "util/stopwatch.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace gaia::util {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = w.elapsed_s();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);  // generous upper bound for loaded CI
}

TEST(Stopwatch, ResetRestartsClock) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w.reset();
  EXPECT_LT(w.elapsed_s(), 0.015);
}

TEST(Stopwatch, UnitConversionsConsistent) {
  Stopwatch w;
  const double s = w.elapsed_s();
  EXPECT_GE(w.elapsed_ms(), s * 1e3 * 0.5);
  EXPECT_GE(w.elapsed_us(), s * 1e6 * 0.5);
}

TEST(IterationTimer, AccumulatesSamples) {
  IterationTimer t;
  for (int i = 0; i < 3; ++i) {
    t.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    t.stop();
  }
  EXPECT_EQ(t.count(), 3u);
  EXPECT_GT(t.total_s(), 0.010);
  EXPECT_GT(t.mean_s(), 0.003);
  EXPECT_EQ(t.samples().size(), 3u);
}

TEST(IterationTimer, EmptyTimerIsZero) {
  IterationTimer t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.total_s(), 0.0);
  EXPECT_DOUBLE_EQ(t.mean_s(), 0.0);
}

}  // namespace
}  // namespace gaia::util
