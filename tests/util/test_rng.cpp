#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace gaia::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng(10);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 2.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.25);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexInRange) {
  Xoshiro256 rng(12);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_index(7), 7u);
  }
  // n = 1 always yields 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Xoshiro256 rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NormalMomentsMatch) {
  Xoshiro256 rng(14);
  const int n = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsScalesAndShifts) {
  Xoshiro256 rng(15);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, JumpProducesDisjointStream) {
  Xoshiro256 a(77);
  Xoshiro256 b(77);
  b.jump();
  // Streams must differ immediately and extensively.
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(5), b(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace gaia::util
