#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/types.hpp"

namespace gaia::util {
namespace {

Cli make_cli() {
  Cli cli("prog", "test program");
  cli.add_option("size", "10GB", "problem size");
  cli.add_option("iterations", "100", "iteration count");
  cli.add_option("factor", "1.5", "scale factor");
  cli.add_flag("verbose", "chatty output");
  return cli;
}

TEST(Cli, DefaultsApplyWithoutArguments) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  EXPECT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get("size"), "10GB");
  EXPECT_EQ(cli.get_int("iterations"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("factor"), 1.5);
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, ParsesSeparateAndInlineValues) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--size", "30GB", "--iterations=50",
                        "--verbose"};
  EXPECT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get("size"), "30GB");
  EXPECT_EQ(cli.get_int("iterations"), 50);
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, GetSizeParsesHumanUnits) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--size", "2MB"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_size("size"), 2 * kMiB);
}

TEST(Cli, UnknownOptionThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, MissingValueThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--size"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, FlagWithValueThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose=true"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, NonNumericIntThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--iterations", "many"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_THROW((void)cli.get_int("iterations"), Error);
}

TEST(Cli, HelpReturnsFalseAndListsOptions) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(cli.parse(2, argv));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("--size"), std::string::npos);
  EXPECT_NE(out.find("--verbose"), std::string::npos);
}

TEST(Cli, DuplicateDeclarationThrows) {
  Cli cli("p", "d");
  cli.add_option("x", "1", "h");
  EXPECT_THROW(cli.add_option("x", "2", "h"), Error);
  EXPECT_THROW(cli.add_flag("x", "h"), Error);
}

TEST(Cli, UndeclaredGetThrows) {
  Cli cli("p", "d");
  EXPECT_THROW(cli.get("nope"), Error);
}

// get_or_env precedence contract (shared by --layout/GAIA_LAYOUT and
// --precision/GAIA_PRECISION): flag > env > default, and `source` names
// where the value actually came from so a validation error can point at
// the true origin of a bad token.
TEST(Cli, GetOrEnvFlagWinsOverEnvironment) {
  Cli cli("p", "d");
  cli.add_option("precision", "fp64", "h");
  ::setenv("GAIA_TEST_PRECISION", "bf16s", 1);
  const char* argv[] = {"prog", "--precision", "fp32"};
  EXPECT_TRUE(cli.parse(3, argv));
  std::string source;
  EXPECT_EQ(cli.get_or_env("precision", "GAIA_TEST_PRECISION", &source),
            "fp32");
  EXPECT_EQ(source, "--precision");
  ::unsetenv("GAIA_TEST_PRECISION");
}

TEST(Cli, GetOrEnvEnvironmentWinsOverDefault) {
  Cli cli("p", "d");
  cli.add_option("precision", "fp64", "h");
  ::setenv("GAIA_TEST_PRECISION", "bf16s", 1);
  const char* argv[] = {"prog"};
  EXPECT_TRUE(cli.parse(1, argv));
  std::string source;
  EXPECT_EQ(cli.get_or_env("precision", "GAIA_TEST_PRECISION", &source),
            "bf16s");
  EXPECT_EQ(source, "GAIA_TEST_PRECISION");
  ::unsetenv("GAIA_TEST_PRECISION");
}

TEST(Cli, GetOrEnvEmptyEnvironmentFallsThroughToDefault) {
  Cli cli("p", "d");
  cli.add_option("precision", "fp64", "h");
  ::setenv("GAIA_TEST_PRECISION", "", 1);
  const char* argv[] = {"prog"};
  EXPECT_TRUE(cli.parse(1, argv));
  std::string source;
  EXPECT_EQ(cli.get_or_env("precision", "GAIA_TEST_PRECISION", &source),
            "fp64");
  EXPECT_EQ(source, "default");
  ::unsetenv("GAIA_TEST_PRECISION");
}

}  // namespace
}  // namespace gaia::util
