#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/types.hpp"

namespace gaia::util {
namespace {

Cli make_cli() {
  Cli cli("prog", "test program");
  cli.add_option("size", "10GB", "problem size");
  cli.add_option("iterations", "100", "iteration count");
  cli.add_option("factor", "1.5", "scale factor");
  cli.add_flag("verbose", "chatty output");
  return cli;
}

TEST(Cli, DefaultsApplyWithoutArguments) {
  Cli cli = make_cli();
  const char* argv[] = {"prog"};
  EXPECT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get("size"), "10GB");
  EXPECT_EQ(cli.get_int("iterations"), 100);
  EXPECT_DOUBLE_EQ(cli.get_double("factor"), 1.5);
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, ParsesSeparateAndInlineValues) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--size", "30GB", "--iterations=50",
                        "--verbose"};
  EXPECT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get("size"), "30GB");
  EXPECT_EQ(cli.get_int("iterations"), 50);
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, GetSizeParsesHumanUnits) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--size", "2MB"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_size("size"), 2 * kMiB);
}

TEST(Cli, UnknownOptionThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(Cli, MissingValueThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--size"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, FlagWithValueThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--verbose=true"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(Cli, NonNumericIntThrows) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--iterations", "many"};
  EXPECT_TRUE(cli.parse(3, argv));
  EXPECT_THROW((void)cli.get_int("iterations"), Error);
}

TEST(Cli, HelpReturnsFalseAndListsOptions) {
  Cli cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(cli.parse(2, argv));
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("--size"), std::string::npos);
  EXPECT_NE(out.find("--verbose"), std::string::npos);
}

TEST(Cli, DuplicateDeclarationThrows) {
  Cli cli("p", "d");
  cli.add_option("x", "1", "h");
  EXPECT_THROW(cli.add_option("x", "2", "h"), Error);
  EXPECT_THROW(cli.add_flag("x", "h"), Error);
}

TEST(Cli, UndeclaredGetThrows) {
  Cli cli("p", "d");
  EXPECT_THROW(cli.get("nope"), Error);
}

}  // namespace
}  // namespace gaia::util
