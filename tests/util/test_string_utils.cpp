#include "util/string_utils.hpp"

#include <gtest/gtest.h>

namespace gaia::util {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Trim, StripsWhitespaceBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("GaiA", "gAIa"));
  EXPECT_FALSE(iequals("gaia", "gaia2"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(ParseSize, UnitsAndFractions) {
  EXPECT_EQ(parse_size("1024"), 1024u);
  EXPECT_EQ(parse_size("1KB"), kKiB);
  EXPECT_EQ(parse_size("10GB"), 10 * kGiB);
  EXPECT_EQ(parse_size("10 GiB"), 10 * kGiB);
  EXPECT_EQ(parse_size("1.5MB"), kMiB + kMiB / 2);
  EXPECT_EQ(parse_size("2g"), 2 * kGiB);
  EXPECT_EQ(parse_size("1TB"), 1024 * kGiB);
}

TEST(ParseSize, RejectsMalformed) {
  EXPECT_FALSE(parse_size("").has_value());
  EXPECT_FALSE(parse_size("GB").has_value());
  EXPECT_FALSE(parse_size("10XB").has_value());
  EXPECT_FALSE(parse_size("ten GB").has_value());
}

TEST(FormatBytes, PicksUnit) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(kGiB), "1.00 GiB");
  EXPECT_EQ(format_bytes(10 * kGiB), "10.0 GiB");
}

TEST(FormatSeconds, AdaptiveUnits) {
  EXPECT_EQ(format_seconds(1.5), "1.500 s");
  EXPECT_EQ(format_seconds(0.0015), "1.500 ms");
  EXPECT_EQ(format_seconds(1.5e-6), "1.500 us");
  EXPECT_EQ(format_seconds(2.0e-9), "2.000 ns");
}

}  // namespace
}  // namespace gaia::util
