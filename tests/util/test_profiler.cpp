#include "util/profiler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace gaia::util {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::global().reset();
    Profiler::global().set_enabled(true);
  }
  void TearDown() override {
    Profiler::global().set_enabled(false);
    Profiler::global().reset();
  }
};

TEST_F(ProfilerTest, RecordsCallsAndTotals) {
  auto& p = Profiler::global();
  p.record("kernel_a", 0.010);
  p.record("kernel_a", 0.020);
  p.record("kernel_b", 0.005);
  const auto stats = p.snapshot();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "kernel_a");  // sorted by total desc
  EXPECT_EQ(stats[0].calls, 2u);
  EXPECT_NEAR(stats[0].total_s, 0.030, 1e-12);
  EXPECT_NEAR(p.total_seconds(), 0.035, 1e-12);
}

TEST_F(ProfilerTest, FractionOfPrefix) {
  auto& p = Profiler::global();
  p.record("aprod1_astro", 0.3);
  p.record("aprod2_att", 0.5);
  p.record("blas1_scale", 0.2);
  EXPECT_NEAR(p.fraction_of("aprod"), 0.8, 1e-12);
  EXPECT_NEAR(p.fraction_of("blas1"), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(p.fraction_of("missing"), 0.0);
}

TEST_F(ProfilerTest, DisabledRecordsNothing) {
  auto& p = Profiler::global();
  p.set_enabled(false);
  p.record("ghost", 1.0);
  EXPECT_TRUE(p.snapshot().empty());
  EXPECT_DOUBLE_EQ(p.total_seconds(), 0.0);
}

TEST_F(ProfilerTest, ScopedRegionMeasuresElapsed) {
  {
    ScopedRegion region("scoped");
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  const auto stats = Profiler::global().snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "scoped");
  EXPECT_GE(stats[0].total_s, 0.010);
}

TEST_F(ProfilerTest, ScopedRegionNoopWhenDisabledAtConstruction) {
  Profiler::global().set_enabled(false);
  {
    ScopedRegion region("ghost");
  }
  Profiler::global().set_enabled(true);
  EXPECT_TRUE(Profiler::global().snapshot().empty());
}

TEST_F(ProfilerTest, ConcurrentRecordingIsSound) {
  auto& p = Profiler::global();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&p] {
      for (int i = 0; i < 1000; ++i) p.record("shared", 0.001);
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = p.snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].calls, 4000u);
  EXPECT_NEAR(stats[0].total_s, 4.0, 1e-9);
}

TEST_F(ProfilerTest, TracksMinMaxLast) {
  auto& p = Profiler::global();
  p.record("k", 0.020);
  p.record("k", 0.005);
  p.record("k", 0.012);
  const auto stats = p.snapshot();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_DOUBLE_EQ(stats[0].min_s, 0.005);
  EXPECT_DOUBLE_EQ(stats[0].max_s, 0.020);
  EXPECT_DOUBLE_EQ(stats[0].last_s, 0.012);
  EXPECT_NEAR(stats[0].mean_s(), 0.037 / 3.0, 1e-15);
}

TEST_F(ProfilerTest, MinIsSeededByFirstSample) {
  // min must come from the first recorded value, not from a zero
  // default that every positive sample would lose to.
  auto& p = Profiler::global();
  p.record("k", 0.5);
  EXPECT_DOUBLE_EQ(p.snapshot()[0].min_s, 0.5);
  p.record("k", 0.7);
  EXPECT_DOUBLE_EQ(p.snapshot()[0].min_s, 0.5);
}

TEST_F(ProfilerTest, ReportIncludesMinMaxColumns) {
  auto& p = Profiler::global();
  p.record("k", 0.001);
  p.record("k", 0.004);
  const std::string report = p.report();
  EXPECT_NE(report.find("min (ms)"), std::string::npos);
  EXPECT_NE(report.find("max (ms)"), std::string::npos);
}

TEST_F(ProfilerTest, ConcurrentMinMaxStress) {
  // Many threads hammer overlapping regions with distinct durations;
  // afterwards every region's stats must be internally consistent:
  // exact call counts and totals, min/max equal to the known extremes,
  // last equal to one of the recorded values. Run under TSan in CI.
  auto& p = Profiler::global();
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&p, t] {
      const std::string region = (t % 2 == 0) ? "even" : "odd";
      for (int i = 0; i < kIters; ++i) {
        // Durations in {1ms .. 4ms}, extremes known a priori.
        p.record(region, 0.001 * (1 + (i + t) % 4));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = p.snapshot();
  ASSERT_EQ(stats.size(), 2u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.calls, static_cast<std::uint64_t>(kThreads / 2) * kIters);
    EXPECT_DOUBLE_EQ(s.min_s, 0.001);
    EXPECT_DOUBLE_EQ(s.max_s, 0.004);
    EXPECT_GE(s.last_s, 0.001);
    EXPECT_LE(s.last_s, 0.004);
    EXPECT_NEAR(s.total_s, s.calls * 0.0025, s.calls * 0.0016);
  }
}

TEST_F(ProfilerTest, ReportListsRegionsWithShares) {
  auto& p = Profiler::global();
  p.record("aprod1_astro", 0.75);
  p.record("blas1", 0.25);
  const std::string report = p.report();
  EXPECT_NE(report.find("aprod1_astro"), std::string::npos);
  EXPECT_NE(report.find("75.0%"), std::string::npos);
}

TEST_F(ProfilerTest, ResetClearsEverything) {
  Profiler::global().record("x", 1.0);
  Profiler::global().reset();
  EXPECT_TRUE(Profiler::global().snapshot().empty());
}

}  // namespace
}  // namespace gaia::util
