#include "util/error.hpp"

#include <gtest/gtest.h>

namespace gaia {
namespace {

TEST(Error, CheckPassesOnTrueCondition) {
  EXPECT_NO_THROW(GAIA_CHECK(1 + 1 == 2, "arithmetic works"));
}

TEST(Error, CheckThrowsGaiaErrorOnFalse) {
  EXPECT_THROW(GAIA_CHECK(false, "deliberate"), Error);
}

TEST(Error, MessageCarriesExpressionLocationAndText) {
  try {
    GAIA_CHECK(2 > 3, "two is not greater than three");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("two is not greater than three"),
              std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, IsARuntimeError) {
  // Callers may catch std::runtime_error or std::exception generically.
  EXPECT_THROW(GAIA_CHECK(false, "x"), std::runtime_error);
  EXPECT_THROW(GAIA_CHECK(false, "x"), std::exception);
}

TEST(Error, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto probe = [&calls] {
    ++calls;
    return true;
  };
  GAIA_CHECK(probe(), "side effects must not repeat");
  EXPECT_EQ(calls, 1);
}

TEST(Error, EmptyMessageStillThrowsCleanly) {
  try {
    GAIA_CHECK(false, "");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("check failed"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace gaia
