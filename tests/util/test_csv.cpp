#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace gaia::util {
namespace {

TEST(Csv, EmitsHeaderAndRows) {
  CsvWriter w({"a", "b"});
  w.add_row({"1", "2"});
  w.add_row({"3", "4"});
  EXPECT_EQ(w.str(), "a,b\n1,2\n3,4\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter w({"text"});
  w.add_row({"has,comma"});
  w.add_row({"has\"quote"});
  w.add_row({"has\nnewline"});
  const std::string s = w.str();
  EXPECT_NE(s.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(s.find("\"has\nnewline\""), std::string::npos);
}

TEST(Csv, RejectsArityMismatch) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), Error);
}

TEST(Csv, WriteRoundTripsThroughFile) {
  const std::string path = ::testing::TempDir() + "gaia_csv_test.csv";
  {
    CsvWriter w({"x"});
    w.add_row({"42"});
    w.write(path);
  }
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "x\n42\n");
  std::remove(path.c_str());
}

TEST(Csv, WriteToUnwritablePathThrows) {
  CsvWriter w({"x"});
  EXPECT_THROW(w.write("/nonexistent-dir/file.csv"), Error);
}

}  // namespace
}  // namespace gaia::util
