#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gaia::util {
namespace {

TEST(Stats, MeanBasics) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{7}), 7.0);
}

TEST(Stats, StddevUnbiased) {
  std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(stddev(xs), 2.13809, 1e-4);  // sqrt(32/7)
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{1}), 0.0);
}

TEST(Stats, HarmonicMeanMatchesClosedForm) {
  std::vector<double> xs{1.0, 0.5};  // HM = 2 / (1 + 2) = 2/3
  EXPECT_NEAR(harmonic_mean(xs), 2.0 / 3.0, 1e-12);
}

TEST(Stats, HarmonicMeanZeroOnNonPositive) {
  // The P-metric convention: any unsupported platform (efficiency 0)
  // zeroes the harmonic mean.
  EXPECT_DOUBLE_EQ(harmonic_mean(std::vector<double>{0.9, 0.0, 0.8}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_mean(std::vector<double>{0.9, -0.1}), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_mean(std::vector<double>{}), 0.0);
}

TEST(Stats, HarmonicMeanOfEqualValuesIsThatValue) {
  std::vector<double> xs{0.7, 0.7, 0.7, 0.7};
  EXPECT_NEAR(harmonic_mean(xs), 0.7, 1e-12);
}

TEST(Stats, HarmonicLeqGeometricLeqArithmetic) {
  std::vector<double> xs{0.3, 0.9, 0.5, 0.75};
  const double h = harmonic_mean(xs);
  const double g = geometric_mean(xs);
  const double a = mean(xs);
  EXPECT_LE(h, g + 1e-12);
  EXPECT_LE(g, a + 1e-12);
}

TEST(Stats, MinMaxMedian) {
  std::vector<double> xs{3, 1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(min(xs), 1.0);
  EXPECT_DOUBLE_EQ(max(xs), 5.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Stats, MedianEvenCountInterpolates) {
  std::vector<double> xs{1, 2, 3, 10};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, PercentileClampsQ) {
  std::vector<double> xs{1, 2};
  EXPECT_DOUBLE_EQ(percentile(xs, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 150), 2.0);
}

TEST(Stats, LinearFitExactLine) {
  std::vector<double> x{0, 1, 2, 3};
  std::vector<double> y{1, 3, 5, 7};  // y = 2x + 1
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitDegenerateInputs) {
  EXPECT_DOUBLE_EQ(linear_fit(std::vector<double>{1},
                              std::vector<double>{2}).slope, 0.0);
  // Vertical data (sxx == 0) must not divide by zero.
  std::vector<double> x{2, 2, 2};
  std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(linear_fit(x, y).slope, 0.0);
}

TEST(Stats, SummarizeAggregates) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

}  // namespace
}  // namespace gaia::util
