#include "util/crc32.hpp"

#include <gtest/gtest.h>

#include <string>

namespace gaia::util {
namespace {

TEST(Crc32, MatchesTheIeeeCheckValue) {
  // The canonical CRC-32/IEEE check value (reveng catalogue).
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32("abc"), 0x352441C2u);
}

TEST(Crc32, IncrementalUpdateEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  std::uint32_t state = crc32_init();
  state = crc32_update(state, data.data(), 10);
  state = crc32_update(state, data.data() + 10, 7);
  state = crc32_update(state, data.data() + 17, data.size() - 17);
  EXPECT_EQ(crc32_final(state), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string data(256, '\x5a');
  const std::uint32_t clean = crc32(data);
  for (std::size_t byte : {0u, 100u, 255u}) {
    std::string flipped = data;
    flipped[byte] ^= 0x01;
    EXPECT_NE(crc32(flipped), clean) << "byte " << byte;
  }
}

TEST(Crc32, DetectsTruncation) {
  const std::string data(128, 'q');
  EXPECT_NE(crc32(std::string_view(data).substr(0, 64)), crc32(data));
}

}  // namespace
}  // namespace gaia::util
