#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace gaia::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "2"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"h", "x"});
  t.add_row({"a-very-long-cell", "1"});
  const std::string s = t.str();
  // Every rendered line must have equal length (fixed-width table).
  std::size_t expected = 0;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t end = s.find('\n', start);
    const std::size_t len = end - start;
    if (expected == 0) expected = len;
    EXPECT_EQ(len, expected);
    start = end + 1;
  }
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), Error);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, NumOrNaHandlesNegativeSentinel) {
  EXPECT_EQ(Table::num_or_na(-1.0), "n/a");
  EXPECT_EQ(Table::num_or_na(0.5, 1), "0.5");
}

TEST(Bar, FillsProportionally) {
  const std::string full = bar("x", 1.0, 1.0, 10);
  const std::string half = bar("x", 0.5, 1.0, 10);
  const std::string none = bar("x", 0.0, 1.0, 10);
  auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  EXPECT_EQ(count(full), 10);
  EXPECT_EQ(count(half), 5);
  EXPECT_EQ(count(none), 0);
}

TEST(Bar, ClampsOverflowAndZeroMax) {
  auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '#');
  };
  EXPECT_EQ(count(bar("x", 2.0, 1.0, 10)), 10);
  EXPECT_EQ(count(bar("x", 1.0, 0.0, 10)), 0);
}

}  // namespace
}  // namespace gaia::util
