/// \file test_export.cpp
/// \brief Exporter round-trips (OpenMetrics, sealed JSON snapshots),
/// the perf-counter recording layer, and the session-boundary reset.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/session.hpp"
#include "util/error.hpp"

namespace gaia::obs {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::global().set_enabled(false);
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    MetricsRegistry::global().set_enabled(false);
    MetricsRegistry::global().reset();
    set_global_snapshot_path("");
  }

  static std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "gaia_export_" + name;
  }
};

const OpenMetricsSample* find_sample(
    const std::vector<OpenMetricsSample>& samples, const std::string& name) {
  for (const auto& s : samples)
    if (s.name == name) return &s;
  return nullptr;
}

// Registry entries are zeroed, never deleted (cached references stay
// valid across reset()), so tests select rows by name instead of
// asserting snapshot sizes.
const MetricRow* find_row(const std::vector<MetricRow>& rows,
                          const std::string& name) {
  for (const auto& r : rows)
    if (r.name == name) return &r;
  return nullptr;
}

TEST_F(ExportTest, KernelSeriesNameRoundTrips) {
  const std::string name =
      kernel_series_name("aprod2_att", "gpusim", "privatized", "bytes");
  EXPECT_EQ(name, "kernel.aprod2_att.gpusim.privatized.bytes");
  KernelSeriesName parsed;
  ASSERT_TRUE(parse_kernel_series(name, parsed));
  EXPECT_EQ(parsed.kernel, "aprod2_att");
  EXPECT_EQ(parsed.backend, "gpusim");
  EXPECT_EQ(parsed.strategy, "privatized");
  EXPECT_EQ(parsed.field, "bytes");

  KernelSeriesName out;
  EXPECT_FALSE(parse_kernel_series("transfer.h2d_bytes", out));
  EXPECT_FALSE(parse_kernel_series("kernel.a.b.c", out));        // 4 parts
  EXPECT_FALSE(parse_kernel_series("kernel.a.b.c.d.e", out));    // 6 parts
}

TEST_F(ExportTest, RecordKernelSampleFillsAllSeries) {
  auto& reg = MetricsRegistry::global();
  reg.set_enabled(true);
  KernelSample s;
  s.kernel = "aprod2_att";
  s.backend = "openmp";
  s.strategy = "atomic";
  s.bytes = 1000;
  s.flops = 500;
  s.atomic_updates = 250;
  s.seconds = 0.5;
  record_kernel_sample(s);
  record_kernel_sample(s);

  const auto prefix = std::string("kernel.aprod2_att.openmp.atomic.");
  EXPECT_EQ(reg.counter(prefix + "launches").value(), 2u);
  EXPECT_EQ(reg.counter(prefix + "bytes").value(), 2000u);
  EXPECT_EQ(reg.counter(prefix + "flops").value(), 1000u);
  EXPECT_EQ(reg.counter(prefix + "atomic_updates").value(), 500u);
  EXPECT_EQ(reg.histogram(prefix + "time_seconds").summary().count, 2u);
  // Effective bandwidth of the last launch: 1000 B / 0.5 s.
  EXPECT_DOUBLE_EQ(reg.gauge(prefix + "bandwidth_bytes_per_s").value(),
                   2000.0);
}

TEST_F(ExportTest, RecordingIsDisabledGated) {
  auto& reg = MetricsRegistry::global();
  const std::size_t entries_before = reg.snapshot().size();
  KernelSample s;
  s.kernel = "aprod1_astro";
  s.backend = "serial";
  s.strategy = "none";
  s.bytes = 10;
  s.seconds = 1;
  record_kernel_sample(s);
  record_kernel_time("aprod1_astro", "serial", "none", 1.0);
  record_stream_overlap(2.0, 1.0);
  // A disabled registry must not even grow new entries.
  const auto rows = reg.snapshot();
  EXPECT_EQ(rows.size(), entries_before);
  EXPECT_EQ(find_row(rows, "kernel.aprod1_astro.serial.none.launches"),
            nullptr);
}

TEST_F(ExportTest, StreamOverlapRatio) {
  auto& reg = MetricsRegistry::global();
  reg.set_enabled(true);
  record_stream_overlap(3.0, 1.0);  // 3 kernels fully overlapped
  EXPECT_DOUBLE_EQ(reg.gauge("aprod2.stream_overlap_ratio").value(), 3.0);
  EXPECT_EQ(reg.histogram("aprod2.stream_overlap_ratio_hist")
                .summary()
                .count,
            1u);
  record_stream_overlap(1.0, 0.0);  // degenerate pass: ignored
  EXPECT_DOUBLE_EQ(reg.gauge("aprod2.stream_overlap_ratio").value(), 3.0);
}

TEST_F(ExportTest, OpenMetricsRoundTrip) {
  auto& reg = MetricsRegistry::global();
  reg.set_enabled(true);
  reg.counter("transfer.h2d_bytes").add(4096);
  reg.gauge("lsqr.rnorm").set(1.5);
  auto& h = reg.histogram("iteration.seconds");
  h.record(1.0);
  h.record(2.0);
  h.record(3.0);
  KernelSample s;
  s.kernel = "aprod1_astro";
  s.backend = "openmp";
  s.strategy = "none";
  s.bytes = 123;
  s.flops = 456;
  s.seconds = 0.25;
  record_kernel_sample(s);

  const std::string text = reg.openmetrics();
  EXPECT_NE(text.find("# EOF\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gaia_kernel_bytes counter"),
            std::string::npos);

  const auto parsed = parse_openmetrics(text);
  ASSERT_TRUE(parsed.has_value());

  // Select by labels: other tests may have registered zeroed kernel
  // series in the same family for other backends.
  const OpenMetricsSample* bytes = nullptr;
  for (const auto& sample : *parsed) {
    if (sample.name != "gaia_kernel_bytes_total") continue;
    const std::string* kernel = sample.label("kernel");
    const std::string* backend = sample.label("backend");
    if (kernel != nullptr && *kernel == "aprod1_astro" &&
        backend != nullptr && *backend == "openmp")
      bytes = &sample;
  }
  ASSERT_NE(bytes, nullptr);
  EXPECT_DOUBLE_EQ(bytes->value, 123.0);
  ASSERT_NE(bytes->label("strategy"), nullptr);
  EXPECT_EQ(*bytes->label("strategy"), "none");

  const auto* h2d = find_sample(*parsed, "gaia_transfer_h2d_bytes_total");
  ASSERT_NE(h2d, nullptr);
  EXPECT_DOUBLE_EQ(h2d->value, 4096.0);

  const auto* rnorm = find_sample(*parsed, "gaia_lsqr_rnorm");
  ASSERT_NE(rnorm, nullptr);
  EXPECT_DOUBLE_EQ(rnorm->value, 1.5);

  // Histogram exports as a summary: quantiles + _count + _sum.
  const auto* count = find_sample(*parsed, "gaia_iteration_seconds_count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->value, 3.0);
  const auto* sum = find_sample(*parsed, "gaia_iteration_seconds_sum");
  ASSERT_NE(sum, nullptr);
  EXPECT_DOUBLE_EQ(sum->value, 6.0);
  bool saw_p50 = false;
  for (const auto& sample : *parsed) {
    if (sample.name != "gaia_iteration_seconds") continue;
    const std::string* q = sample.label("quantile");
    ASSERT_NE(q, nullptr);
    if (*q == "0.5") {
      EXPECT_DOUBLE_EQ(sample.value, 2.0);
      saw_p50 = true;
    }
  }
  EXPECT_TRUE(saw_p50);
}

TEST_F(ExportTest, OpenMetricsParserRejectsMalformedInput) {
  EXPECT_FALSE(parse_openmetrics("gaia_x 1\n").has_value());  // no EOF
  EXPECT_FALSE(
      parse_openmetrics("# EOF\ngaia_x 1\n").has_value());  // after EOF
  EXPECT_FALSE(
      parse_openmetrics("gaia_x{oops 1\n# EOF\n").has_value());  // labels
  EXPECT_FALSE(
      parse_openmetrics("gaia_x notanumber\n# EOF\n").has_value());
  const auto empty = parse_openmetrics("# EOF\n");
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST_F(ExportTest, OpenMetricsLabelEscapingRoundTrips) {
  // Label values are derived from kernel-series segments, which nothing
  // sanitizes — backslashes, quotes and newlines must survive the
  // exposition unharmed instead of tearing the line format.
  std::vector<MetricRow> rows(1);
  rows[0].name = "kernel.we\"ird\\k\nname.openmp.atomic.bytes";
  rows[0].type = "counter";
  rows[0].count = 7;
  rows[0].sum = 7;
  rows[0].last = 7;
  const std::string text = to_openmetrics(rows);
  // The raw control characters never appear; their escapes do.
  EXPECT_EQ(text.find("we\"ird"), std::string::npos);
  EXPECT_NE(text.find("we\\\"ird\\\\k\\nname"), std::string::npos);

  const auto parsed = parse_openmetrics(text);
  ASSERT_TRUE(parsed.has_value());
  const OpenMetricsSample* sample = nullptr;
  for (const auto& s : *parsed)
    if (s.name == "gaia_kernel_bytes_total") sample = &s;
  ASSERT_NE(sample, nullptr);
  const std::string* kernel = sample->label("kernel");
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(*kernel, "we\"ird\\k\nname");
  EXPECT_DOUBLE_EQ(sample->value, 7.0);
}

TEST_F(ExportTest, OpenMetricsParserRejectsBadLabelEscapes) {
  // Unknown escape and unterminated value are hard errors, not
  // best-effort truncations.
  EXPECT_FALSE(
      parse_openmetrics("gaia_x{kernel=\"a\\q\"} 1\n# EOF\n").has_value());
  EXPECT_FALSE(
      parse_openmetrics("gaia_x{kernel=\"a} 1\n# EOF\n").has_value());
  // A quoted '}' inside a value must not terminate the label set early.
  const auto ok =
      parse_openmetrics("gaia_x{kernel=\"a}b\"} 2\n# EOF\n");
  ASSERT_TRUE(ok.has_value());
  ASSERT_EQ(ok->size(), 1u);
  ASSERT_NE(ok->front().label("kernel"), nullptr);
  EXPECT_EQ(*ok->front().label("kernel"), "a}b");
  EXPECT_DOUBLE_EQ(ok->front().value, 2.0);
}

TEST_F(ExportTest, SnapshotJsonRoundTrip) {
  std::vector<MetricRow> rows(2);
  rows[0].name = "a.counter";
  rows[0].type = "counter";
  rows[0].count = 7;
  rows[0].sum = 7;
  rows[0].last = 7;
  rows[1].name = "b \"quoted\"\\name";
  rows[1].type = "histogram";
  rows[1].count = 3;
  rows[1].sum = 6.5;
  rows[1].min = 0.5;
  rows[1].max = 4.25;
  rows[1].last = 2;
  rows[1].p50 = 1.75;
  rows[1].p95 = 4;
  rows[1].p99 = 4.25;
  SnapshotMeta meta;
  meta.rank = -1;
  meta.ranks = 4;
  meta.complete = false;

  const std::string json = snapshot_json(rows, meta);
  SnapshotMeta parsed_meta;
  const auto parsed = parse_snapshot_json(json, &parsed_meta);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed_meta.rank, -1);
  EXPECT_EQ(parsed_meta.ranks, 4);
  EXPECT_FALSE(parsed_meta.complete);
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].name, "a.counter");
  EXPECT_EQ((*parsed)[0].count, 7u);
  EXPECT_EQ((*parsed)[1].name, "b \"quoted\"\\name");
  EXPECT_DOUBLE_EQ((*parsed)[1].p99, 4.25);

  EXPECT_FALSE(parse_snapshot_json("{}").has_value());
  EXPECT_FALSE(parse_snapshot_json("not json").has_value());
  // Version from the future is rejected, not guessed at.
  std::string bumped = json;
  bumped.replace(bumped.find("\"version\":1"),
                 std::string("\"version\":1").size(), "\"version\":9");
  EXPECT_FALSE(parse_snapshot_json(bumped).has_value());
}

TEST_F(ExportTest, SnapshotFileSealsAndRejectsCorruption) {
  const std::string path = temp_path("snapshot.json");
  std::vector<MetricRow> rows(1);
  rows[0].name = "x";
  rows[0].type = "gauge";
  rows[0].count = 1;
  rows[0].sum = 3.5;
  rows[0].last = 3.5;
  write_snapshot_file(path, rows, SnapshotMeta{});

  SnapshotMeta meta;
  const auto back = read_snapshot_file(path, &meta);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].name, "x");
  EXPECT_DOUBLE_EQ(back[0].last, 3.5);
  EXPECT_EQ(meta.ranks, 1);

  // Flip one payload byte: the CRC framing must reject the file.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(10);
  char c = 0;
  f.seekg(10);
  f.get(c);
  f.seekp(10);
  f.put(static_cast<char>(c ^ 0x20));
  f.close();
  EXPECT_THROW(read_snapshot_file(path), Error);
}

TEST_F(ExportTest, GlobalSnapshotSinkFlushes) {
  const std::string path = temp_path("global_snapshot.json");
  auto& reg = MetricsRegistry::global();
  reg.set_enabled(true);
  reg.counter("flush.me").add(5);

  flush_global_snapshot();  // unarmed: must be a no-op
  EXPECT_TRUE(global_snapshot_path().empty());

  set_global_snapshot_path(path);
  SnapshotMeta meta;
  meta.rank = -1;
  meta.ranks = 3;
  meta.complete = true;
  set_global_snapshot_meta(meta);
  flush_global_snapshot();

  SnapshotMeta read_meta;
  const auto rows = read_snapshot_file(path, &read_meta);
  EXPECT_EQ(read_meta.ranks, 3);
  const MetricRow* row = find_row(rows, "flush.me");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 5u);
}

TEST_F(ExportTest, SessionResetsStaleMetrics) {
  auto& reg = MetricsRegistry::global();
  // A previous run in this process left gauges behind (metrics were on).
  reg.set_enabled(true);
  reg.gauge("scratch.arena.bytes").set(4096);
  reg.counter("stale.counter").add(9);
  reg.set_enabled(false);

  const std::string path = temp_path("session_metrics.csv");
  {
    Session session("", path);
    // The session-boundary reset zeroed everything stale...
    EXPECT_DOUBLE_EQ(reg.gauge("scratch.arena.bytes").value(), 0.0);
    EXPECT_EQ(reg.counter("stale.counter").value(), 0u);
    // ...and new samples record normally.
    reg.counter("fresh.counter").add(1);
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string csv((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(csv.find("fresh.counter,counter,1"), std::string::npos);
}

TEST_F(ExportTest, EmptyHistogramExportsAllZeroRow) {
  auto& reg = MetricsRegistry::global();
  reg.set_enabled(true);
  (void)reg.histogram("never.recorded");
  const MetricRow* row = find_row(reg.snapshot(), "never.recorded");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 0u);
  EXPECT_DOUBLE_EQ(row->min, 0.0);  // not the +inf sentinel
  EXPECT_DOUBLE_EQ(row->max, 0.0);  // not the -inf sentinel
  const std::string csv = reg.csv();
  EXPECT_NE(csv.find("never.recorded,histogram,0,0,0,0,0,0,0,0"),
            std::string::npos);
  EXPECT_EQ(csv.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace gaia::obs
