#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace gaia::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::global().set_enabled(false);
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    MetricsRegistry::global().set_enabled(false);
    MetricsRegistry::global().reset();
  }
};

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, KeepsLastValue) {
  Gauge g;
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, EmptySummaryIsAllZero) {
  Histogram h;
  const auto s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
}

TEST(HistogramTest, ExactQuantilesOnKnownData) {
  Histogram h;
  // 1..100 in a scrambled order; nearest-rank percentiles are exact.
  for (int i = 0; i < 100; ++i) h.record(((i * 37) % 100) + 1);
  const auto s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  // Nearest-rank on index q*(n-1)+0.5 over sorted 1..100.
  EXPECT_DOUBLE_EQ(s.p50, 51.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
}

TEST(HistogramTest, SingleSampleIsItsOwnQuantiles) {
  Histogram h;
  h.record(7.5);
  const auto s = h.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.last, 7.5);
  EXPECT_DOUBLE_EQ(s.p50, 7.5);
  EXPECT_DOUBLE_EQ(s.p99, 7.5);
}

// Registry-shape tests use a local registry: the global one accumulates
// entry identities for the process lifetime (by design), so row counts
// are only predictable on a fresh instance.
TEST(MetricsRegistryTest, FindOrCreateReturnsStableIdentity) {
  MetricsRegistry reg;
  Counter& a = reg.counter("transfer.h2d_bytes");
  Counter& b = reg.counter("transfer.h2d_bytes");
  EXPECT_EQ(&a, &b);
  a.add(100);
  reg.reset();  // zeroes, does not invalidate
  EXPECT_EQ(b.value(), 0u);
  b.add(1);
  EXPECT_EQ(reg.counter("transfer.h2d_bytes").value(), 1u);
}

TEST(MetricsRegistryTest, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), Error);
  EXPECT_THROW(reg.histogram("x"), Error);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("zeta");
  reg.gauge("alpha");
  reg.histogram("mid");
  const auto rows = reg.snapshot();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "alpha");
  EXPECT_EQ(rows[0].type, "gauge");
  EXPECT_EQ(rows[1].name, "mid");
  EXPECT_EQ(rows[1].type, "histogram");
  EXPECT_EQ(rows[2].name, "zeta");
  EXPECT_EQ(rows[2].type, "counter");
}

TEST(MetricsRegistryTest, CsvHasHeaderAndOneRowPerMetric) {
  MetricsRegistry reg;
  reg.counter("transfer.h2d_bytes").add(4096);
  reg.gauge("lsqr.rnorm").set(1.5);
  auto& h = reg.histogram("lsqr.iteration_seconds");
  h.record(0.25);
  h.record(0.75);
  const std::string csv = reg.csv();
  std::istringstream is(csv);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "name,type,count,sum,min,max,last,p50,p95,p99");
  EXPECT_EQ(lines[1].rfind("lsqr.iteration_seconds,histogram,2,1,", 0), 0u)
      << lines[1];
  EXPECT_EQ(lines[2].rfind("lsqr.rnorm,gauge,", 0), 0u);
  EXPECT_EQ(lines[3].rfind("transfer.h2d_bytes,counter,", 0), 0u);
  EXPECT_NE(lines[3].find("4096"), std::string::npos);
}

TEST_F(MetricsTest, DisabledHooksTouchNothing) {
  auto& reg = MetricsRegistry::global();
  ASSERT_FALSE(reg.enabled());
  const std::uint64_t h2d = reg.counter("transfer.h2d_bytes").value();
  const std::uint64_t d2h = reg.counter("transfer.d2h_bytes").value();
  const std::uint64_t cas = reg.counter("atomic.cas_ops").value();
  count_h2d(1024);
  count_d2h(512);
  count_cas(10, 3);
  EXPECT_EQ(reg.counter("transfer.h2d_bytes").value(), h2d);
  EXPECT_EQ(reg.counter("transfer.d2h_bytes").value(), d2h);
  EXPECT_EQ(reg.counter("atomic.cas_ops").value(), cas);
}

TEST_F(MetricsTest, TransferAndCasHooksAccumulate) {
  auto& reg = MetricsRegistry::global();
  reg.set_enabled(true);
  count_h2d(1024);
  count_h2d(1024);
  count_d2h(512);
  count_cas(10, 3);
  EXPECT_EQ(reg.counter("transfer.h2d_bytes").value(), 2048u);
  EXPECT_EQ(reg.counter("transfer.h2d_count").value(), 2u);
  EXPECT_EQ(reg.counter("transfer.d2h_bytes").value(), 512u);
  EXPECT_EQ(reg.counter("transfer.d2h_count").value(), 1u);
  EXPECT_EQ(reg.counter("atomic.cas_ops").value(), 10u);
  EXPECT_EQ(reg.counter("atomic.cas_retries").value(), 3u);
}

TEST_F(MetricsTest, ConcurrentCountingIsExact) {
  auto& reg = MetricsRegistry::global();
  reg.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Lookup + add through the public path every iteration: exercises
      // the registry mutex and the relaxed counter together (TSan job).
      for (int i = 0; i < kIters; ++i) reg.counter("stress.ops").add(2);
      reg.histogram("stress.lat").record(0.001);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("stress.ops").value(),
            static_cast<std::uint64_t>(kThreads) * kIters * 2);
  EXPECT_EQ(reg.histogram("stress.lat").summary().count,
            static_cast<std::uint64_t>(kThreads));
}

TEST_F(MetricsTest, HistogramCapKeepsAggregatesExact) {
  Histogram h;
  const auto n = static_cast<std::uint64_t>(Histogram::kMaxSamples) + 10;
  for (std::uint64_t i = 0; i < n; ++i) h.record(1.0);
  const auto s = h.summary();
  EXPECT_EQ(s.count, n);  // count/sum keep going past the sample cap
  EXPECT_DOUBLE_EQ(s.sum, static_cast<double>(n));
  EXPECT_DOUBLE_EQ(s.p50, 1.0);
}

}  // namespace
}  // namespace gaia::obs
