#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "json_checker.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace gaia::obs {
namespace {

namespace fs = std::filesystem;

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::global().reset();
    FlightRecorder::global().set_capacity(FlightRecorder::kDefaultCapacity);
    clear_postmortem_context();
    set_postmortem_dir("");
    MetricsRegistry::global().set_enabled(false);
    MetricsRegistry::global().reset();
    dir_ = fs::temp_directory_path() /
           ("gaia_flight_test_" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()));
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    FlightRecorder::global().reset();
    FlightRecorder::global().set_capacity(FlightRecorder::kDefaultCapacity);
    clear_postmortem_context();
    set_postmortem_dir("");
    MetricsRegistry::global().set_enabled(false);
    MetricsRegistry::global().reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

TEST_F(FlightRecorderTest, RecordsOrderedEvents) {
  FlightRecorder rec;
  rec.record("state", "solver.generated", "4 MB");
  rec.record("fault", "rank.death", "rank 1", 28, 1);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].category, "state");
  EXPECT_EQ(events[0].name, "solver.generated");
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].iteration, 28);
  EXPECT_EQ(events[1].rank, 1);
  EXPECT_GE(events[1].t_s, events[0].t_s);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST_F(FlightRecorderTest, RingDropsOldestPastCapacity) {
  FlightRecorder rec;
  rec.set_capacity(4);
  for (int i = 0; i < 10; ++i)
    rec.record("state", "event." + std::to_string(i));
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "event.6");
  EXPECT_EQ(events.back().name, "event.9");
  EXPECT_EQ(rec.dropped(), 6u);
  // Sequence numbers keep counting across drops.
  EXPECT_EQ(events.back().seq, 9u);
}

TEST_F(FlightRecorderTest, ZeroCapacityIsIgnoredAndResetClears) {
  FlightRecorder rec;
  rec.set_capacity(0);
  EXPECT_EQ(rec.capacity(), FlightRecorder::kDefaultCapacity);
  rec.record("state", "x");
  rec.reset();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dropped(), 0u);
  rec.record("state", "y");
  EXPECT_EQ(rec.events().front().seq, 0u);
}

TEST_F(FlightRecorderTest, FlightEventShimHitsTheGlobalRing) {
  flight_event("resilience", "checkpoint.written", "ckpt/000010");
  const auto events = FlightRecorder::global().events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].category, "resilience");
  EXPECT_EQ(events[0].name, "checkpoint.written");
}

TEST_F(FlightRecorderTest, BundleJsonRoundTrips) {
  auto& reg = MetricsRegistry::global();
  reg.set_enabled(true);
  reg.counter("lsqr.iterations").add(60);
  flight_event("state", "solver.generated", "detail with \"quotes\"\nline2");
  flight_event("fault", "solver.sdc_unrepaired", "bit 62 flip", 23, -1);
  set_postmortem_context("backend", "openmp");
  set_postmortem_context("seed", "1746");

  PostmortemInfo info;
  info.reason = "sdc-unrepaired";
  info.detail = "invariant trip at iteration 23";
  info.rank = -1;
  info.ranks = 3;
  const PostmortemBundle bundle = collect_postmortem(info);
  EXPECT_EQ(bundle.version, kPostmortemVersion);
  EXPECT_EQ(bundle.events.size(), 2u);
  EXPECT_EQ(bundle.context.at("backend"), "openmp");
  EXPECT_FALSE(bundle.metrics.empty());

  const std::string json = postmortem_json(bundle);
  EXPECT_TRUE(gaia::testing::JsonChecker(json).valid()) << json;
  const PostmortemBundle back = parse_postmortem_json(json);
  EXPECT_EQ(back.info.reason, "sdc-unrepaired");
  EXPECT_EQ(back.info.detail, info.detail);
  EXPECT_EQ(back.info.rank, -1);
  EXPECT_EQ(back.info.ranks, 3);
  ASSERT_EQ(back.events.size(), 2u);
  EXPECT_EQ(back.events[0].detail, "detail with \"quotes\"\nline2");
  EXPECT_EQ(back.events[1].iteration, 23);
  EXPECT_EQ(back.context.at("seed"), "1746");
  ASSERT_EQ(back.metrics.size(), bundle.metrics.size());
  EXPECT_EQ(back.metrics[0].name, bundle.metrics[0].name);
}

TEST_F(FlightRecorderTest, ContextEraseAndClear) {
  set_postmortem_context("a", "1");
  set_postmortem_context("b", "2");
  set_postmortem_context("a", "");  // erase
  auto ctx = postmortem_context();
  EXPECT_EQ(ctx.count("a"), 0u);
  EXPECT_EQ(ctx.at("b"), "2");
  clear_postmortem_context();
  EXPECT_TRUE(postmortem_context().empty());
}

TEST_F(FlightRecorderTest, BundleCarriesTraceTail) {
  auto& rec = TraceRecorder::global();
  rec.set_enabled(true);
  for (int i = 0; i < 100; ++i)
    rec.complete("kernel.launch." + std::to_string(i), "kernel",
                 static_cast<double>(i), 1.0, TraceRecorder::kMainTrack);
  const PostmortemBundle bundle =
      collect_postmortem({"exception", "boom", -1, 1}, 8);
  rec.set_enabled(false);
  rec.reset();
  ASSERT_EQ(bundle.trace_tail.size(), 8u);
  EXPECT_EQ(bundle.trace_tail.back().name, "kernel.launch.99");
}

TEST_F(FlightRecorderTest, FileRoundTripAndTornRejection) {
  fs::create_directories(dir_);
  const std::string path = (dir_ / "postmortem.json").string();
  flight_event("fault", "rank.death", "injected", 28, 1);
  PostmortemBundle bundle = collect_postmortem({"rank-death", "x", 1, 4});
  write_postmortem_file(path, bundle);
  const PostmortemBundle back = read_postmortem_file(path);
  EXPECT_EQ(back.info.reason, "rank-death");
  EXPECT_EQ(back.info.rank, 1);
  EXPECT_EQ(back.info.ranks, 4);

  // Truncation (a torn write) must be rejected loudly, not half-parsed.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  EXPECT_THROW((void)read_postmortem_file(path), Error);
  EXPECT_THROW((void)read_postmortem_file((dir_ / "missing.json").string()),
               Error);
}

TEST_F(FlightRecorderTest, ParseRejectsVersionMismatchAndGarbage) {
  EXPECT_THROW((void)parse_postmortem_json("not json"), Error);
  EXPECT_THROW((void)parse_postmortem_json("{}"), Error);
  const std::string json =
      postmortem_json(collect_postmortem({"exception", "x", -1, 1}));
  std::string bumped = json;
  const auto pos = bumped.find("\"version\":1");
  ASSERT_NE(pos, std::string::npos);
  bumped.replace(pos, 11, "\"version\":9");
  EXPECT_THROW((void)parse_postmortem_json(bumped), Error);
}

TEST_F(FlightRecorderTest, FlushIsNoopWhileDisarmed) {
  EXPECT_EQ(postmortem_dir(), "");
  EXPECT_EQ(flush_postmortem({"exception", "x", -1, 1}), "");
  EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(FlightRecorderTest, FlushCreatesDirAndNamesRankBundles) {
  set_postmortem_dir(dir_.string());
  const std::string cluster = flush_postmortem({"sdc-unrepaired", "x", -1, 2});
  EXPECT_EQ(fs::path(cluster).filename(), "postmortem.json");
  const std::string rank1 = flush_postmortem({"rank-death", "y", 1, 2});
  EXPECT_EQ(fs::path(rank1).filename(), "postmortem.rank1.json");
  const std::string named =
      flush_postmortem({"repaired", "z", -1, 1}, "postmortem.sdc-late.json");
  EXPECT_EQ(fs::path(named).filename(), "postmortem.sdc-late.json");
  for (const auto& p : {cluster, rank1, named}) {
    const PostmortemBundle back = read_postmortem_file(p);
    EXPECT_FALSE(back.info.reason.empty()) << p;
  }
}

}  // namespace
}  // namespace gaia::obs
