/// \file test_obs_integration.cpp
/// \brief End-to-end observability check: a traced LSQR campaign emits a
/// valid timeline with all eight kernel spans, and the metrics CSV
/// transfer totals equal the device-side byte accounting exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/lsqr.hpp"
#include "matrix/generator.hpp"
#include "obs/json_checker.hpp"
#include "obs/metrics.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gaia::obs {
namespace {

/// Reads `name,...,sum,...` rows back out of the metrics CSV.
std::map<std::string, double> csv_sums(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::map<std::string, double> sums;
  std::string line;
  std::getline(f, line);  // header
  EXPECT_EQ(line, "name,type,count,sum,min,max,last,p50,p95,p99");
  while (std::getline(f, line)) {
    std::istringstream row(line);
    std::string name, type, count, sum;
    std::getline(row, name, ',');
    std::getline(row, type, ',');
    std::getline(row, count, ',');
    std::getline(row, sum, ',');
    sums[name] = std::stod(sum);
  }
  return sums;
}

struct ScopedFile {
  explicit ScopedFile(std::string p) : path(std::move(p)) {}
  ~ScopedFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(ObsIntegration, TracedLsqrRunEmitsFullTimelineAndExactByteTotals) {
  const ScopedFile trace_file("obs_integration_trace.json");
  const ScopedFile metrics_file("obs_integration_metrics.csv");

  const auto gen = matrix::generate_system(gaia::testing::small_config(640));
  core::LsqrResult result;
  std::vector<TraceEvent> events;
  {
    Session session(trace_file.path, metrics_file.path);
    core::LsqrOptions opts;
    opts.aprod.backend = backends::BackendKind::kGpuSim;
    opts.aprod.use_streams = true;  // aprod2 spans must land on stream tracks
    opts.max_iterations = 100;
    opts.atol = 0;  // run all 100 iterations (the acceptance scenario)
    opts.btol = 0;
    opts.compute_std_errors = false;
    result = core::lsqr_solve(gen.A, opts);
    events = TraceRecorder::global().events();
  }
  ASSERT_EQ(result.iterations, 100);

  // 1. The emitted file is valid trace-event JSON.
  std::ifstream f(trace_file.path);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  gaia::testing::JsonChecker checker(buf.str());
  EXPECT_TRUE(checker.valid());
  EXPECT_NE(buf.str().find("\"traceEvents\""), std::string::npos);

  // 2. All eight aprod sub-kernels appear as spans, each annotated with
  // its launch config and stream lane.
  const std::set<std::string> expected = {
      "aprod1_astro", "aprod1_att", "aprod1_instr", "aprod1_glob",
      "aprod2_astro", "aprod2_att", "aprod2_instr", "aprod2_glob"};
  std::set<std::string> seen;
  std::set<std::int32_t> aprod2_tracks;
  for (const auto& e : events) {
    if (e.phase != 'X' || e.cat != "kernel") continue;
    if (expected.count(e.name) == 0) continue;
    seen.insert(e.name);
    std::set<std::string> keys;
    for (const auto& a : e.args) keys.insert(a.key());
    EXPECT_TRUE(keys.count("backend")) << e.name;
    EXPECT_TRUE(keys.count("blocks")) << e.name;
    EXPECT_TRUE(keys.count("threads")) << e.name;
    EXPECT_TRUE(keys.count("stream")) << e.name;
    EXPECT_TRUE(keys.count("bytes")) << e.name;
    if (e.name.rfind("aprod2", 0) == 0) aprod2_tracks.insert(e.tid);
  }
  EXPECT_EQ(seen, expected);
  // The four aprod2 scatters ran in four distinct streams, i.e. four
  // distinct non-main timeline tracks.
  EXPECT_EQ(aprod2_tracks.size(), 4u);
  EXPECT_EQ(aprod2_tracks.count(TraceRecorder::kMainTrack), 0u);

  // 3. Per-iteration telemetry: one lsqr.iteration span per iteration.
  int iteration_spans = 0;
  for (const auto& e : events)
    if (e.phase == 'X' && e.name == "lsqr.iteration") ++iteration_spans;
  EXPECT_EQ(iteration_spans, 100);

  // 4. The metrics CSV transfer totals equal the device accounting that
  // the solver itself reports — not approximately, bit for bit.
  const auto sums = csv_sums(metrics_file.path);
  ASSERT_TRUE(sums.count("transfer.h2d_bytes"));
  EXPECT_EQ(static_cast<std::uint64_t>(sums.at("transfer.h2d_bytes")),
            result.h2d_bytes);
  ASSERT_TRUE(sums.count("lsqr.iterations"));
  EXPECT_EQ(static_cast<std::uint64_t>(sums.at("lsqr.iterations")), 100u);
  ASSERT_TRUE(sums.count("stream.tasks"));
  // 4 aprod2 kernels per iteration, each enqueued as one stream task.
  EXPECT_GE(static_cast<std::uint64_t>(sums.at("stream.tasks")), 400u);
}

TEST(ObsIntegration, CasRetriesAreCountedUnderCasLoopMode) {
  const ScopedFile metrics_file("obs_cas_metrics.csv");
  const auto gen = matrix::generate_system(gaia::testing::medium_config(641));
  {
    Session session("", metrics_file.path);
    core::LsqrOptions opts;
    // gpusim honors the atomic mode; OpenMPExec lowers to `omp atomic`
    // regardless (that *is* its native RMW), so it never counts CAS ops.
    opts.aprod.backend = backends::BackendKind::kGpuSim;
    opts.aprod.atomic_mode = backends::AtomicMode::kCasLoop;
    opts.aprod.use_streams = false;
    opts.max_iterations = 3;
    opts.compute_std_errors = false;
    core::lsqr_solve(gen.A, opts);
  }
  const auto sums = csv_sums(metrics_file.path);
  ASSERT_TRUE(sums.count("atomic.cas_ops"));
  EXPECT_GT(sums.at("atomic.cas_ops"), 0.0);
  // Retries exist as a metric (their count is contention-dependent).
  EXPECT_TRUE(sums.count("atomic.cas_retries"));
}

TEST(ObsIntegration, UntracedRunLeavesGlobalsUntouched) {
  TraceRecorder::global().set_enabled(false);
  TraceRecorder::global().reset();
  MetricsRegistry::global().set_enabled(false);
  MetricsRegistry::global().reset();

  const auto gen = matrix::generate_system(gaia::testing::small_config(642));
  core::LsqrOptions opts;
  opts.aprod.backend = backends::BackendKind::kGpuSim;
  opts.max_iterations = 10;
  opts.compute_std_errors = false;
  core::lsqr_solve(gen.A, opts);

  EXPECT_EQ(TraceRecorder::global().event_count(), 0u);
  EXPECT_EQ(
      MetricsRegistry::global().counter("transfer.h2d_bytes").value(), 0u);
}

TEST(ObsIntegration, SessionResetsBothRegistryAndTraceTimeBase) {
  // Leftovers from a previous "run" in the same process.
  TraceRecorder::global().set_enabled(true);
  TraceRecorder::global().complete("stale", "kernel", 0, 1, 0);
  TraceRecorder::global().set_enabled(false);
  MetricsRegistry::global().set_enabled(true);
  MetricsRegistry::global().counter("stale.counter").add(7);
  MetricsRegistry::global().set_enabled(false);
  ASSERT_GT(TraceRecorder::global().event_count(), 0u);

  {
    // A metrics-only session (no trace path) must still clear the trace
    // recorder: a later traced session would otherwise inherit events
    // and a clock epoch from before this one.
    const ScopedFile metrics_file("obs_session_reset_metrics.csv");
    Session session("", metrics_file.path);
    EXPECT_EQ(TraceRecorder::global().event_count(), 0u);
    EXPECT_LT(TraceRecorder::global().now_us(), 1e6);
    EXPECT_EQ(MetricsRegistry::global().counter("stale.counter").value(),
              0u);
  }
}

TEST(ObsIntegration, SessionHonorsTraceCapacityEnv) {
  const ScopedFile trace_file("obs_session_capacity_trace.json");
  setenv(kTraceCapacityEnv, "8", 1);
  {
    Session session = Session::from_env(trace_file.path);
    EXPECT_EQ(TraceRecorder::global().capacity(), 8u);
    for (int i = 0; i < 32; ++i)
      TraceRecorder::global().complete("s", "kernel", i, 1, 0);
    EXPECT_EQ(TraceRecorder::global().event_count(), 8u);
    EXPECT_GT(TraceRecorder::global().dropped_events(), 0u);
  }
  unsetenv(kTraceCapacityEnv);
  // Malformed values are rejected loudly, not ignored.
  setenv(kTraceCapacityEnv, "zero", 1);
  EXPECT_THROW(Session("", ""), Error);
  unsetenv(kTraceCapacityEnv);
  TraceRecorder::global().set_capacity(TraceRecorder::kDefaultCapacity);
  TraceRecorder::global().set_enabled(false);
  TraceRecorder::global().reset();
}

}  // namespace
}  // namespace gaia::obs
