#include "obs/critpath.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/error.hpp"

namespace gaia::obs {
namespace {

ParsedEvent span(const char* name, const char* cat, std::int64_t pid,
                 std::int64_t tid, double ts, double dur,
                 std::int64_t itn = -1) {
  ParsedEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = 'X';
  e.pid = pid;
  e.tid = tid;
  e.ts_us = ts;
  e.dur_us = dur;
  if (itn >= 0) {
    util::JsonValue v;
    v.kind = util::JsonValue::Kind::kNumber;
    v.number = static_cast<double>(itn);
    e.args.kind = util::JsonValue::Kind::kObject;
    e.args.object.emplace_back("itn", v);
  }
  return e;
}

/// Two ranks, one iteration. Rank 0: iteration [0,100], compute [0,60],
/// allreduce [60,90] (wait [60,80], exchange [80,90]). Rank 1: iteration
/// [20,110], compute [20,100], allreduce [70,100] *fully overlapped* by
/// its compute.
TraceDoc two_rank_doc() {
  TraceDoc doc;
  doc.merged = true;
  doc.n_ranks = 2;
  doc.source_ranks = {0, 1};
  doc.events.push_back(span("lsqr.iteration", "lsqr", 0, 0, 0, 100, 1));
  doc.events.push_back(span("aprod1", "kernel", 0, 0, 0, 60));
  doc.events.push_back(span("allreduce", "comm", 0, 1000, 60, 30));
  doc.events.push_back(span("allreduce.wait", "comm", 0, 1000, 60, 20));
  doc.events.push_back(span("allreduce.exchange", "comm", 0, 1000, 80, 10));
  doc.events.push_back(span("lsqr.iteration", "lsqr", 1, 0, 20, 90, 1));
  doc.events.push_back(span("aprod1", "kernel", 1, 0, 20, 80));
  doc.events.push_back(span("allreduce", "comm", 1, 1001, 70, 30));
  doc.events.push_back(span("allreduce.wait", "comm", 1, 1001, 70, 5));
  doc.events.push_back(span("allreduce.exchange", "comm", 1, 1001, 75, 25));
  return doc;
}

TEST(Critpath, ComputesIterationWindowAndExposure) {
  const CritpathReport report = analyze_critpath(two_rank_doc());
  ASSERT_EQ(report.iterations.size(), 1u);
  const IterationStats& s = report.iterations[0];
  EXPECT_EQ(s.itn, 1);
  EXPECT_EQ(s.ranks_seen, 2);
  // Window: min start 0, max end 110.
  EXPECT_DOUBLE_EQ(s.critical_path_us, 110.0);
  EXPECT_DOUBLE_EQ(s.skew_us, 20.0);
  // Rank 0's allreduce [60,90] overlaps no compute (compute ends at 60):
  // 30 us exposed. Rank 1's allreduce [70,100] sits inside compute
  // [20,100]: 0 exposed. Max over ranks = 30.
  EXPECT_DOUBLE_EQ(s.comm_us_max, 30.0);
  EXPECT_DOUBLE_EQ(s.exposed_us_max, 30.0);
  EXPECT_NEAR(s.exposure_fraction, 30.0 / 110.0, 1e-12);
  // Headroom: rank 0 has 30 exposed and 60 compute -> min = 30.
  EXPECT_DOUBLE_EQ(s.overlap_headroom_us, 30.0);
  // Compute: rank0 60, rank1 80 -> imbalance 1 - 140/(2*80) = 0.125.
  EXPECT_NEAR(s.imbalance, 0.125, 1e-12);
  EXPECT_TRUE(report.complete);
  EXPECT_GT(s.wait_p95_us, s.wait_p50_us - 1e-9);
}

TEST(Critpath, AggregatesAcrossIterations) {
  TraceDoc doc = two_rank_doc();
  // Second iteration, only on rank 0 -> report is partial.
  doc.events.push_back(span("lsqr.iteration", "lsqr", 0, 0, 200, 50, 2));
  doc.events.push_back(span("allreduce", "comm", 0, 1000, 210, 10));
  const CritpathReport report = analyze_critpath(doc);
  ASSERT_EQ(report.iterations.size(), 2u);
  EXPECT_FALSE(report.complete);
  EXPECT_DOUBLE_EQ(report.total_critical_path_us, 110.0 + 50.0);
  EXPECT_DOUBLE_EQ(report.total_exposed_us, 30.0 + 10.0);
  EXPECT_DOUBLE_EQ(report.max_skew_us, 20.0);
}

TEST(Critpath, GatesTripOnThresholds) {
  const CritpathReport report = analyze_critpath(two_rank_doc());
  CritpathOptions options;
  EXPECT_TRUE(check_gates(report, options).empty());

  options.max_exposure_fraction = 0.1;  // actual ~0.27
  EXPECT_EQ(check_gates(report, options).size(), 1u);

  options.max_exposure_fraction = 0.9;
  options.max_skew_us = 5.0;  // actual 20
  EXPECT_EQ(check_gates(report, options).size(), 1u);
}

TEST(Critpath, PartialTraceFailsGateUnlessAllowed) {
  TraceDoc doc = two_rank_doc();
  doc.events.push_back(span("lsqr.iteration", "lsqr", 0, 0, 200, 50, 2));
  const CritpathReport report = analyze_critpath(doc);
  ASSERT_FALSE(report.complete);
  CritpathOptions options;
  EXPECT_FALSE(check_gates(report, options).empty());
  options.allow_partial = true;
  EXPECT_TRUE(check_gates(report, options).empty());
}

TEST(Critpath, ThrowsWithoutIterationSpans) {
  TraceDoc doc;
  doc.events.push_back(span("aprod1", "kernel", 0, 0, 0, 10));
  EXPECT_THROW(analyze_critpath(doc), Error);
}

TEST(Critpath, RendersTableAndJson) {
  const CritpathReport report = analyze_critpath(two_rank_doc());
  const std::string table = to_string(report);
  EXPECT_NE(table.find("critpath_us"), std::string::npos);
  EXPECT_NE(table.find("total critical path"), std::string::npos);
  const std::string json = to_json(report);
  const util::JsonValue v = util::parse_json(json);
  EXPECT_DOUBLE_EQ(v.number_or("exposure_fraction",
                               -1),
                   report.exposure_fraction);
  ASSERT_TRUE(v.find("iterations")->is_array());
  EXPECT_EQ(v.find("iterations")->array.size(), 1u);
}

}  // namespace
}  // namespace gaia::obs
