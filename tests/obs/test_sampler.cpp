#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "json_checker.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace gaia::obs {
namespace {

namespace fs = std::filesystem;

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProgressBoard::global().set_enabled(false);
    ProgressBoard::global().reset();
    MetricsRegistry::global().set_enabled(false);
    MetricsRegistry::global().reset();
    dir_ = fs::temp_directory_path() /
           ("gaia_sampler_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    ProgressBoard::global().set_enabled(false);
    ProgressBoard::global().reset();
    MetricsRegistry::global().set_enabled(false);
    MetricsRegistry::global().reset();
    set_global_snapshot_path("");
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path dir_;
};

TEST_F(SamplerTest, BoardDisabledUpdatesAreNoops) {
  auto& board = ProgressBoard::global();
  board.begin(-1, 100, "solve");
  board.update(-1, 5, 0.5, 0.01);
  EXPECT_TRUE(board.snapshot().empty());
}

TEST_F(SamplerTest, BoardTracksRowsPerRank) {
  auto& board = ProgressBoard::global();
  board.set_enabled(true);
  board.begin(0, 100, "solve");
  board.begin(1, 100, "solve");
  board.update(0, 7, 0.25, 1e-3);
  board.update(1, 9, 0.5, 2e-3);
  board.set_phase(1, "refine");
  auto rows = board.snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].rank, 0);
  EXPECT_EQ(rows[0].iteration, 7);
  EXPECT_EQ(rows[0].phase, "solve");
  EXPECT_DOUBLE_EQ(rows[0].rnorm, 0.25);
  EXPECT_EQ(rows[1].rank, 1);
  EXPECT_EQ(rows[1].phase, "refine");
  EXPECT_GE(rows[1].elapsed_s, 0.0);
  board.end(0);
  EXPECT_EQ(board.snapshot().size(), 1u);
}

TEST_F(SamplerTest, UpdateBeforeBeginIsIgnored) {
  auto& board = ProgressBoard::global();
  board.set_enabled(true);
  board.update(3, 10, 1.0, 1.0);
  EXPECT_TRUE(board.snapshot().empty());
}

TEST_F(SamplerTest, ThreadRankScopeRestoresPrevious) {
  EXPECT_EQ(ProgressBoard::thread_rank(), -1);
  {
    ThreadRankScope outer(2);
    EXPECT_EQ(ProgressBoard::thread_rank(), 2);
    {
      ThreadRankScope inner(5);
      EXPECT_EQ(ProgressBoard::thread_rank(), 5);
    }
    EXPECT_EQ(ProgressBoard::thread_rank(), 2);
  }
  EXPECT_EQ(ProgressBoard::thread_rank(), -1);
}

TEST_F(SamplerTest, StreamsJsonlSamplesAndRegistersActive) {
  auto& reg = MetricsRegistry::global();
  reg.set_enabled(true);
  reg.counter("lsqr.iterations").add(42);

  const std::string path = (dir_ / "telemetry.jsonl").string();
  SamplerConfig cfg;
  cfg.path = path;
  cfg.period_ms = 5;
  {
    TelemetrySampler sampler(cfg);
    EXPECT_EQ(TelemetrySampler::active(), &sampler);
    EXPECT_TRUE(ProgressBoard::global().enabled());
    auto& board = ProgressBoard::global();
    board.begin(-1, 100, "solve");
    for (int i = 1; i <= 20; ++i) {
      board.update(-1, i, 1.0 / i, 1e-4);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    sampler.stop();
    EXPECT_GE(sampler.samples(), 2u);
    // Ring tail returns the newest lines, oldest first.
    const auto tail = sampler.ring_tail(4);
    ASSERT_FALSE(tail.empty());
    EXPECT_LE(tail.size(), 4u);
    for (const auto& line : tail)
      EXPECT_TRUE(gaia::testing::JsonChecker(line).valid()) << line;
  }
  EXPECT_EQ(TelemetrySampler::active(), nullptr);

  // Each streamed line is standalone JSON with the documented fields.
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  bool saw_progress_row = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const util::JsonValue v = util::parse_json(line);
    ASSERT_NE(v.find("t_s"), nullptr) << line;
    ASSERT_NE(v.find("sample"), nullptr) << line;
    const util::JsonValue* progress = v.find("progress");
    ASSERT_NE(progress, nullptr) << line;
    ASSERT_TRUE(progress->is_array()) << line;
    for (const auto& row : progress->array) {
      saw_progress_row = true;
      EXPECT_EQ(row.number_or("max_iterations", 0), 100.0);
      ASSERT_NE(row.find("phase"), nullptr);
      ASSERT_NE(row.find("eta_s"), nullptr);
    }
    const util::JsonValue* metrics = v.find("metrics");
    ASSERT_NE(metrics, nullptr) << line;
    EXPECT_GE(metrics->number_or("lsqr.iterations", -1), 42.0);
  }
  EXPECT_GE(lines, 2u);
  EXPECT_TRUE(saw_progress_row);
}

TEST_F(SamplerTest, RingIsBoundedAndCountsDrops) {
  SamplerConfig cfg;  // no path: ring-only mode
  cfg.period_ms = 1;
  cfg.ring_capacity = 3;
  TelemetrySampler sampler(cfg);
  while (sampler.samples() < 10)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  sampler.stop();
  EXPECT_LE(sampler.ring_tail(100).size(), 3u);
  EXPECT_GT(sampler.dropped(), 0u);
}

TEST_F(SamplerTest, PeriodicSnapshotSealRidesTheSamplerCadence) {
  auto& reg = MetricsRegistry::global();
  reg.set_enabled(true);
  reg.gauge("solver.phase").set(1);
  const std::string snap = (dir_ / "snapshot.json").string();
  set_global_snapshot_path(snap);

  SamplerConfig cfg;
  cfg.period_ms = 2;
  cfg.snapshot_every_s = 0.01;
  TelemetrySampler sampler(cfg);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  sampler.stop();
  set_global_snapshot_path("");
  ASSERT_TRUE(fs::exists(snap));
  const std::vector<MetricRow> rows = read_snapshot_file(snap);
  EXPECT_FALSE(rows.empty());
}

TEST_F(SamplerTest, SecondSamplerDoesNotStealActive) {
  SamplerConfig cfg;
  cfg.period_ms = 50;
  TelemetrySampler first(cfg);
  EXPECT_EQ(TelemetrySampler::active(), &first);
  {
    TelemetrySampler second(cfg);
    EXPECT_EQ(TelemetrySampler::active(), &first);
  }
  EXPECT_EQ(TelemetrySampler::active(), &first);
}

}  // namespace
}  // namespace gaia::obs
