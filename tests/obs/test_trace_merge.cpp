#include "obs/trace_merge.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace gaia::obs {
namespace {

/// A recorder stamped as one rank of a world, with a couple of spans.
std::string rank_trace(int rank, int n_ranks, double offset_us) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.set_rank(rank, n_ranks);
  rec.set_epoch_offset_us(offset_us);
  rec.complete("lsqr.iteration", "lsqr", 10, 100, 0);
  rec.complete("allreduce", "comm", 20, 30, 1000 + rank);
  rec.complete("allreduce.wait", "comm", 20, 10, 1000 + rank);
  rec.complete("allreduce.exchange", "comm", 30, 20, 1000 + rank);
  return rec.json();
}

TEST(TraceMerge, RoundTripsRecorderOutput) {
  const TraceDoc doc = parse_trace_json(rank_trace(1, 3, 42.0));
  EXPECT_EQ(doc.rank, 1);
  EXPECT_EQ(doc.n_ranks, 3);
  EXPECT_DOUBLE_EQ(doc.epoch_offset_us, 42.0);
  EXPECT_FALSE(doc.merged);
  int spans = 0;
  for (const auto& e : doc.events)
    if (e.phase == 'X') ++spans;
  EXPECT_EQ(spans, 4);
  validate_trace(doc);  // must not throw

  // Re-render and re-parse: identical structure.
  const TraceDoc again = parse_trace_json(trace_json(doc));
  EXPECT_EQ(again.events.size(), doc.events.size());
  EXPECT_EQ(again.rank, doc.rank);
}

TEST(TraceMerge, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_trace_json("{\"broken"), Error);
  EXPECT_THROW(parse_trace_json("[]"), Error);              // root not object
  EXPECT_THROW(parse_trace_json("{}"), Error);              // no traceEvents
  EXPECT_THROW(parse_trace_json(R"({"traceEvents": 3})"), Error);
  // Event missing required fields.
  EXPECT_THROW(parse_trace_json(R"({"traceEvents":[{"name":"x"}]})"), Error);
  // Unmatched begin/end phases are rejected outright.
  EXPECT_THROW(
      parse_trace_json(
          R"({"traceEvents":[{"name":"x","cat":"k","ph":"B","ts":0,"pid":1,"tid":0}]})"),
      Error);
}

TEST(TraceMerge, ValidationCatchesTornSpans) {
  // Negative duration.
  TraceDoc doc = parse_trace_json(
      R"({"traceEvents":[{"name":"x","cat":"k","ph":"X","ts":5,"dur":-2,"pid":1,"tid":0}]})");
  EXPECT_THROW(validate_trace(doc), Error);

  // Partially overlapping spans on one track (not nested, not disjoint).
  doc = parse_trace_json(
      R"({"traceEvents":[
        {"name":"a","cat":"k","ph":"X","ts":0,"dur":10,"pid":1,"tid":0},
        {"name":"b","cat":"k","ph":"X","ts":5,"dur":10,"pid":1,"tid":0}]})");
  EXPECT_THROW(validate_trace(doc), Error);

  // Same shape on *different* tracks is fine.
  doc = parse_trace_json(
      R"({"traceEvents":[
        {"name":"a","cat":"k","ph":"X","ts":0,"dur":10,"pid":1,"tid":0},
        {"name":"b","cat":"k","ph":"X","ts":5,"dur":10,"pid":2,"tid":0}]})");
  validate_trace(doc);

  // Instants moving backwards on one track.
  doc = parse_trace_json(
      R"({"traceEvents":[
        {"name":"i1","cat":"m","ph":"i","ts":10,"pid":1,"tid":0},
        {"name":"i2","cat":"m","ph":"i","ts":3,"pid":1,"tid":0}]})");
  EXPECT_THROW(validate_trace(doc), Error);
}

TEST(TraceMerge, MergeAppliesClockAlignment) {
  std::vector<TraceDoc> docs;
  docs.push_back(parse_trace_json(rank_trace(0, 2, 100.0)));
  docs.push_back(parse_trace_json(rank_trace(1, 2, 250.0)));
  const TraceDoc merged = merge_traces(docs);
  EXPECT_TRUE(merged.merged);
  EXPECT_EQ(merged.n_ranks, 2);
  EXPECT_EQ(merged.source_ranks, (std::vector<int>{0, 1}));
  validate_trace(merged);

  // Every rank-0 event shifted by 100, every rank-1 event by 250; the
  // iteration spans started at local ts 10 on both ranks.
  double start0 = -1, start1 = -1;
  for (const auto& e : merged.events) {
    if (e.name != "lsqr.iteration") continue;
    if (e.pid == 0) start0 = e.ts_us;
    if (e.pid == 1) start1 = e.ts_us;
  }
  EXPECT_DOUBLE_EQ(start0, 110.0);
  EXPECT_DOUBLE_EQ(start1, 260.0);

  // The merged file parses back with its header intact.
  const TraceDoc rt = parse_trace_json(trace_json(merged));
  EXPECT_TRUE(rt.merged);
  EXPECT_EQ(rt.source_ranks, merged.source_ranks);
  EXPECT_EQ(rt.events.size(), merged.events.size());
}

TEST(TraceMerge, MergeRejectsBadInputs) {
  EXPECT_THROW(merge_traces({}), Error);
  std::vector<TraceDoc> dup;
  dup.push_back(parse_trace_json(rank_trace(0, 2, 0)));
  dup.push_back(parse_trace_json(rank_trace(0, 2, 0)));
  EXPECT_THROW(merge_traces(dup), Error);  // duplicate rank

  std::vector<TraceDoc> mismatch;
  mismatch.push_back(parse_trace_json(rank_trace(0, 2, 0)));
  mismatch.push_back(parse_trace_json(rank_trace(1, 3, 0)));
  EXPECT_THROW(merge_traces(mismatch), Error);  // world-size mismatch

  // A plain (rank-less) trace cannot be merged.
  TraceRecorder plain;
  plain.set_enabled(true);
  plain.complete("k", "kernel", 0, 1, 0);
  std::vector<TraceDoc> rankless;
  rankless.push_back(parse_trace_json(plain.json()));
  EXPECT_THROW(merge_traces(rankless), Error);
}

TEST(TraceMerge, SingleRankMergeShiftsOntoWorldClock) {
  // A one-rank world is a legal merge: the result is flagged merged and
  // the rank's clock offset is applied, exactly as with many ranks.
  const TraceDoc doc = parse_trace_json(rank_trace(0, 1, 75.0));
  const TraceDoc merged = merge_traces({doc});
  EXPECT_TRUE(merged.merged);
  EXPECT_EQ(merged.n_ranks, 1);
  EXPECT_EQ(merged.source_ranks, (std::vector<int>{0}));
  validate_trace(merged);
  double start = -1;
  for (const auto& e : merged.events)
    if (e.name == "lsqr.iteration") start = e.ts_us;
  EXPECT_DOUBLE_EQ(start, 85.0);  // local ts 10 + offset 75
}

TEST(TraceMerge, EmptyRankFileMergesCleanly) {
  // A rank that recorded nothing (e.g. died before its first span was
  // flushed) still contributes its header; the merge must not choke on
  // the empty event list.
  TraceRecorder empty;
  empty.set_enabled(true);
  empty.set_rank(1, 2);
  empty.set_epoch_offset_us(50.0);
  std::vector<TraceDoc> docs;
  docs.push_back(parse_trace_json(rank_trace(0, 2, 0.0)));
  docs.push_back(parse_trace_json(empty.json()));
  // No spans — at most recorder metadata survives in the rank file.
  for (const auto& e : docs[1].events) ASSERT_NE(e.phase, 'X');
  const TraceDoc merged = merge_traces(docs);
  EXPECT_EQ(merged.source_ranks, (std::vector<int>{0, 1}));
  validate_trace(merged);
  // Every span in the merge is rank 0's; the empty rank added none.
  int spans = 0;
  for (const auto& e : merged.events)
    if (e.phase == 'X') {
      EXPECT_EQ(e.pid, 0);
      ++spans;
    }
  EXPECT_GT(spans, 0);
}

TEST(TraceMerge, DroppedEventsSumAcrossMergedRanks) {
  // Capacity-dropped tails on several ranks: the merged header carries
  // the total, so a postmortem reader knows the timeline is partial.
  std::vector<TraceDoc> docs;
  for (int r = 0; r < 2; ++r) {
    TraceRecorder rec;
    rec.set_capacity(2);
    rec.set_enabled(true);
    rec.set_rank(r, 2);
    for (int i = 0; i < 5 + r; ++i) rec.complete("s", "kernel", i, 1, 0);
    docs.push_back(parse_trace_json(rec.json()));
    EXPECT_GT(docs.back().dropped_events, 0u);
  }
  const std::uint64_t total =
      docs[0].dropped_events + docs[1].dropped_events;
  const TraceDoc merged = merge_traces(docs);
  EXPECT_EQ(merged.dropped_events, total);
  // ...and the count survives a render/parse round trip of the merged
  // document, which is what gaia-critpath and the postmortem CLI read.
  const TraceDoc rt = parse_trace_json(trace_json(merged));
  EXPECT_EQ(rt.dropped_events, total);
}

TEST(TraceMerge, DroppedEventCountsAccumulate) {
  TraceRecorder rec;
  rec.set_capacity(2);
  rec.set_enabled(true);
  rec.set_rank(0, 1);
  for (int i = 0; i < 6; ++i) rec.complete("s", "kernel", i, 1, 0);
  const TraceDoc doc = parse_trace_json(rec.json());
  EXPECT_GT(doc.dropped_events, 0u);
  const TraceDoc merged = merge_traces({doc});
  EXPECT_EQ(merged.dropped_events, doc.dropped_events);
}

}  // namespace
}  // namespace gaia::obs
