#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_checker.hpp"

namespace gaia::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::global().set_enabled(false);
    TraceRecorder::global().reset();
  }
  void TearDown() override {
    TraceRecorder::global().set_enabled(false);
    TraceRecorder::global().reset();
  }
};

TEST_F(TraceTest, DisabledRecorderAddsZeroEvents) {
  auto& rec = TraceRecorder::global();
  ASSERT_FALSE(rec.enabled());
  rec.complete("k", "kernel", 0, 1, 0);
  rec.instant("i", "mark", 0);
  rec.counter("c", 0, 1.0);
  {
    ScopedTrace span("scoped", "kernel");
    EXPECT_FALSE(span.armed());
    span.add_arg({"ignored", 1.0});
  }
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST_F(TraceTest, ScopedSpanRecordsCompleteEvent) {
  auto& rec = TraceRecorder::global();
  rec.set_enabled(true);
  {
    ScopedTrace span("aprod1_astro", "kernel", 3);
    ASSERT_TRUE(span.armed());
    span.add_arg({"blocks", std::int64_t{64}});
    span.add_arg({"backend", "gpusim"});
  }
  const auto events = rec.events();
  // set_enabled stamps the main-track name metadata; find the 'X' span.
  const auto it = std::find_if(events.begin(), events.end(),
                               [](const auto& e) { return e.phase == 'X'; });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(it->name, "aprod1_astro");
  EXPECT_EQ(it->cat, "kernel");
  EXPECT_EQ(it->tid, 3);
  EXPECT_GE(it->dur_us, 0.0);
  ASSERT_EQ(it->args.size(), 2u);
  EXPECT_EQ(it->args[0].key(), "blocks");
  EXPECT_EQ(it->args[0].json_value(), "64");
  EXPECT_EQ(it->args[1].json_value(), "\"gpusim\"");
}

TEST_F(TraceTest, JsonDocumentIsWellFormed) {
  auto& rec = TraceRecorder::global();
  rec.set_enabled(true);
  rec.name_track(1, "stream-1");
  rec.complete("k\"quoted\\name", "kernel", 1.5, 2.5, 1,
               {{"note", "line\nbreak\tand \"quotes\""},
                {"bytes", std::uint64_t{1234567890123ull}},
                {"ratio", 0.25}});
  rec.instant("marker", "mark", 0);
  rec.counter("lsqr.rnorm", 10.0, 42.5);
  const std::string doc = rec.json();
  gaia::testing::JsonChecker checker(doc);
  EXPECT_TRUE(checker.valid()) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\""), std::string::npos);
}

TEST_F(TraceTest, NonFiniteArgValuesStayValidJson) {
  auto& rec = TraceRecorder::global();
  rec.set_enabled(true);
  rec.complete("k", "kernel", 0, 1, 0,
               {{"nan", std::nan("")}, {"inf", 1e308 * 10}});
  gaia::testing::JsonChecker checker(rec.json());
  EXPECT_TRUE(checker.valid()) << rec.json();
}

TEST_F(TraceTest, SpansNestWithinTheirTrack) {
  auto& rec = TraceRecorder::global();
  rec.set_enabled(true);
  {
    ScopedTrace outer("iteration", "lsqr");
    {
      ScopedTrace inner1("aprod1", "aprod");
    }
    {
      ScopedTrace inner2("aprod2", "aprod");
    }
  }
  const auto events = rec.events();
  std::vector<TraceEvent> spans;
  for (const auto& e : events)
    if (e.phase == 'X') spans.push_back(e);
  ASSERT_EQ(spans.size(), 3u);
  // Spans close innermost-first, so the outer one is recorded last.
  const auto& outer = spans.back();
  EXPECT_EQ(outer.name, "iteration");
  for (const auto& s : spans) {
    if (s.name == "iteration") continue;
    EXPECT_EQ(s.tid, outer.tid);
    // Same-track spans must nest: child interval inside the parent's.
    EXPECT_GE(s.ts_us, outer.ts_us);
    EXPECT_LE(s.ts_us + s.dur_us, outer.ts_us + outer.dur_us + 1e-6);
  }
  // The two siblings must not overlap.
  const auto& a = spans[0];
  const auto& b = spans[1];
  EXPECT_TRUE(a.ts_us + a.dur_us <= b.ts_us + 1e-6 ||
              b.ts_us + b.dur_us <= a.ts_us + 1e-6);
}

TEST_F(TraceTest, TrackNamesAreDeduplicated) {
  auto& rec = TraceRecorder::global();
  rec.set_enabled(true);
  rec.name_track(7, "stream-7");
  rec.name_track(7, "stream-7");
  rec.name_track(7, "stream-7");
  int metadata = 0;
  for (const auto& e : rec.events())
    if (e.phase == 'M' && e.tid == 7) ++metadata;
  EXPECT_EQ(metadata, 1);
}

TEST_F(TraceTest, ResetDropsEventsAndRestartsClock) {
  auto& rec = TraceRecorder::global();
  rec.set_enabled(true);
  rec.complete("k", "kernel", 0, 1, 0);
  EXPECT_GT(rec.event_count(), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  rec.reset();
  EXPECT_EQ(rec.event_count(), 0u);
  EXPECT_TRUE(rec.enabled());  // reset keeps the enabled state
  EXPECT_LT(rec.now_us(), 4000.0);  // clock restarted at reset
  // A re-named track is emitted again after reset.
  rec.name_track(7, "stream-7");
  int metadata = 0;
  for (const auto& e : rec.events())
    if (e.phase == 'M' && e.tid == 7) ++metadata;
  EXPECT_EQ(metadata, 1);
}

TEST_F(TraceTest, ConcurrentSpansAreAllRecorded) {
  auto& rec = TraceRecorder::global();
  rec.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kSpans = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpans; ++i) {
        ScopedTrace span("work", "stress", t + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  int spans = 0;
  for (const auto& e : rec.events())
    if (e.phase == 'X') ++spans;
  EXPECT_EQ(spans, kThreads * kSpans);
  gaia::testing::JsonChecker checker(rec.json());
  EXPECT_TRUE(checker.valid());
}

TEST_F(TraceTest, CapacityCapDropsOldestAndCounts) {
  TraceRecorder rec;
  rec.set_capacity(4);
  rec.set_enabled(true);  // emits the main-track metadata record
  for (int i = 0; i < 10; ++i)
    rec.complete("span" + std::to_string(i), "kernel", i, 1, 0);
  EXPECT_EQ(rec.event_count(), 4u);
  // 1 metadata + 10 spans pushed, 4 kept.
  EXPECT_EQ(rec.dropped_events(), 7u);
  const auto events = rec.events();
  // The survivors are the newest spans, in order.
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().name, "span6");
  EXPECT_EQ(events.back().name, "span9");
}

TEST_F(TraceTest, DroppedTrackNameCanBeReannounced) {
  TraceRecorder rec;
  rec.set_capacity(2);
  rec.set_enabled(true);
  rec.name_track(7, "stream-7");
  rec.complete("a", "kernel", 0, 1, 7);
  rec.complete("b", "kernel", 1, 1, 7);  // evicts the main metadata
  rec.complete("c", "kernel", 2, 1, 7);  // evicts the thread_name for 7
  rec.name_track(7, "stream-7");         // must re-announce, not dedup away
  int metadata = 0;
  for (const auto& e : rec.events())
    if (e.phase == 'M' && e.tid == 7) ++metadata;
  EXPECT_EQ(metadata, 1);
}

TEST_F(TraceTest, ShrinkingCapacityEvictsExistingEvents) {
  TraceRecorder rec;
  rec.set_enabled(true);
  for (int i = 0; i < 8; ++i) rec.complete("s", "kernel", i, 1, 0);
  const std::size_t before = rec.event_count();
  rec.set_capacity(3);
  EXPECT_EQ(rec.event_count(), 3u);
  EXPECT_EQ(rec.dropped_events(), before - 3);
  rec.set_capacity(0);  // invalid, ignored
  EXPECT_EQ(rec.capacity(), 3u);
}

TEST_F(TraceTest, RankIdentityBecomesPidAndHeader) {
  TraceRecorder rec;
  rec.set_enabled(true);
  rec.set_rank(2, 4);
  rec.set_epoch_offset_us(123.5);
  rec.complete("k", "kernel", 0, 1, 0);
  EXPECT_EQ(rec.rank(), 2);
  EXPECT_EQ(rec.n_ranks(), 4);
  const std::string doc = rec.json();
  gaia::testing::JsonChecker checker(doc);
  EXPECT_TRUE(checker.valid()) << doc;
  EXPECT_NE(doc.find("\"rank\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"ranks\":4"), std::string::npos);
  EXPECT_NE(doc.find("\"epoch_offset_us\":123.5"), std::string::npos);
  EXPECT_NE(doc.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(doc.find("process_name"), std::string::npos);
}

TEST_F(TraceTest, ThreadRecorderOverridesCurrent) {
  TraceRecorder rank_rec;
  rank_rec.set_enabled(true);
  EXPECT_EQ(&TraceRecorder::current(), &TraceRecorder::global());
  {
    ThreadRecorderScope scope(&rank_rec);
    EXPECT_EQ(&TraceRecorder::current(), &rank_rec);
    ScopedTrace span("k", "kernel");
    EXPECT_TRUE(span.armed());  // rank recorder enabled, global disabled
  }
  EXPECT_EQ(&TraceRecorder::current(), &TraceRecorder::global());
  int spans = 0;
  for (const auto& e : rank_rec.events())
    if (e.phase == 'X') ++spans;
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(TraceRecorder::global().event_count(), 0u);
}

TEST_F(TraceTest, ThreadRecorderScopesNestAndRestore) {
  TraceRecorder a, b;
  ThreadRecorderScope outer(&a);
  {
    ThreadRecorderScope inner(&b);
    EXPECT_EQ(&TraceRecorder::current(), &b);
  }
  EXPECT_EQ(&TraceRecorder::current(), &a);
  ThreadRecorderScope null_scope(nullptr);
  EXPECT_EQ(&TraceRecorder::current(), &TraceRecorder::global());
}

TEST_F(TraceTest, ArmedStateIsLatchedAtConstruction) {
  auto& rec = TraceRecorder::global();
  rec.set_enabled(true);
  const std::size_t before = rec.event_count();
  {
    ScopedTrace span("latched", "kernel");
    ASSERT_TRUE(span.armed());
    // Disabling mid-span must not lose the already-armed span (the
    // Session destructor disables while solver spans may be open).
    rec.set_enabled(false);
  }
  rec.set_enabled(true);
  EXPECT_EQ(rec.event_count(), before);  // complete() is a no-op while off
  rec.set_enabled(false);
}

}  // namespace
}  // namespace gaia::obs
