/// \file json_checker.hpp
/// \brief Minimal recursive-descent JSON validator for trace tests.
///
/// The tests assert that the emitted Chrome trace-event documents are
/// well-formed JSON without pulling in a JSON library dependency. This
/// validates the full grammar (objects, arrays, strings with escapes,
/// numbers, literals) and rejects trailing garbage.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <utility>

namespace gaia::testing {

class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : text_(std::move(text)) {}

  /// True iff the whole input is exactly one valid JSON value.
  [[nodiscard]] bool valid() {
    pos_ = 0;
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  [[nodiscard]] bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool string() {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_])))
              return false;
            ++pos_;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        return false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        return false;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])))
        ++pos_;
    }
    return true;
  }

  bool value() {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }

  bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    do {
      skip_ws();
      if (!string()) return false;
      if (!eat(':')) return false;
      if (!value()) return false;
    } while (eat(','));
    return eat('}');
  }

  bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }

  std::string text_;  // owned: callers pass temporaries
  std::size_t pos_ = 0;
};

}  // namespace gaia::testing
