/// \file test_recovery.cpp
/// \brief End-to-end resilience properties: solves under injected faults
/// must converge to the fault-free answer, and the full acceptance
/// scenario (rank death + corrupt newest checkpoint) must auto-resume
/// from the newest *valid* checkpoint on the shrunk rank set.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/lsqr.hpp"
#include "dist/dist_lsqr.hpp"
#include "matrix/generator.hpp"
#include "obs/metrics.hpp"
#include "resilience/fault_injector.hpp"
#include "test_helpers.hpp"

namespace gaia::resilience {
namespace {

namespace fs = std::filesystem;
using backends::BackendKind;

core::LsqrOptions fast_retry_options(BackendKind backend) {
  core::LsqrOptions opts;
  opts.aprod.backend = backend;
  opts.aprod.use_streams = false;
  opts.max_iterations = 60;
  opts.aprod.retry.base_delay = std::chrono::microseconds(1);
  opts.aprod.retry.max_delay = std::chrono::microseconds(4);
  return opts;
}

class RecoveryTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void TearDown() override {
    FaultInjector::global().disarm();
    obs::MetricsRegistry::global().set_enabled(false);
    obs::MetricsRegistry::global().reset();
  }
};

/// Satellite 3: on every backend, a run peppered with transient kernel
/// and transfer faults retries its way through and lands on the same
/// solution as the fault-free run.
TEST_P(RecoveryTest, TransientFaultsRetryToTheFaultFreeSolution) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(160));
  const auto opts = fast_retry_options(GetParam());
  const auto healthy = core::lsqr_solve(gen.A, opts);

  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  reg.set_enabled(true);
  FaultInjector::global().configure(
      "kernel:p=0.05;h2d:p=0.01;d2h:p=0.01,mode=corrupt", 9);
  const auto faulted = core::lsqr_solve(gen.A, opts);

  EXPECT_GT(FaultInjector::global().injected_total(), 0u);
  EXPECT_GT(reg.counter("resilience.retries").value(), 0u);
  ASSERT_EQ(faulted.iterations, healthy.iterations);
  // An injected fault fires *before* the kernel body runs, so a retried
  // launch repeats identical work: the serial trajectory is bitwise
  // unchanged, parallel ones agree to accumulation-order roundoff.
  if (GetParam() == BackendKind::kSerial && faulted.failovers == 0) {
    for (std::size_t i = 0; i < healthy.x.size(); ++i)
      ASSERT_EQ(faulted.x[i], healthy.x[i]) << i;
  } else {
    EXPECT_LT(gaia::testing::rel_l2_error(faulted.x, healthy.x), 1e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, RecoveryTest,
                         ::testing::Values(BackendKind::kSerial,
                                           BackendKind::kOpenMP,
                                           BackendKind::kPstl,
                                           BackendKind::kGpuSim),
                         [](const auto& info) {
                           return backends::to_string(info.param);
                         });

/// The ISSUE acceptance scenario: rank 1 dies entering iteration 12 and
/// the newest checkpoint (sealed at iteration 10) was truncated on
/// disk. The solve must restart on the two survivors, resume from the
/// older iteration-5 checkpoint, and still converge to the fault-free
/// solution — with the whole recovery visible in the metrics.
TEST(RecoveryAcceptance, RankDeathWithCorruptNewestCheckpointAutoResumes) {
  const fs::path dir =
      fs::path(::testing::TempDir()) / "gaia_recovery_acceptance";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const auto gen = matrix::generate_system(gaia::testing::small_config(161));
  dist::DistLsqrOptions opts;
  opts.n_ranks = 3;
  opts.lsqr = fast_retry_options(BackendKind::kSerial);
  opts.lsqr.max_iterations = 300;
  opts.lsqr.atol = 1e-12;
  opts.lsqr.btol = 1e-12;
  opts.checkpoint.directory = dir.string();
  opts.checkpoint.every = 5;
  opts.checkpoint.keep_last = 3;
  opts.max_restarts = 3;

  const auto healthy = dist::dist_lsqr_solve(gen.A, [&] {
    auto o = opts;
    o.checkpoint = {};  // reference run: no checkpoints, no faults
    return o;
  }());

  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  reg.set_enabled(true);
  FaultInjector::global().configure("rank:iter=12,rank=1;ckpt:truncate,nth=2",
                                    1746);
  ::testing::internal::CaptureStderr();
  const auto recovered = dist::dist_lsqr_solve(gen.A, opts);
  const std::string warnings = ::testing::internal::GetCapturedStderr();
  FaultInjector::global().disarm();
  reg.set_enabled(false);

  EXPECT_EQ(recovered.restarts, 1);
  EXPECT_EQ(recovered.final_ranks, 2);
  // Checkpoints were sealed at iterations 5 and 10 before the death at
  // 12, the second one truncated by the injector — so the resume must
  // skip it and fall back to iteration 5.
  EXPECT_EQ(recovered.resumed_from_iteration, 5);
  EXPECT_GE(recovered.checkpoints_written, 2u);
  EXPECT_NE(warnings.find("died at iteration"), std::string::npos) << warnings;

  // Recovery milestones surfaced through the metrics registry.
  EXPECT_EQ(reg.counter("resilience.rank_death.recovered").value(), 1u);
  EXPECT_GE(reg.counter("resilience.checkpoint.resumed").value(), 1u);
  EXPECT_GE(reg.counter("resilience.checkpoint.skipped").value(), 1u);

  // Both runs converge; the recovered one took a detour but lands on
  // the same least-squares solution.
  EXPECT_LT(gaia::testing::rel_l2_error(recovered.x, healthy.x), 1e-6);

  reg.reset();
  fs::remove_all(dir);
}

/// With checkpointing disabled a rank death still recovers — the solve
/// restarts from iteration 0 on the survivors.
TEST(RecoveryAcceptance, RankDeathWithoutCheckpointsRestartsFromScratch) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(162));
  dist::DistLsqrOptions opts;
  opts.n_ranks = 2;
  opts.lsqr = fast_retry_options(BackendKind::kSerial);
  opts.lsqr.max_iterations = 20;

  FaultInjector::global().configure("rank:iter=3,rank=0", 1);
  ::testing::internal::CaptureStderr();
  const auto recovered = dist::dist_lsqr_solve(gen.A, opts);
  (void)::testing::internal::GetCapturedStderr();
  FaultInjector::global().disarm();

  EXPECT_EQ(recovered.restarts, 1);
  EXPECT_EQ(recovered.final_ranks, 1);
  EXPECT_EQ(recovered.resumed_from_iteration, -1);  // no checkpoint to resume
  EXPECT_EQ(recovered.iterations, 20);
}

/// Exhausting the restart budget propagates the death as a clean error.
TEST(RecoveryAcceptance, RestartBudgetExhaustionPropagatesRankDeath) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(163));
  dist::DistLsqrOptions opts;
  opts.n_ranks = 2;
  opts.lsqr = fast_retry_options(BackendKind::kSerial);
  opts.lsqr.max_iterations = 20;
  opts.max_restarts = 0;

  FaultInjector::global().configure("rank:iter=3,rank=0", 1);
  EXPECT_THROW((void)dist::dist_lsqr_solve(gen.A, opts), RankDeath);
  FaultInjector::global().disarm();
}

}  // namespace
}  // namespace gaia::resilience
