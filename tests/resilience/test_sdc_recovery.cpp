/// End-to-end silent-data-corruption defense: a seeded bit flip in a
/// kernel output must be detected (same iteration, via the ABFT
/// checksums), contained (detect mode stops with a diagnosis; the
/// non-finite floor stops even with health off), and repaired (repair
/// mode rolls back and lands on the fault-free solution bit-for-bit) —
/// single-process and across simulated MPI ranks.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/lsqr.hpp"
#include "dist/dist_lsqr.hpp"
#include "matrix/generator.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/health_monitor.hpp"
#include "test_helpers.hpp"

namespace gaia::core {
namespace {

class SdcRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    system_ = matrix::generate_system(gaia::testing::small_config(17));
  }
  void TearDown() override {
    resilience::FaultInjector::global().disarm();
  }

  LsqrOptions options(resilience::HealthMode mode,
                      std::int64_t every = 5) const {
    LsqrOptions opts;
    // Serial backend: the aprod2 atomic scatter is order-deterministic,
    // so "repaired == fault-free" can be asserted bit-for-bit.
    opts.aprod.backend = backends::BackendKind::kSerial;
    opts.max_iterations = 24;
    opts.health.mode = mode;
    opts.health.check_every = every;
    return opts;
  }

  matrix::GeneratedSystem system_;
};

TEST_F(SdcRecoveryTest, DetectModeStopsAtTheFlipIteration) {
  // The flip lands pre-normalization and would be absorbed
  // self-consistently by the Golub-Kahan recurrence; the ABFT kernel
  // checksum is the detector with same-iteration latency.
  resilience::FaultInjector::global().configure(
      "sdc:kernel=aprod2,iter=8,bit=51", 1746);
  const LsqrResult result =
      lsqr_solve(system_.A, options(resilience::HealthMode::kDetect));
  EXPECT_EQ(result.istop, LsqrStop::kSdcDetected);
  EXPECT_EQ(result.iterations, 8);
  EXPECT_EQ(result.health.detections, 1u);
  EXPECT_EQ(result.health.first_detection_iteration, 8);
  EXPECT_NE(result.health.last_diagnosis.find("kernel-checksum"),
            std::string::npos);
}

TEST_F(SdcRecoveryTest, RepairModeMatchesTheFaultFreeRunBitForBit) {
  const LsqrResult clean =
      lsqr_solve(system_.A, options(resilience::HealthMode::kOff));

  resilience::FaultInjector::global().configure(
      "sdc:kernel=aprod2,iter=8,bit=51", 1746);
  const LsqrResult repaired =
      lsqr_solve(system_.A, options(resilience::HealthMode::kRepair));
  EXPECT_EQ(repaired.istop, clean.istop);
  EXPECT_EQ(repaired.iterations, clean.iterations);
  EXPECT_EQ(repaired.health.detections, 1u);
  EXPECT_EQ(repaired.health.repairs, 1u);
  EXPECT_FALSE(repaired.health.unrepaired);
  // The injected clause fires once; the rollback/replay runs clean, so
  // the repaired trajectory IS the fault-free trajectory.
  ASSERT_EQ(repaired.x.size(), clean.x.size());
  for (std::size_t i = 0; i < clean.x.size(); ++i)
    ASSERT_EQ(repaired.x[i], clean.x[i]) << "element " << i;
  EXPECT_EQ(repaired.rnorm, clean.rnorm);
}

TEST_F(SdcRecoveryTest, Aprod1FlipIsCaughtByItsOwnChecksum) {
  resilience::FaultInjector::global().configure(
      "sdc:kernel=aprod1,iter=6,bit=55", 1746);
  const LsqrResult result =
      lsqr_solve(system_.A, options(resilience::HealthMode::kDetect));
  EXPECT_EQ(result.istop, LsqrStop::kSdcDetected);
  EXPECT_EQ(result.health.first_detection_iteration, 6);
  EXPECT_NE(result.health.last_diagnosis.find("aprod1"), std::string::npos);
}

TEST_F(SdcRecoveryTest, NonFiniteFloorStopsEvenWithHealthOff) {
  // Flipping the exponent's top bit drives the value to ~1e300 and the
  // norms overflow to inf within an iteration: even with monitoring off
  // the engine must refuse to iterate on a poisoned state.
  resilience::FaultInjector::global().configure(
      "sdc:kernel=aprod2,iter=8,bit=62", 1746);
  const LsqrResult result =
      lsqr_solve(system_.A, options(resilience::HealthMode::kOff));
  EXPECT_EQ(result.istop, LsqrStop::kNonFinite);
  EXPECT_LT(result.iterations, 24);
  EXPECT_EQ(result.health.detections, 0u);  // floor, not the monitor
}

TEST_F(SdcRecoveryTest, ExhaustedRepairBudgetThrowsTheDiagnosis) {
  // count=10 > max_repairs: the flip re-fires on every replay, so the
  // rollback loop cannot win and must escalate to a diagnosed abort.
  resilience::FaultInjector::global().configure(
      "sdc:kernel=aprod2,iter=8,bit=51,count=10", 1746);
  LsqrOptions opts = options(resilience::HealthMode::kRepair);
  opts.health.max_repairs = 2;
  try {
    (void)lsqr_solve(system_.A, opts);
    FAIL() << "expected SdcError";
  } catch (const resilience::SdcError& e) {
    EXPECT_EQ(e.verdict().invariant,
              resilience::HealthInvariant::kKernelChecksum);
    EXPECT_EQ(e.verdict().iteration, 8);
    EXPECT_NE(std::string(e.what()).find("unrepaired"), std::string::npos);
  }
}

TEST_F(SdcRecoveryTest, CleanRunNeverFalsePositives) {
  LsqrOptions opts = options(resilience::HealthMode::kDetect, 4);
  const LsqrResult result = lsqr_solve(system_.A, opts);
  EXPECT_EQ(result.health.detections, 0u);
  EXPECT_GT(result.health.checks, 0u);
  EXPECT_EQ(result.iterations, 24);
}

class DistSdcRecoveryTest : public SdcRecoveryTest {};

TEST_F(DistSdcRecoveryTest, MinorityRankFlipIsDetectedCollectively) {
  dist::DistLsqrOptions dopts;
  dopts.n_ranks = 3;
  dopts.lsqr = options(resilience::HealthMode::kDetect);
  // The flip lands on rank 1 *after* the allreduce, so only rank 1's
  // replica of v diverges — exactly the corruption a single-process
  // monitor can never see. Rank 1's local ABFT checksum catches it and
  // the verdict allreduce makes the stop collective.
  resilience::FaultInjector::global().configure(
      "sdc:kernel=aprod2,iter=8,bit=51,rank=1", 1746);
  const dist::DistLsqrResult result = dist_lsqr_solve(system_.A, dopts);
  EXPECT_EQ(result.istop, LsqrStop::kSdcDetected);
  EXPECT_EQ(result.health.detections, 1u);
  EXPECT_EQ(result.health.first_detection_iteration, 8);
  EXPECT_NE(result.health.last_diagnosis.find("rank 1"), std::string::npos);
}

TEST_F(DistSdcRecoveryTest, RepairReplaysToTheFaultFreeSolution) {
  dist::DistLsqrOptions clean_opts;
  clean_opts.n_ranks = 3;
  clean_opts.lsqr = options(resilience::HealthMode::kOff);
  const dist::DistLsqrResult clean = dist_lsqr_solve(system_.A, clean_opts);

  dist::DistLsqrOptions dopts;
  dopts.n_ranks = 3;
  dopts.lsqr = options(resilience::HealthMode::kRepair);
  resilience::FaultInjector::global().configure(
      "sdc:kernel=aprod2,iter=8,bit=51,rank=1", 1746);
  const dist::DistLsqrResult repaired = dist_lsqr_solve(system_.A, dopts);
  EXPECT_EQ(repaired.istop, clean.istop);
  EXPECT_EQ(repaired.iterations, clean.iterations);
  EXPECT_EQ(repaired.health.repairs, 1u);
  ASSERT_EQ(repaired.x.size(), clean.x.size());
  for (std::size_t i = 0; i < clean.x.size(); ++i)
    ASSERT_EQ(repaired.x[i], clean.x[i]) << "element " << i;
}

TEST_F(DistSdcRecoveryTest, ExhaustedDistRepairBudgetThrows) {
  dist::DistLsqrOptions dopts;
  dopts.n_ranks = 2;
  dopts.lsqr = options(resilience::HealthMode::kRepair);
  dopts.lsqr.health.max_repairs = 1;
  resilience::FaultInjector::global().configure(
      "sdc:kernel=aprod2,iter=8,bit=51,count=10", 1746);
  EXPECT_THROW((void)dist_lsqr_solve(system_.A, dopts),
               resilience::SdcError);
}

}  // namespace
}  // namespace gaia::core
