/// Unit coverage of the SDC health monitor: the layered invariants
/// (scalars, windowed divergence, segment checksums, ABFT agreement,
/// kernel-output checksums), the cross-rank state hash, and the
/// report/bookkeeping surface the solvers key their containment off.
#include "resilience/health_monitor.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <vector>

#include "util/types.hpp"

namespace gaia::resilience {
namespace {

HealthConfig detect_config() {
  HealthConfig cfg;
  cfg.mode = HealthMode::kDetect;
  return cfg;
}

TEST(HealthConfig, ModeParsingRoundTrips) {
  EXPECT_EQ(parse_health_mode("off"), HealthMode::kOff);
  EXPECT_EQ(parse_health_mode("detect"), HealthMode::kDetect);
  EXPECT_EQ(parse_health_mode("repair"), HealthMode::kRepair);
  EXPECT_EQ(parse_health_mode("bogus"), std::nullopt);
  for (HealthMode m :
       {HealthMode::kOff, HealthMode::kDetect, HealthMode::kRepair})
    EXPECT_EQ(parse_health_mode(to_string(m)), m);
}

TEST(HealthConfig, OverridesWinAndBadModesThrow) {
  const HealthConfig cfg = health_config_from_env("repair", 7);
  EXPECT_EQ(cfg.mode, HealthMode::kRepair);
  EXPECT_EQ(cfg.check_every, 7);
  EXPECT_TRUE(cfg.enabled());
  EXPECT_THROW((void)health_config_from_env("sometimes"), Error);

  const HealthConfig off = health_config_from_env();
  EXPECT_FALSE(off.due(25));  // off mode: never due
  EXPECT_TRUE(HealthConfig{HealthMode::kDetect}.due(25));
  EXPECT_FALSE(HealthConfig{HealthMode::kDetect}.due(24));
  EXPECT_FALSE(HealthConfig{HealthMode::kDetect}.due(0));
}

TEST(HealthMonitorScalars, NonFiniteAndNegativeNormsTrip) {
  HealthMonitor monitor(detect_config());
  EXPECT_TRUE(monitor.check_scalars(3, 1.0, 2.0, 3.0, 4.0, 5.0).healthy());

  const real nan = std::numeric_limits<real>::quiet_NaN();
  const auto bad = monitor.check_scalars(3, 1.0, 2.0, nan, 4.0, 5.0);
  EXPECT_EQ(bad.invariant, HealthInvariant::kScalarFinite);
  EXPECT_EQ(bad.iteration, 3);
  EXPECT_NE(bad.detail.find("rnorm"), std::string::npos);
  EXPECT_NE(bad.describe().find("scalar-finite"), std::string::npos);

  const auto inf = monitor.check_scalars(
      3, 1.0, std::numeric_limits<real>::infinity(), 3.0, 4.0, 5.0);
  EXPECT_EQ(inf.invariant, HealthInvariant::kScalarFinite);

  // alpha/beta are norms: negative means corrupted scalar state.
  const auto sign = monitor.check_scalars(3, -1.0, 2.0, 3.0, 4.0, 5.0);
  EXPECT_EQ(sign.invariant, HealthInvariant::kScalarSign);
}

TEST(HealthMonitorWindow, DivergenceTripsAndResetClears) {
  HealthConfig cfg = detect_config();
  cfg.window = 4;
  cfg.rnorm_growth_ratio = 10.0;
  HealthMonitor monitor(cfg);
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(monitor.check_rnorm_window(i, 1.0 - 0.1 * i).healthy());
  // 100 > 10 x the window minimum (0.7): divergence.
  const auto v = monitor.check_rnorm_window(4, 100.0);
  EXPECT_EQ(v.invariant, HealthInvariant::kRnormDivergence);
  // After a rollback the window is dropped: the replayed trajectory
  // must not re-trip against pre-corruption observations.
  monitor.reset_window();
  EXPECT_TRUE(monitor.check_rnorm_window(1, 100.0).healthy());
}

TEST(HealthMonitorVector, LocalizesNonFiniteToASegment) {
  HealthConfig cfg = detect_config();
  cfg.segments = 4;
  HealthMonitor monitor(cfg);
  std::vector<real> v(64, 0.125);
  EXPECT_TRUE(monitor.check_vector(1, "u", v).healthy());

  v[40] = std::numeric_limits<real>::quiet_NaN();  // segment 2 of 4
  const auto verdict = monitor.check_vector(1, "u", v);
  EXPECT_EQ(verdict.invariant, HealthInvariant::kSegmentChecksum);
  EXPECT_NE(verdict.detail.find("segment 2/4"), std::string::npos);
}

TEST(HealthMonitorVector, NormAgreementGuardsTheRecurrence) {
  HealthMonitor monitor(detect_config());
  std::vector<real> v(16, 0.25);  // ||v|| = 1
  EXPECT_TRUE(
      monitor.check_vector(1, "v", v, 1.0, 1e-8, HealthInvariant::kUnitNorm)
          .healthy());
  const auto verdict = monitor.check_vector(1, "v", v, 2.0, 1e-8,
                                            HealthInvariant::kUnitNorm);
  EXPECT_EQ(verdict.invariant, HealthInvariant::kUnitNorm);
}

TEST(HealthMonitorAgreement, RelativeMismatchAndNonFiniteTrip) {
  HealthMonitor monitor(detect_config());
  EXPECT_TRUE(monitor
                  .check_agreement(1, "rnorm", 100.0, 100.0 + 1e-8, 1e-6,
                                   HealthInvariant::kResidualAgreement)
                  .healthy());
  const auto v =
      monitor.check_agreement(1, "rnorm", 100.0, 101.0, 1e-6,
                              HealthInvariant::kResidualAgreement);
  EXPECT_EQ(v.invariant, HealthInvariant::kResidualAgreement);
  const auto nf = monitor.check_agreement(
      1, "rnorm", std::numeric_limits<real>::quiet_NaN(), 1.0, 1e-6,
      HealthInvariant::kResidualAgreement);
  EXPECT_EQ(nf.invariant, HealthInvariant::kResidualAgreement);
}

TEST(HealthMonitorAbft, KernelChecksumScalesWithTheExplicitScale) {
  HealthConfig cfg = detect_config();
  cfg.abft_rel_tol = 1e-9;
  HealthMonitor monitor(cfg, /*rank=*/2);
  // Agreement to rounding at scale 1e3: tol = 1e-9 * 1e3 = 1e-6.
  EXPECT_TRUE(
      monitor.check_kernel_checksum(5, "aprod2", 1.0, 1.0 + 1e-7, 1e3)
          .healthy());
  const auto trip =
      monitor.check_kernel_checksum(5, "aprod2", 1.0, 1.0 + 1e-5, 1e3);
  EXPECT_EQ(trip.invariant, HealthInvariant::kKernelChecksum);
  EXPECT_EQ(trip.rank, 2);
  EXPECT_NE(trip.detail.find("aprod2"), std::string::npos);
  // The scale floor is 1: tiny scales cannot shrink the tolerance to
  // zero and turn rounding into detections.
  EXPECT_TRUE(
      monitor.check_kernel_checksum(5, "aprod1", 0.0, 5e-10, 1e-30)
          .healthy());
  // Non-finite on either side always trips.
  const auto nf = monitor.check_kernel_checksum(
      5, "aprod1", std::numeric_limits<real>::infinity(), 1.0, 1.0);
  EXPECT_EQ(nf.invariant, HealthInvariant::kKernelChecksum);
}

TEST(HealthMonitorReport, BookkeepingAccumulates) {
  HealthMonitor monitor(detect_config());
  monitor.note_deep_check();
  monitor.note_deep_check();

  HealthVerdict verdict;
  verdict.invariant = HealthInvariant::kKernelChecksum;
  verdict.iteration = 12;
  monitor.record_detection(verdict);
  monitor.record_repair(12, 10);
  verdict.iteration = 30;
  monitor.record_detection(verdict);
  monitor.record_unrepaired(verdict);

  const HealthReport report = monitor.report();
  EXPECT_EQ(report.mode, HealthMode::kDetect);
  EXPECT_EQ(report.checks, 2u);
  EXPECT_EQ(report.detections, 2u);
  EXPECT_EQ(report.repairs, 1u);
  EXPECT_EQ(report.first_detection_iteration, 12);
  EXPECT_TRUE(report.unrepaired);
  EXPECT_NE(report.last_diagnosis.find("iteration 30"), std::string::npos);
}

TEST(StateHash, SensitiveToASingleBitAndStableOtherwise) {
  std::vector<real> scalars = {1.0, 2.0, 3.0};
  std::vector<real> v = {0.5, -0.25, 0.125, 8.0};
  const auto h0 = state_hash(scalars, {std::span<const real>(v)});
  EXPECT_EQ(h0, state_hash(scalars, {std::span<const real>(v)}));

  auto bits = std::bit_cast<std::uint64_t>(v[2]);
  bits ^= 1ull;  // flip the least significant mantissa bit
  v[2] = std::bit_cast<real>(bits);
  EXPECT_NE(h0, state_hash(scalars, {std::span<const real>(v)}));

  scalars[0] = std::nextafter(scalars[0], 2.0);
  EXPECT_NE(h0, state_hash(scalars, {std::span<const real>(v)}));
}

TEST(StateHash, FoldSurvivesADoubleAllreduceExactly) {
  for (std::uint64_t h :
       {0ull, 1ull, 0xcbf29ce484222325ull, ~0ull, 0x123456789abcdefull}) {
    const double folded = fold_hash_to_real(h);
    EXPECT_GE(folded, 0.0);
    EXPECT_LT(folded, std::ldexp(1.0, 52));
    // Exactly representable: the round trip through double is lossless,
    // so a min/max allreduce compares the true folded values.
    EXPECT_EQ(static_cast<std::uint64_t>(folded),
              static_cast<std::uint64_t>(static_cast<double>(
                  static_cast<std::uint64_t>(folded))));
  }
  EXPECT_NE(fold_hash_to_real(0x1ull), fold_hash_to_real(0x2ull));
}

}  // namespace
}  // namespace gaia::resilience
