#include "resilience/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "resilience/fault_injector.hpp"

namespace gaia::resilience {
namespace {

namespace fs = std::filesystem;
using namespace std::string_literals;

/// Fresh scratch directory per test; removed (with contents) afterwards.
class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("gaia_ckpt_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    FaultInjector::global().disarm();
    fs::remove_all(dir_);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  [[nodiscard]] CheckpointConfig config(std::int64_t every = 1,
                                        int keep = 3) const {
    CheckpointConfig cfg;
    cfg.directory = dir_.string();
    cfg.every = every;
    cfg.keep_last = keep;
    return cfg;
  }

  fs::path dir_;
};

TEST_F(CheckpointTest, FramedFileRoundTrips) {
  const std::string payload = "lsqr state \0 with embedded nul"s;
  write_framed_file(path("a.ckpt"), payload);
  EXPECT_TRUE(verify_framed_file(path("a.ckpt")));
  EXPECT_EQ(read_framed_file(path("a.ckpt")), payload);
}

TEST_F(CheckpointTest, WriteLeavesNoTmpFileBehind) {
  write_framed_file(path("a.ckpt"), "payload");
  int entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    ++entries;
    EXPECT_EQ(entry.path().extension(), ".ckpt") << entry.path();
  }
  EXPECT_EQ(entries, 1);
}

TEST_F(CheckpointTest, UnframedFileIsRejectedNamingThePath) {
  {
    std::ofstream f(path("raw.ckpt"), std::ios::binary);
    f << "no footer here";
  }
  EXPECT_FALSE(verify_framed_file(path("raw.ckpt")));
  try {
    (void)read_framed_file(path("raw.ckpt"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("raw.ckpt"), std::string::npos) << what;
    EXPECT_NE(what.find("footer"), std::string::npos) << what;
  }
}

TEST_F(CheckpointTest, TruncatedFileIsRejectedAsTruncated) {
  const std::string payload(4096, 'x');
  write_framed_file(path("t.ckpt"), payload);
  fs::resize_file(path("t.ckpt"), fs::file_size(path("t.ckpt")) / 2);
  EXPECT_FALSE(verify_framed_file(path("t.ckpt")));
  try {
    (void)read_framed_file(path("t.ckpt"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("t.ckpt"), std::string::npos) << what;
    // Cutting the file in half also removes the footer; either message
    // names the damage honestly.
    const bool named = what.find("truncated") != std::string::npos ||
                       what.find("footer") != std::string::npos;
    EXPECT_TRUE(named) << what;
  }
}

TEST_F(CheckpointTest, BitFlippedFileIsRejectedAsCrcMismatch) {
  write_framed_file(path("b.ckpt"), std::string(1024, 'y'));
  {
    std::fstream f(path("b.ckpt"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(100);
    f.put(static_cast<char>('y' ^ 0x40));
  }
  EXPECT_FALSE(verify_framed_file(path("b.ckpt")));
  try {
    (void)read_framed_file(path("b.ckpt"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("b.ckpt"), std::string::npos) << what;
    EXPECT_NE(what.find("CRC mismatch"), std::string::npos) << what;
  }
}

TEST_F(CheckpointTest, MissingFileIsAnError) {
  EXPECT_FALSE(verify_framed_file(path("nope.ckpt")));
  EXPECT_THROW((void)read_framed_file(path("nope.ckpt")), Error);
}

TEST_F(CheckpointTest, ManagerHonorsTheCadence) {
  CheckpointManager manager(config(/*every=*/5));
  EXPECT_TRUE(manager.enabled());
  EXPECT_FALSE(manager.due(0));
  EXPECT_FALSE(manager.due(4));
  EXPECT_TRUE(manager.due(5));
  EXPECT_FALSE(manager.due(7));
  EXPECT_TRUE(manager.due(10));

  CheckpointManager disabled{CheckpointConfig{}};
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.due(5));
}

TEST_F(CheckpointTest, ManagerRotatesKeepingTheLastK) {
  CheckpointManager manager(config(/*every=*/1, /*keep=*/3));
  for (std::int64_t itn = 1; itn <= 5; ++itn)
    (void)manager.write(itn, "state@" + std::to_string(itn));
  EXPECT_EQ(manager.written(), 5u);

  const auto listed = manager.list();
  ASSERT_EQ(listed.size(), 3u);  // pruned to keep_last
  EXPECT_EQ(listed[0].iteration, 5);  // newest first
  EXPECT_EQ(listed[1].iteration, 4);
  EXPECT_EQ(listed[2].iteration, 3);
  EXPECT_EQ(read_framed_file(listed[0].path), "state@5");
}

TEST_F(CheckpointTest, LoadNewestValidSkipsTheCorruptNewest) {
  CheckpointManager manager(config());
  (void)manager.write(5, "state@5");
  const std::string newest = manager.write(10, "state@10");
  // The newest checkpoint rots on disk after sealing.
  fs::resize_file(newest, fs::file_size(newest) - 6);

  ::testing::internal::CaptureStderr();
  const auto loaded = manager.load_newest_valid();
  const std::string warning = ::testing::internal::GetCapturedStderr();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->info.iteration, 5);
  EXPECT_EQ(loaded->payload, "state@5");
  EXPECT_NE(warning.find("skipping"), std::string::npos) << warning;
}

TEST_F(CheckpointTest, LoadNewestValidIsEmptyWhenNothingSurvives) {
  CheckpointManager manager(config());
  EXPECT_FALSE(manager.load_newest_valid().has_value());
  const std::string only = manager.write(3, "state@3");
  fs::resize_file(only, 2);
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(manager.load_newest_valid().has_value());
  (void)::testing::internal::GetCapturedStderr();
}

TEST_F(CheckpointTest, InjectedTruncationCorruptsExactlyTheNthWrite) {
  FaultInjector::global().configure("ckpt:truncate,nth=2", 1);
  CheckpointManager manager(config());
  const std::string first = manager.write(1, std::string(512, 'a'));
  const std::string second = manager.write(2, std::string(512, 'b'));
  const std::string third = manager.write(3, std::string(512, 'c'));
  EXPECT_TRUE(verify_framed_file(first));
  EXPECT_FALSE(verify_framed_file(second));
  EXPECT_TRUE(verify_framed_file(third));
}

TEST_F(CheckpointTest, InjectedBitflipIsCaughtByTheCrc) {
  FaultInjector::global().configure("ckpt:bitflip", 1);
  CheckpointManager manager(config());
  const std::string written = manager.write(1, std::string(512, 'z'));
  EXPECT_FALSE(verify_framed_file(written));
  EXPECT_THROW((void)read_framed_file(written), Error);
}

}  // namespace
}  // namespace gaia::resilience
