#include "resilience/fault_injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace gaia::resilience {
namespace {

/// Every test leaves the process-global injector disarmed.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::global().disarm(); }
};

TEST_F(FaultInjectorTest, ParsesTheFullGrammar) {
  const FaultSpec spec = parse_fault_spec(
      "kernel:p=0.01,backend=gpusim;h2d:p=0.005;d2h:p=0.01,mode=corrupt;"
      "rank:iter=200,rank=1;ckpt:truncate,nth=2;seed=42");
  ASSERT_EQ(spec.clauses.size(), 5u);
  EXPECT_EQ(spec.seed, 42u);

  EXPECT_EQ(spec.clauses[0].site, FaultSite::kKernel);
  EXPECT_DOUBLE_EQ(spec.clauses[0].probability, 0.01);
  EXPECT_EQ(spec.clauses[0].backend, "gpusim");

  EXPECT_EQ(spec.clauses[1].site, FaultSite::kH2D);
  EXPECT_EQ(spec.clauses[1].transfer_mode, TransferFault::kFail);

  EXPECT_EQ(spec.clauses[2].site, FaultSite::kD2H);
  EXPECT_EQ(spec.clauses[2].transfer_mode, TransferFault::kCorrupt);

  EXPECT_EQ(spec.clauses[3].site, FaultSite::kRank);
  EXPECT_EQ(spec.clauses[3].rank, 1);
  EXPECT_EQ(spec.clauses[3].iteration, 200);
  EXPECT_EQ(spec.clauses[3].max_count, 1);  // rank clauses fire once

  EXPECT_EQ(spec.clauses[4].site, FaultSite::kCheckpoint);
  EXPECT_EQ(spec.clauses[4].ckpt_mode, CheckpointFault::kTruncate);
  EXPECT_EQ(spec.clauses[4].nth, 2);
}

TEST_F(FaultInjectorTest, MalformedSpecsNameTheOffendingClause) {
  try {
    (void)parse_fault_spec("kernel:p=2");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("kernel:p=2"), std::string::npos);
  }
  EXPECT_THROW((void)parse_fault_spec("nosuchsite:p=0.5"), Error);
  EXPECT_THROW((void)parse_fault_spec("kernel"), Error);
  EXPECT_THROW((void)parse_fault_spec("kernel:frobnicate=1"), Error);
  EXPECT_THROW((void)parse_fault_spec("rank:rank=1"), Error);  // iter missing
  EXPECT_THROW((void)parse_fault_spec("d2h:mode=explode"), Error);
}

TEST_F(FaultInjectorTest, DisarmedInjectorNeverFires) {
  FaultInjector& inj = FaultInjector::global();
  inj.disarm();
  EXPECT_FALSE(inj.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.should_fail_kernel("aprod1_astro", "serial"));
    EXPECT_EQ(inj.on_transfer(FaultSite::kH2D), TransferFault::kNone);
    EXPECT_EQ(inj.on_checkpoint_write(), std::nullopt);
    EXPECT_NO_THROW(inj.maybe_kill_rank(0, 1));
  }
  EXPECT_EQ(inj.injected_total(), 0u);
}

TEST_F(FaultInjectorTest, DecisionStreamIsReproducibleFromTheSeed) {
  FaultInjector& inj = FaultInjector::global();
  auto pattern = [&](std::uint64_t seed) {
    inj.configure("kernel:p=0.3", seed);
    std::vector<bool> fired;
    fired.reserve(500);
    for (int i = 0; i < 500; ++i)
      fired.push_back(inj.should_fail_kernel("aprod1_astro", "serial"));
    return fired;
  };
  const auto a = pattern(1746);
  const auto b = pattern(1746);
  EXPECT_EQ(a, b);  // same seed: bit-identical event decisions
  const auto c = pattern(42);
  EXPECT_NE(a, c);  // different seed: different pattern
  // And a p=0.3 stream over 500 events actually injects a sane amount.
  const auto fired_count =
      static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired_count, 100u);
  EXPECT_LT(fired_count, 200u);
}

TEST_F(FaultInjectorTest, CountCapStopsInjections) {
  FaultInjector& inj = FaultInjector::global();
  inj.configure("kernel:p=1,count=3", 1);
  int fired = 0;
  for (int i = 0; i < 20; ++i)
    if (inj.should_fail_kernel("k", "serial")) ++fired;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(inj.injected(FaultSite::kKernel), 3u);
}

TEST_F(FaultInjectorTest, BackendFilterOnlyHitsThatBackend) {
  FaultInjector& inj = FaultInjector::global();
  inj.configure("kernel:p=1,backend=gpusim", 1);
  EXPECT_FALSE(inj.should_fail_kernel("k", "serial"));
  EXPECT_FALSE(inj.should_fail_kernel("k", "openmp"));
  EXPECT_TRUE(inj.should_fail_kernel("k", "gpusim"));
}

TEST_F(FaultInjectorTest, RankClauseKillsExactlyOnce) {
  FaultInjector& inj = FaultInjector::global();
  inj.configure("rank:iter=5,rank=1", 1);
  EXPECT_NO_THROW(inj.maybe_kill_rank(0, 5));  // wrong rank
  EXPECT_NO_THROW(inj.maybe_kill_rank(1, 4));  // wrong iteration
  try {
    inj.maybe_kill_rank(1, 5);
    FAIL() << "expected RankDeath";
  } catch (const RankDeath& death) {
    EXPECT_EQ(death.rank(), 1);
    EXPECT_EQ(death.iteration(), 5);
  }
  // The restarted run passes the same (rank, iteration) again; the
  // clause is exhausted, so the survivor set keeps going this time.
  EXPECT_NO_THROW(inj.maybe_kill_rank(1, 5));
  EXPECT_EQ(inj.injected(FaultSite::kRank), 1u);
}

TEST_F(FaultInjectorTest, NthCheckpointClauseCorruptsOnlyThatWrite) {
  FaultInjector& inj = FaultInjector::global();
  inj.configure("ckpt:truncate,nth=2", 1);
  EXPECT_EQ(inj.on_checkpoint_write(), std::nullopt);
  EXPECT_EQ(inj.on_checkpoint_write(), CheckpointFault::kTruncate);
  EXPECT_EQ(inj.on_checkpoint_write(), std::nullopt);
  EXPECT_EQ(inj.injected(FaultSite::kCheckpoint), 1u);

  inj.configure("ckpt:bitflip", 1);
  EXPECT_EQ(inj.on_checkpoint_write(), CheckpointFault::kBitflip);
  EXPECT_EQ(inj.on_checkpoint_write(), CheckpointFault::kBitflip);
}

TEST_F(FaultInjectorTest, ParsesSdcClausesWithDefaults) {
  const FaultSpec spec =
      parse_fault_spec("sdc:kernel=aprod2,iter=12", 7);
  ASSERT_EQ(spec.clauses.size(), 1u);
  const FaultClause& c = spec.clauses[0];
  EXPECT_EQ(c.site, FaultSite::kSdc);
  EXPECT_EQ(c.kernel, "aprod2");
  EXPECT_EQ(c.iteration, 12);
  EXPECT_EQ(c.rank, 0);        // default victim: rank 0
  EXPECT_EQ(c.bit, 51);        // default: top mantissa bit
  EXPECT_EQ(c.index, -1);      // default: seeded element draw
  EXPECT_EQ(c.max_count, 1);   // sdc clauses fire once by default

  const FaultSpec full = parse_fault_spec(
      "sdc:kernel=aprod1,iter=30,rank=1,bit=62,index=17,count=4");
  ASSERT_EQ(full.clauses.size(), 1u);
  EXPECT_EQ(full.clauses[0].kernel, "aprod1");
  EXPECT_EQ(full.clauses[0].rank, 1);
  EXPECT_EQ(full.clauses[0].bit, 62);
  EXPECT_EQ(full.clauses[0].index, 17);
  EXPECT_EQ(full.clauses[0].max_count, 4);
}

TEST_F(FaultInjectorTest, MalformedSdcSpecsCarryPositionedDiagnoses) {
  // The error names the clause, the byte offset, and what is wrong —
  // a typo'd campaign must never silently run healthy.
  auto expect_error_mentions = [](const std::string& spec,
                                  const std::string& needle) {
    try {
      (void)parse_fault_spec(spec);
      FAIL() << "expected Error for '" << spec << "'";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("offset"), std::string::npos) << what;
      EXPECT_NE(what.find(needle), std::string::npos) << what;
    }
  };
  expect_error_mentions("sdc:iter=12", "kernel");        // kernel missing
  expect_error_mentions("sdc:kernel=aprod2", "iter");    // iteration missing
  expect_error_mentions("sdc:kernel=aprod2,iter=12,bit=64", "bit");
  expect_error_mentions("sdc:kernel=aprod2,iter=12,bitt=51", "bitt");
  // Trailing junk in numeric values is garbage, not a number.
  EXPECT_THROW((void)parse_fault_spec("sdc:kernel=a,iter=12abc"), Error);
  EXPECT_THROW((void)parse_fault_spec("sdc:kernel=a,iter=12,bit=51x"), Error);
  // A later clause reports an offset past the first clause.
  try {
    (void)parse_fault_spec("kernel:p=0.5;sdc:kernel=a,iter=1,nope=2");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nope"), std::string::npos) << what;
    EXPECT_EQ(what.find("offset 0"), std::string::npos) << what;
  }
}

TEST_F(FaultInjectorTest, SdcClauseFiresOnceDeterministically) {
  FaultInjector& inj = FaultInjector::global();
  inj.configure("sdc:kernel=aprod2,iter=12", 1746);
  // Wrong kernel, iteration, or rank: no flip.
  EXPECT_EQ(inj.on_kernel_output("aprod1", 12, 0, 100), std::nullopt);
  EXPECT_EQ(inj.on_kernel_output("aprod2", 11, 0, 100), std::nullopt);
  EXPECT_EQ(inj.on_kernel_output("aprod2", 12, 1, 100), std::nullopt);
  const auto flip = inj.on_kernel_output("aprod2", 12, 0, 100);
  ASSERT_TRUE(flip.has_value());
  EXPECT_LT(flip->index, 100u);
  EXPECT_EQ(flip->bit, 51);
  // Default count=1: the clause is spent (the repaired replay passes
  // the same site again and must run clean).
  EXPECT_EQ(inj.on_kernel_output("aprod2", 12, 0, 100), std::nullopt);
  EXPECT_EQ(inj.injected(FaultSite::kSdc), 1u);

  // Same seed, same element drawn; different seed, (almost surely) not.
  inj.configure("sdc:kernel=aprod2,iter=12", 1746);
  const auto again = inj.on_kernel_output("aprod2", 12, 0, 100);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->index, flip->index);
}

TEST_F(FaultInjectorTest, SdcClauseMatchesKernelPrefixGroups) {
  FaultInjector& inj = FaultInjector::global();
  // A clause naming a concrete scatter kernel matches the combined
  // output pass of its group ("aprod2" covers aprod2_att et al.).
  inj.configure("sdc:kernel=aprod2_att,iter=3,index=0,bit=50", 1);
  const auto flip = inj.on_kernel_output("aprod2", 3, 0, 10);
  ASSERT_TRUE(flip.has_value());
  EXPECT_EQ(flip->index, 0u);
  EXPECT_EQ(flip->bit, 50);
}

TEST_F(FaultInjectorTest, ApplyBitflipIsItsOwnInverse) {
  std::vector<real> v = {1.0, -2.5, 3.25};
  const std::vector<real> orig = v;
  const SdcFlip flip{1, 51};
  apply_bitflip(std::span<real>(v), flip);
  EXPECT_NE(v[1], orig[1]);
  EXPECT_EQ(v[0], orig[0]);
  EXPECT_EQ(v[2], orig[2]);
  apply_bitflip(std::span<real>(v), flip);
  EXPECT_EQ(v, orig);
}

TEST_F(FaultInjectorTest, ConfigureFromEnvOverridePath) {
  FaultInjector& inj = FaultInjector::global();
  inj.configure_from_env("kernel:p=1", 99);
  EXPECT_TRUE(inj.armed());
  EXPECT_TRUE(inj.should_fail_kernel("k", "serial"));
  // Empty override + (presumably) empty env leaves the state untouched.
  inj.disarm();
  inj.configure_from_env("", 99);
}

}  // namespace
}  // namespace gaia::resilience
