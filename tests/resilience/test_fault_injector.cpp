#include "resilience/fault_injector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace gaia::resilience {
namespace {

/// Every test leaves the process-global injector disarmed.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::global().disarm(); }
};

TEST_F(FaultInjectorTest, ParsesTheFullGrammar) {
  const FaultSpec spec = parse_fault_spec(
      "kernel:p=0.01,backend=gpusim;h2d:p=0.005;d2h:p=0.01,mode=corrupt;"
      "rank:iter=200,rank=1;ckpt:truncate,nth=2;seed=42");
  ASSERT_EQ(spec.clauses.size(), 5u);
  EXPECT_EQ(spec.seed, 42u);

  EXPECT_EQ(spec.clauses[0].site, FaultSite::kKernel);
  EXPECT_DOUBLE_EQ(spec.clauses[0].probability, 0.01);
  EXPECT_EQ(spec.clauses[0].backend, "gpusim");

  EXPECT_EQ(spec.clauses[1].site, FaultSite::kH2D);
  EXPECT_EQ(spec.clauses[1].transfer_mode, TransferFault::kFail);

  EXPECT_EQ(spec.clauses[2].site, FaultSite::kD2H);
  EXPECT_EQ(spec.clauses[2].transfer_mode, TransferFault::kCorrupt);

  EXPECT_EQ(spec.clauses[3].site, FaultSite::kRank);
  EXPECT_EQ(spec.clauses[3].rank, 1);
  EXPECT_EQ(spec.clauses[3].iteration, 200);
  EXPECT_EQ(spec.clauses[3].max_count, 1);  // rank clauses fire once

  EXPECT_EQ(spec.clauses[4].site, FaultSite::kCheckpoint);
  EXPECT_EQ(spec.clauses[4].ckpt_mode, CheckpointFault::kTruncate);
  EXPECT_EQ(spec.clauses[4].nth, 2);
}

TEST_F(FaultInjectorTest, MalformedSpecsNameTheOffendingClause) {
  try {
    (void)parse_fault_spec("kernel:p=2");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("kernel:p=2"), std::string::npos);
  }
  EXPECT_THROW((void)parse_fault_spec("nosuchsite:p=0.5"), Error);
  EXPECT_THROW((void)parse_fault_spec("kernel"), Error);
  EXPECT_THROW((void)parse_fault_spec("kernel:frobnicate=1"), Error);
  EXPECT_THROW((void)parse_fault_spec("rank:rank=1"), Error);  // iter missing
  EXPECT_THROW((void)parse_fault_spec("d2h:mode=explode"), Error);
}

TEST_F(FaultInjectorTest, DisarmedInjectorNeverFires) {
  FaultInjector& inj = FaultInjector::global();
  inj.disarm();
  EXPECT_FALSE(inj.armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.should_fail_kernel("aprod1_astro", "serial"));
    EXPECT_EQ(inj.on_transfer(FaultSite::kH2D), TransferFault::kNone);
    EXPECT_EQ(inj.on_checkpoint_write(), std::nullopt);
    EXPECT_NO_THROW(inj.maybe_kill_rank(0, 1));
  }
  EXPECT_EQ(inj.injected_total(), 0u);
}

TEST_F(FaultInjectorTest, DecisionStreamIsReproducibleFromTheSeed) {
  FaultInjector& inj = FaultInjector::global();
  auto pattern = [&](std::uint64_t seed) {
    inj.configure("kernel:p=0.3", seed);
    std::vector<bool> fired;
    fired.reserve(500);
    for (int i = 0; i < 500; ++i)
      fired.push_back(inj.should_fail_kernel("aprod1_astro", "serial"));
    return fired;
  };
  const auto a = pattern(1746);
  const auto b = pattern(1746);
  EXPECT_EQ(a, b);  // same seed: bit-identical event decisions
  const auto c = pattern(42);
  EXPECT_NE(a, c);  // different seed: different pattern
  // And a p=0.3 stream over 500 events actually injects a sane amount.
  const auto fired_count =
      static_cast<std::size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired_count, 100u);
  EXPECT_LT(fired_count, 200u);
}

TEST_F(FaultInjectorTest, CountCapStopsInjections) {
  FaultInjector& inj = FaultInjector::global();
  inj.configure("kernel:p=1,count=3", 1);
  int fired = 0;
  for (int i = 0; i < 20; ++i)
    if (inj.should_fail_kernel("k", "serial")) ++fired;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(inj.injected(FaultSite::kKernel), 3u);
}

TEST_F(FaultInjectorTest, BackendFilterOnlyHitsThatBackend) {
  FaultInjector& inj = FaultInjector::global();
  inj.configure("kernel:p=1,backend=gpusim", 1);
  EXPECT_FALSE(inj.should_fail_kernel("k", "serial"));
  EXPECT_FALSE(inj.should_fail_kernel("k", "openmp"));
  EXPECT_TRUE(inj.should_fail_kernel("k", "gpusim"));
}

TEST_F(FaultInjectorTest, RankClauseKillsExactlyOnce) {
  FaultInjector& inj = FaultInjector::global();
  inj.configure("rank:iter=5,rank=1", 1);
  EXPECT_NO_THROW(inj.maybe_kill_rank(0, 5));  // wrong rank
  EXPECT_NO_THROW(inj.maybe_kill_rank(1, 4));  // wrong iteration
  try {
    inj.maybe_kill_rank(1, 5);
    FAIL() << "expected RankDeath";
  } catch (const RankDeath& death) {
    EXPECT_EQ(death.rank(), 1);
    EXPECT_EQ(death.iteration(), 5);
  }
  // The restarted run passes the same (rank, iteration) again; the
  // clause is exhausted, so the survivor set keeps going this time.
  EXPECT_NO_THROW(inj.maybe_kill_rank(1, 5));
  EXPECT_EQ(inj.injected(FaultSite::kRank), 1u);
}

TEST_F(FaultInjectorTest, NthCheckpointClauseCorruptsOnlyThatWrite) {
  FaultInjector& inj = FaultInjector::global();
  inj.configure("ckpt:truncate,nth=2", 1);
  EXPECT_EQ(inj.on_checkpoint_write(), std::nullopt);
  EXPECT_EQ(inj.on_checkpoint_write(), CheckpointFault::kTruncate);
  EXPECT_EQ(inj.on_checkpoint_write(), std::nullopt);
  EXPECT_EQ(inj.injected(FaultSite::kCheckpoint), 1u);

  inj.configure("ckpt:bitflip", 1);
  EXPECT_EQ(inj.on_checkpoint_write(), CheckpointFault::kBitflip);
  EXPECT_EQ(inj.on_checkpoint_write(), CheckpointFault::kBitflip);
}

TEST_F(FaultInjectorTest, ConfigureFromEnvOverridePath) {
  FaultInjector& inj = FaultInjector::global();
  inj.configure_from_env("kernel:p=1", 99);
  EXPECT_TRUE(inj.armed());
  EXPECT_TRUE(inj.should_fail_kernel("k", "serial"));
  // Empty override + (presumably) empty env leaves the state untouched.
  inj.disarm();
  inj.configure_from_env("", 99);
}

}  // namespace
}  // namespace gaia::resilience
