/// Checkpoint -> restore -> continue must be bit-identical to an
/// uninterrupted run of the same configuration — including when the run
/// uses the privatized (contention-free, deterministic) scatter path
/// and launch shapes loaded from a sealed tuning cache. This is the
/// property the SDC rollback/repair loop stands on: a restored snapshot
/// replays the exact trajectory, so "repaired" means "the fault-free
/// solve", not "a nearby solve".
#include <gtest/gtest.h>

#include <filesystem>

#include "core/solver.hpp"
#include "test_helpers.hpp"

namespace gaia::core {
namespace {

namespace fs = std::filesystem;

class CheckpointContinuation : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("gaia_ckpt_cont_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] SolverRunConfig config(std::int64_t iterations) const {
    SolverRunConfig cfg;
    cfg.generator = gaia::testing::small_config(55);
    cfg.lsqr.aprod.backend = backends::BackendKind::kGpuSim;
    cfg.lsqr.max_iterations = iterations;
    // The deterministic contention-free scatter arm, with its launch
    // shapes persisted: restore must reproduce both choices.
    cfg.scatter = ScatterMode::kPrivatized;
    cfg.autotune.enabled = true;
    cfg.autotune.cache_path = (dir_ / "tuning.json").string();
    cfg.autotune.search.samples_per_config = 1;
    cfg.autotune.search.max_configs_per_kernel = 3;
    return cfg;
  }

  fs::path dir_;
};

TEST_F(CheckpointContinuation,
       RestoreContinueMatchesUninterruptedRunBitForBit) {
  // Leg 1: a "crashed" run — searches + seals the tuning cache and the
  // iteration-4 checkpoint, then stops at 8.
  SolverRunConfig first = config(8);
  first.checkpoint.directory = (dir_ / "ckpt").string();
  first.checkpoint.every = 4;
  const SolverRunReport seeded = run_solver(first);
  EXPECT_FALSE(seeded.autotune_cache_hit);
  // Checkpoints seal after non-final steps: an 8-iteration run with
  // every=4 seals exactly the iteration-4 snapshot.
  EXPECT_EQ(seeded.checkpoints_written, 1u);
  EXPECT_EQ(seeded.resumed_from_iteration, -1);

  // Leg 2: the continuation — loads the cache (no fresh search, so the
  // shapes are exactly leg 1's) and auto-resumes from the newest
  // checkpoint, then runs out the remaining iterations.
  SolverRunConfig second = config(16);
  second.checkpoint.directory = first.checkpoint.directory;
  second.checkpoint.every = 4;
  const SolverRunReport continued = run_solver(second);
  EXPECT_TRUE(continued.autotune_cache_hit);
  EXPECT_EQ(continued.resumed_from_iteration, 4);
  EXPECT_EQ(continued.tuning_used, seeded.tuning_used);
  EXPECT_EQ(continued.result.iterations, 16);

  // Reference: the same 16 iterations uninterrupted, same cached
  // shapes, no checkpoint machinery in the loop.
  const SolverRunReport reference = run_solver(config(16));
  EXPECT_TRUE(reference.autotune_cache_hit);
  EXPECT_EQ(reference.tuning_used, continued.tuning_used);

  // Bit-for-bit: solution, scalars, stop state. The privatized scatter
  // is deterministic and the snapshot carries the full recurrence
  // state, so not one ULP of drift is tolerated.
  ASSERT_EQ(continued.result.x.size(), reference.result.x.size());
  for (std::size_t i = 0; i < reference.result.x.size(); ++i)
    ASSERT_EQ(continued.result.x[i], reference.result.x[i])
        << "element " << i;
  EXPECT_EQ(continued.result.rnorm, reference.result.rnorm);
  EXPECT_EQ(continued.result.arnorm, reference.result.arnorm);
  EXPECT_EQ(continued.result.xnorm, reference.result.xnorm);
  EXPECT_EQ(continued.result.istop, reference.result.istop);
  ASSERT_EQ(continued.result.std_errors.size(),
            reference.result.std_errors.size());
  for (std::size_t i = 0; i < reference.result.std_errors.size(); ++i)
    ASSERT_EQ(continued.result.std_errors[i],
              reference.result.std_errors[i])
        << "std error " << i;
}

TEST_F(CheckpointContinuation, HealthRepairSnapshotSurvivesRestore) {
  // A restored run in repair mode must re-anchor its in-memory rollback
  // snapshot at the restored iteration (not at iteration 0 of a state
  // it never had); a clean continuation then reports zero detections.
  SolverRunConfig first = config(8);
  first.checkpoint.directory = (dir_ / "ckpt").string();
  first.checkpoint.every = 4;
  (void)run_solver(first);

  SolverRunConfig second = config(16);
  second.checkpoint.directory = first.checkpoint.directory;
  second.checkpoint.every = 4;
  second.lsqr.health.mode = resilience::HealthMode::kRepair;
  second.lsqr.health.check_every = 4;
  const SolverRunReport continued = run_solver(second);
  EXPECT_EQ(continued.resumed_from_iteration, 4);
  EXPECT_EQ(continued.result.health.detections, 0u);
  EXPECT_EQ(continued.result.health.repairs, 0u);
  EXPECT_GT(continued.result.health.checks, 0u);
}

}  // namespace
}  // namespace gaia::core
