#include "resilience/failover.hpp"

#include <gtest/gtest.h>

#include "core/lsqr.hpp"
#include "matrix/generator.hpp"
#include "obs/metrics.hpp"
#include "resilience/fault_injector.hpp"
#include "test_helpers.hpp"

namespace gaia::resilience {
namespace {

using backends::BackendKind;

class FailoverTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::global().disarm();
    obs::MetricsRegistry::global().set_enabled(false);
    obs::MetricsRegistry::global().reset();
  }

  static core::LsqrOptions options(BackendKind backend) {
    core::LsqrOptions opts;
    opts.aprod.backend = backend;
    opts.aprod.use_streams = false;
    opts.max_iterations = 40;
    // Keep injected-fault tests fast: the structure of the backoff is
    // under test elsewhere, not the wall-clock delays.
    opts.aprod.retry.base_delay = std::chrono::microseconds(1);
    opts.aprod.retry.max_delay = std::chrono::microseconds(4);
    return opts;
  }
};

TEST_F(FailoverTest, DegradationChainStepsDownToSerial) {
  EXPECT_EQ(next_backend(BackendKind::kGpuSim), BackendKind::kOpenMP);
  EXPECT_EQ(next_backend(BackendKind::kPstl), BackendKind::kOpenMP);
  EXPECT_EQ(next_backend(BackendKind::kOpenMP), BackendKind::kSerial);
  EXPECT_EQ(next_backend(BackendKind::kSerial), std::nullopt);
}

TEST_F(FailoverTest, PersistentGpusimFaultFailsOverAndStillConverges) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(150));
  const auto healthy = core::lsqr_solve(gen.A, options(BackendKind::kGpuSim));
  ASSERT_EQ(healthy.final_backend, BackendKind::kGpuSim);
  EXPECT_EQ(healthy.failovers, 0u);

  // Every gpusim launch fails; the retry budget escalates the fault to
  // persistent and the run steps down the chain.
  FaultInjector::global().configure("kernel:p=1,backend=gpusim", 7);
  const auto degraded = core::lsqr_solve(gen.A, options(BackendKind::kGpuSim));
  EXPECT_NE(degraded.final_backend, BackendKind::kGpuSim);
  EXPECT_GE(degraded.failovers, 1u);
  ASSERT_EQ(degraded.iterations, healthy.iterations);
  // Every backend computes the same answer (SV-C), so the failed-over
  // run agrees with the healthy one up to accumulation-order roundoff.
  EXPECT_LT(gaia::testing::rel_l2_error(degraded.x, healthy.x), 1e-2);
  EXPECT_NEAR(degraded.rnorm, healthy.rnorm,
              1e-3 * std::max<real>(1, healthy.rnorm));
}

TEST_F(FailoverTest, FailoverDisabledPropagatesThePersistentFault) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(151));
  FaultInjector::global().configure("kernel:p=1,backend=gpusim", 7);
  auto opts = options(BackendKind::kGpuSim);
  opts.aprod.failover = false;
  EXPECT_THROW((void)core::lsqr_solve(gen.A, opts), PersistentFault);
}

TEST_F(FailoverTest, ExhaustedChainPropagatesThePersistentFault) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(152));
  // No backend filter: serial fails too, so the chain runs out.
  FaultInjector::global().configure("kernel:p=1", 7);
  EXPECT_THROW((void)core::lsqr_solve(gen.A, options(BackendKind::kGpuSim)),
               PersistentFault);
}

TEST_F(FailoverTest, FailoverIsCountedInTheMetrics) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  reg.set_enabled(true);
  const auto gen = matrix::generate_system(gaia::testing::small_config(153));
  FaultInjector::global().configure("kernel:p=1,backend=gpusim", 7);
  const auto result =
      core::lsqr_solve(gen.A, options(BackendKind::kGpuSim));
  EXPECT_GE(result.failovers, 1u);
  EXPECT_GE(reg.counter("resilience.failovers").value(), 1u);
  EXPECT_GE(reg.counter("resilience.retries").value(), 1u);
}

}  // namespace
}  // namespace gaia::resilience
