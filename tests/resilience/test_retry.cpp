#include "resilience/retry.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"
#include "util/backoff.hpp"

namespace gaia::resilience {
namespace {

util::BackoffPolicy fast_policy() {
  util::BackoffPolicy policy;
  policy.max_attempts = 4;
  policy.base_delay = std::chrono::microseconds(1);
  policy.max_delay = std::chrono::microseconds(8);
  return policy;
}

TEST(Backoff, DelayGrowsExponentiallyAndSaturates) {
  util::BackoffPolicy policy;
  policy.base_delay = std::chrono::microseconds(50);
  policy.max_delay = std::chrono::microseconds(500);
  policy.multiplier = 2.0;
  EXPECT_EQ(util::backoff_delay(policy, 1).count(), 50);
  EXPECT_EQ(util::backoff_delay(policy, 2).count(), 100);
  EXPECT_EQ(util::backoff_delay(policy, 3).count(), 200);
  EXPECT_EQ(util::backoff_delay(policy, 4).count(), 400);
  EXPECT_EQ(util::backoff_delay(policy, 5).count(), 500);  // capped
  EXPECT_EQ(util::backoff_delay(policy, 20).count(), 500);
}

TEST(Retry, ReturnsTheValueOnFirstSuccess) {
  int calls = 0;
  const int result = with_retry("site", fast_policy(), [&] {
    ++calls;
    return 17;
  });
  EXPECT_EQ(result, 17);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, AbsorbsTransientFaultsUpToTheBudget) {
  int calls = 0;
  const int result = with_retry("site", fast_policy(), [&] {
    if (++calls < 3) throw TransientFault("hiccup");
    return calls;
  });
  EXPECT_EQ(result, 3);
}

TEST(Retry, EscalatesToPersistentFaultNamingTheSite) {
  int calls = 0;
  try {
    with_retry("aprod1_astro", fast_policy(), [&]() -> int {
      ++calls;
      throw TransientFault("injected launch failure");
    });
    FAIL() << "expected PersistentFault";
  } catch (const PersistentFault& fault) {
    const std::string what = fault.what();
    EXPECT_NE(what.find("aprod1_astro"), std::string::npos);
    EXPECT_NE(what.find("injected launch failure"), std::string::npos);
    EXPECT_NE(what.find("4 attempts"), std::string::npos);
  }
  EXPECT_EQ(calls, 4);  // max_attempts calls, then escalation
}

TEST(Retry, NonTransientExceptionsPropagateImmediately) {
  int calls = 0;
  EXPECT_THROW(with_retry("site", fast_policy(),
                          [&]() -> int {
                            ++calls;
                            throw Error("not transient");
                          }),
               Error);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, CountsRetriesInTheMetricsRegistry) {
  auto& reg = obs::MetricsRegistry::global();
  reg.reset();
  reg.set_enabled(true);
  int calls = 0;
  (void)with_retry("unit", fast_policy(), [&] {
    if (++calls < 3) throw TransientFault("hiccup");
    return 0;
  });
  EXPECT_EQ(reg.counter("resilience.retries").value(), 2u);
  EXPECT_EQ(reg.counter("resilience.retries.unit").value(), 2u);
  reg.set_enabled(false);
  reg.reset();
}

}  // namespace
}  // namespace gaia::resilience
