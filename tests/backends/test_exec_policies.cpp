#include "backends/backend.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace gaia::backends {
namespace {

// ---- shared policy-conformance suite (parameterized over backends) -------

class ExecPolicy : public ::testing::TestWithParam<BackendKind> {
 protected:
  template <typename F>
  void launch(std::int64_t n, KernelConfig cfg, F&& body) {
    dispatch(GetParam(), [&](auto exec) {
      decltype(exec)::launch(n, cfg, body);
    });
  }
};

TEST_P(ExecPolicy, CoversRangeExactlyOnce) {
  constexpr std::int64_t n = 20000;
  std::vector<std::atomic<int>> hits(n);
  launch(n, {}, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (std::int64_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST_P(ExecPolicy, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  launch(0, {}, [&](std::int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST_P(ExecPolicy, SingleElementRange) {
  std::atomic<std::int64_t> seen{-1};
  launch(1, {}, [&](std::int64_t i) { seen.store(i); });
  EXPECT_EQ(seen.load(), 0);
}

TEST_P(ExecPolicy, HonorsExplicitKernelConfigIfClaimed) {
  // Whatever the config, coverage must be exact — including shapes with
  // far more virtual threads than elements and far fewer.
  for (const KernelConfig cfg :
       {KernelConfig{1, 1}, KernelConfig{2, 3}, KernelConfig{128, 256}}) {
    constexpr std::int64_t n = 1234;
    std::vector<std::atomic<int>> hits(n);
    launch(n, cfg, [&](std::int64_t i) { hits[i].fetch_add(1); });
    for (std::int64_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "cfg " << cfg.blocks << "x"
                                   << cfg.threads << " index " << i;
  }
}

TEST_P(ExecPolicy, AtomicAddAccumulatesUnderParallelism) {
  const BackendKind kind = GetParam();
  double target = 0.0;
  constexpr std::int64_t n = 50000;
  dispatch(kind, [&](auto exec) {
    using Exec = decltype(exec);
    Exec::launch(n, {}, [&target](std::int64_t) {
      Exec::atomic_add(target, 1.0, AtomicMode::kNativeRmw);
    });
  });
  EXPECT_DOUBLE_EQ(target, static_cast<double>(n));
}

TEST_P(ExecPolicy, AtomicAddCasModeAlsoExact) {
  const BackendKind kind = GetParam();
  double target = 0.0;
  constexpr std::int64_t n = 50000;
  dispatch(kind, [&](auto exec) {
    using Exec = decltype(exec);
    Exec::launch(n, {}, [&target](std::int64_t) {
      Exec::atomic_add(target, 1.0, AtomicMode::kCasLoop);
    });
  });
  EXPECT_DOUBLE_EQ(target, static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, ExecPolicy,
                         ::testing::ValuesIn(all_backends()),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

// ---- backend-specific behaviour -------------------------------------------

TEST(SerialExecPolicy, VisitsInAscendingOrder) {
  std::vector<std::int64_t> order;
  SerialExec::launch(100, {}, [&](std::int64_t i) { order.push_back(i); });
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(order.size(), 100u);
}

TEST(GpuSimExecPolicy, OversubscribedGridStillCoversOnce) {
  // Grid far larger than the range: most virtual threads get no element;
  // the grid-stride loop bound must keep coverage exact.
  const KernelConfig cfg{64, 64};  // 4096 virtual threads for 33 elements
  std::vector<std::atomic<int>> hits(33);
  GpuSimExec::launch(33, cfg, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(GpuSimExecPolicy, UndersubscribedGridWalksStride) {
  // Grid of 3 virtual threads over 10 elements: each walks the stride.
  const KernelConfig cfg{1, 3};
  std::vector<std::atomic<int>> hits(10);
  GpuSimExec::launch(10, cfg, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(GpuSimExecPolicy, ResolveFillsDefaults) {
  const KernelConfig r = GpuSimExec::resolve({});
  EXPECT_EQ(r.blocks, GpuSimExec::kDefaultBlocks);
  EXPECT_EQ(r.threads, GpuSimExec::kDefaultThreads);
  const KernelConfig partial = GpuSimExec::resolve({16, 0});
  EXPECT_EQ(partial.blocks, 16);
  EXPECT_EQ(partial.threads, GpuSimExec::kDefaultThreads);
}

TEST(OpenMPExecPolicy, ResolveThreadsClampsToHardware) {
  const int def = OpenMPExec::resolve_threads({});
  EXPECT_GE(def, 1);
  EXPECT_EQ(OpenMPExec::resolve_threads({1, 1}), 1);
  const int big = OpenMPExec::resolve_threads({1024, 1024});
  EXPECT_LE(big, def);
}

TEST(PstlExecPolicy, DeclaresNoTuningKnob) {
  // The property the paper's PSTL discussion hinges on.
  EXPECT_FALSE(PstlExec::kHonorsKernelConfig);
  EXPECT_TRUE(GpuSimExec::kHonorsKernelConfig);
  EXPECT_TRUE(OpenMPExec::kHonorsKernelConfig);
}

TEST(BackendNames, RoundTripParse) {
  for (BackendKind k : all_backends()) {
    const auto parsed = parse_backend(to_string(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
}

TEST(BackendNames, FrameworkAliasesMapSensibly) {
  EXPECT_EQ(parse_backend("cuda"), BackendKind::kGpuSim);
  EXPECT_EQ(parse_backend("HIP"), BackendKind::kGpuSim);
  EXPECT_EQ(parse_backend("sycl"), BackendKind::kGpuSim);
  EXPECT_EQ(parse_backend("stdpar"), BackendKind::kPstl);
  EXPECT_EQ(parse_backend("omp"), BackendKind::kOpenMP);
  EXPECT_FALSE(parse_backend("fortran").has_value());
}

}  // namespace
}  // namespace gaia::backends
