#include "backends/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace gaia::backends {
namespace {

TEST(ThreadPool, CoversWholeRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(10000, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersDegeneratesToSerial) {
  ThreadPool pool(0);
  std::int64_t sum = 0;  // no synchronization needed: serial execution
  pool.parallel_for(1000, 10, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum, 1000 * 999 / 2);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 8, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleChunkRunsInline) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::thread::id executed_on;
  pool.parallel_for(5, 10, [&](std::int64_t, std::int64_t) {
    executed_on = std::this_thread::get_id();
  });
  EXPECT_EQ(executed_on, caller);
}

TEST(ThreadPool, RejectsNonPositiveGrain) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(10, 0, [](std::int64_t, std::int64_t) {}),
               gaia::Error);
}

TEST(ThreadPool, ConcurrentSubmittersBothComplete) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> total{0};
  auto submit = [&] {
    pool.parallel_for(5000, 16, [&](std::int64_t lo, std::int64_t hi) {
      total.fetch_add(hi - lo);
    });
  };
  std::thread t1(submit), t2(submit);
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 10000);
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, 1, [&](std::int64_t, std::int64_t) {
    pool.parallel_for(100, 10, [&](std::int64_t lo, std::int64_t hi) {
      inner_total.fetch_add(static_cast<int>(hi - lo));
    });
  });
  EXPECT_EQ(inner_total.load(), 400);
}

TEST(ThreadPool, ManySequentialJobsStaySound) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 200; ++rep) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(257, 8, [&](std::int64_t lo, std::int64_t hi) {
      std::int64_t local = 0;
      for (std::int64_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), 257 * 256 / 2) << "repetition " << rep;
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
}

TEST(ThreadPool, UnevenChunkBoundariesCoverTail) {
  ThreadPool pool(3);
  std::atomic<std::int64_t> count{0};
  pool.parallel_for(1003, 100, [&](std::int64_t lo, std::int64_t hi) {
    count.fetch_add(hi - lo);
  });
  EXPECT_EQ(count.load(), 1003);
}

}  // namespace
}  // namespace gaia::backends
