#include "backends/kernel_config.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/error.hpp"

namespace gaia::backends {
namespace {

TEST(KernelConfig, DefaultIsSentinel) {
  KernelConfig cfg;
  EXPECT_TRUE(cfg.is_default());
  EXPECT_FALSE((KernelConfig{32, 32}).is_default());
  EXPECT_EQ((KernelConfig{4, 8}).total_threads(), 32);
}

TEST(KernelId, NamesAreUniqueAndStable) {
  EXPECT_EQ(to_string(KernelId::kAprod1Astro), "aprod1_astro");
  EXPECT_EQ(to_string(KernelId::kAprod2Glob), "aprod2_glob");
  std::set<std::string> names;
  for (int k = 0; k < kNumKernels; ++k)
    names.insert(to_string(static_cast<KernelId>(k)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumKernels));
}

TEST(KernelId, AtomicsFlagMatchesPaper) {
  // Only the aprod2 scatter kernels for shared columns need atomics; the
  // block-diagonal astrometric scatter and all gathers do not.
  EXPECT_FALSE(kernel_uses_atomics(KernelId::kAprod1Astro));
  EXPECT_FALSE(kernel_uses_atomics(KernelId::kAprod1Att));
  EXPECT_FALSE(kernel_uses_atomics(KernelId::kAprod1Instr));
  EXPECT_FALSE(kernel_uses_atomics(KernelId::kAprod1Glob));
  EXPECT_FALSE(kernel_uses_atomics(KernelId::kAprod2Astro));
  EXPECT_TRUE(kernel_uses_atomics(KernelId::kAprod2Att));
  EXPECT_TRUE(kernel_uses_atomics(KernelId::kAprod2Instr));
  EXPECT_TRUE(kernel_uses_atomics(KernelId::kAprod2Glob));
}

TEST(TuningTable, SetGetRoundTrip) {
  TuningTable t;
  t.set(KernelId::kAprod1Att, {10, 20});
  EXPECT_EQ(t.get(KernelId::kAprod1Att), (KernelConfig{10, 20}));
  EXPECT_TRUE(t.get(KernelId::kAprod1Astro).is_default());
}

TEST(TuningTable, SetAllAppliesEverywhere) {
  TuningTable t;
  t.set_all({7, 9});
  for (int k = 0; k < kNumKernels; ++k)
    EXPECT_EQ(t.get(static_cast<KernelId>(k)), (KernelConfig{7, 9}));
}

TEST(TuningTable, TunedDefaultNarrowsAtomicKernels) {
  // The production optimization: atomic kernels get fewer virtual
  // threads than gather kernels (paper SIV).
  const TuningTable t = TuningTable::tuned_default();
  const auto wide = t.get(KernelId::kAprod1Astro).total_threads();
  for (const KernelId id : {KernelId::kAprod2Att, KernelId::kAprod2Instr,
                            KernelId::kAprod2Glob}) {
    EXPECT_LT(t.get(id).total_threads(), wide) << to_string(id);
  }
  // The most contended kernel (single global column) is the narrowest.
  EXPECT_LE(t.get(KernelId::kAprod2Glob).total_threads(),
            t.get(KernelId::kAprod2Att).total_threads());
}

TEST(KernelConfig, ValidityAcceptsSentinelAndSaneShapes) {
  EXPECT_TRUE(is_valid_kernel_config({0, 0}));  // "backend default"
  EXPECT_TRUE(is_valid_kernel_config({1, 1}));
  EXPECT_TRUE(is_valid_kernel_config({kMaxBlocks, kMaxThreads}));
}

TEST(KernelConfig, ValidityRejectsNegativeZeroPairedAndAbsurd) {
  EXPECT_FALSE(is_valid_kernel_config({-1, 32}));
  EXPECT_FALSE(is_valid_kernel_config({32, -32}));
  EXPECT_FALSE(is_valid_kernel_config({0, 32}));  // half-default
  EXPECT_FALSE(is_valid_kernel_config({32, 0}));
  EXPECT_FALSE(is_valid_kernel_config({kMaxBlocks + 1, 32}));
  EXPECT_FALSE(is_valid_kernel_config({32, kMaxThreads + 1}));
}

TEST(KernelConfig, ValidateNamesTheContextAndValues) {
  EXPECT_NO_THROW(validate_kernel_config({32, 128}, "test"));
  try {
    validate_kernel_config({-3, 128}, "the-cli-flag");
    FAIL() << "expected gaia::Error";
  } catch (const Error& e) {
    // The message must let the user locate and fix the input.
    EXPECT_NE(std::string(e.what()).find("the-cli-flag"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
}

TEST(KernelConfig, ParseAcceptsTheDocumentedForms) {
  EXPECT_EQ(parse_kernel_config("32x128"), (KernelConfig{32, 128}));
  EXPECT_EQ(parse_kernel_config("1X1"), (KernelConfig{1, 1}));
  EXPECT_EQ(parse_kernel_config("8*256"), (KernelConfig{8, 256}));
}

TEST(KernelConfig, ParseRejectsMalformedAndOutOfRange) {
  for (const std::string bad :
       {"", "32", "x128", "32x", "32y128", "axb", "32x128x4", "-4x128",
        "32x-1", "0x64", "2000000x32", "32x100000"}) {
    EXPECT_THROW((void)parse_kernel_config(bad), Error) << "'" << bad << "'";
  }
}

TEST(KernelId, ParseIsTheInverseOfToString) {
  for (int k = 0; k < kNumKernels; ++k) {
    const auto id = static_cast<KernelId>(k);
    const auto parsed = parse_kernel_id(to_string(id));
    ASSERT_TRUE(parsed.has_value()) << to_string(id);
    EXPECT_EQ(*parsed, id);
  }
  EXPECT_FALSE(parse_kernel_id("aprod3_astro").has_value());
  EXPECT_FALSE(parse_kernel_id("").has_value());
}

TEST(KernelId, AllKernelsEnumeratesInOrder) {
  const auto& all = all_kernels();
  for (int k = 0; k < kNumKernels; ++k)
    EXPECT_EQ(all[static_cast<std::size_t>(k)], static_cast<KernelId>(k));
}

TEST(TuningTable, SetRejectsUnlaunchableShapes) {
  TuningTable t;
  EXPECT_THROW(t.set(KernelId::kAprod1Astro, {-1, 32}), Error);
  EXPECT_THROW(t.set(KernelId::kAprod1Astro, {32, kMaxThreads + 1}), Error);
  EXPECT_THROW(t.set_all({0, 7}), Error);
  // The failed set must not have modified the table.
  EXPECT_TRUE(t.get(KernelId::kAprod1Astro).is_default());
}

TEST(TuningTable, UntunedIsUniform) {
  const TuningTable t = TuningTable::untuned({256, 256});
  for (int k = 0; k < kNumKernels; ++k)
    EXPECT_EQ(t.get(static_cast<KernelId>(k)), (KernelConfig{256, 256}));
}

}  // namespace
}  // namespace gaia::backends
