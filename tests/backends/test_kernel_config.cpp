#include "backends/kernel_config.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace gaia::backends {
namespace {

TEST(KernelConfig, DefaultIsSentinel) {
  KernelConfig cfg;
  EXPECT_TRUE(cfg.is_default());
  EXPECT_FALSE((KernelConfig{32, 32}).is_default());
  EXPECT_EQ((KernelConfig{4, 8}).total_threads(), 32);
}

TEST(KernelId, NamesAreUniqueAndStable) {
  EXPECT_EQ(to_string(KernelId::kAprod1Astro), "aprod1_astro");
  EXPECT_EQ(to_string(KernelId::kAprod2Glob), "aprod2_glob");
  std::set<std::string> names;
  for (int k = 0; k < kNumKernels; ++k)
    names.insert(to_string(static_cast<KernelId>(k)));
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kNumKernels));
}

TEST(KernelId, AtomicsFlagMatchesPaper) {
  // Only the aprod2 scatter kernels for shared columns need atomics; the
  // block-diagonal astrometric scatter and all gathers do not.
  EXPECT_FALSE(kernel_uses_atomics(KernelId::kAprod1Astro));
  EXPECT_FALSE(kernel_uses_atomics(KernelId::kAprod1Att));
  EXPECT_FALSE(kernel_uses_atomics(KernelId::kAprod1Instr));
  EXPECT_FALSE(kernel_uses_atomics(KernelId::kAprod1Glob));
  EXPECT_FALSE(kernel_uses_atomics(KernelId::kAprod2Astro));
  EXPECT_TRUE(kernel_uses_atomics(KernelId::kAprod2Att));
  EXPECT_TRUE(kernel_uses_atomics(KernelId::kAprod2Instr));
  EXPECT_TRUE(kernel_uses_atomics(KernelId::kAprod2Glob));
}

TEST(TuningTable, SetGetRoundTrip) {
  TuningTable t;
  t.set(KernelId::kAprod1Att, {10, 20});
  EXPECT_EQ(t.get(KernelId::kAprod1Att), (KernelConfig{10, 20}));
  EXPECT_TRUE(t.get(KernelId::kAprod1Astro).is_default());
}

TEST(TuningTable, SetAllAppliesEverywhere) {
  TuningTable t;
  t.set_all({7, 9});
  for (int k = 0; k < kNumKernels; ++k)
    EXPECT_EQ(t.get(static_cast<KernelId>(k)), (KernelConfig{7, 9}));
}

TEST(TuningTable, TunedDefaultNarrowsAtomicKernels) {
  // The production optimization: atomic kernels get fewer virtual
  // threads than gather kernels (paper SIV).
  const TuningTable t = TuningTable::tuned_default();
  const auto wide = t.get(KernelId::kAprod1Astro).total_threads();
  for (const KernelId id : {KernelId::kAprod2Att, KernelId::kAprod2Instr,
                            KernelId::kAprod2Glob}) {
    EXPECT_LT(t.get(id).total_threads(), wide) << to_string(id);
  }
  // The most contended kernel (single global column) is the narrowest.
  EXPECT_LE(t.get(KernelId::kAprod2Glob).total_threads(),
            t.get(KernelId::kAprod2Att).total_threads());
}

TEST(TuningTable, UntunedIsUniform) {
  const TuningTable t = TuningTable::untuned({256, 256});
  for (int k = 0; k < kNumKernels; ++k)
    EXPECT_EQ(t.get(static_cast<KernelId>(k)), (KernelConfig{256, 256}));
}

}  // namespace
}  // namespace gaia::backends
