#include "backends/device_buffer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gaia::backends {
namespace {

TEST(DeviceContext, TracksAllocationLifecycle) {
  DeviceContext ctx(1 * kMiB, "test-gpu");
  EXPECT_EQ(ctx.allocated(), 0u);
  {
    DeviceBuffer<double> buf(ctx, 1000);
    EXPECT_EQ(ctx.allocated(), 8000u);
    EXPECT_EQ(ctx.alloc_count(), 1u);
  }
  EXPECT_EQ(ctx.allocated(), 0u);
}

TEST(DeviceContext, EnforcesCapacity) {
  DeviceContext ctx(1024, "tiny-gpu");
  DeviceBuffer<double> ok(ctx, 100);  // 800 B
  EXPECT_THROW(DeviceBuffer<double>(ctx, 100), gaia::Error);  // would be 1600
  // Failed allocation must not leak accounting.
  EXPECT_EQ(ctx.allocated(), 800u);
}

TEST(DeviceContext, CapacityErrorNamesDevice) {
  DeviceContext ctx(16, "h100-sim");
  try {
    DeviceBuffer<double> buf(ctx, 100);
    FAIL() << "expected capacity error";
  } catch (const gaia::Error& e) {
    EXPECT_NE(std::string(e.what()).find("h100-sim"), std::string::npos);
  }
}

TEST(DeviceBuffer, H2DAndD2HCountersAdvance) {
  DeviceContext ctx;
  std::vector<double> host{1, 2, 3, 4};
  DeviceBuffer<double> buf(ctx, std::span<const double>(host));
  EXPECT_EQ(ctx.h2d_bytes(), 32u);
  std::vector<double> back(4);
  buf.copy_to_host(back);
  EXPECT_EQ(ctx.d2h_bytes(), 32u);
  EXPECT_EQ(back, host);
}

TEST(DeviceBuffer, ResetTransferCounters) {
  DeviceContext ctx;
  std::vector<double> host{1, 2};
  DeviceBuffer<double> buf(ctx, std::span<const double>(host));
  ctx.reset_transfer_counters();
  EXPECT_EQ(ctx.h2d_bytes(), 0u);
  EXPECT_EQ(ctx.d2h_bytes(), 0u);
}

TEST(DeviceBuffer, SizeMismatchRejected) {
  DeviceContext ctx;
  DeviceBuffer<int> buf(ctx, 4);
  std::vector<int> wrong(3);
  EXPECT_THROW(buf.copy_from_host(wrong), gaia::Error);
  EXPECT_THROW(buf.copy_to_host(wrong), gaia::Error);
}

TEST(DeviceBuffer, FillSetsAllElements) {
  DeviceContext ctx;
  DeviceBuffer<double> buf(ctx, 16);
  buf.fill(3.25);
  for (double v : buf.span()) EXPECT_DOUBLE_EQ(v, 3.25);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  DeviceContext ctx;
  DeviceBuffer<double> a(ctx, 10);
  const double* p = a.data();
  DeviceBuffer<double> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(ctx.allocated(), 80u);  // still one live allocation
}

TEST(DeviceBuffer, MoveAssignReleasesPrevious) {
  DeviceContext ctx;
  DeviceBuffer<double> a(ctx, 10);
  DeviceBuffer<double> b(ctx, 20);
  EXPECT_EQ(ctx.allocated(), 240u);
  b = std::move(a);
  EXPECT_EQ(ctx.allocated(), 80u);
  EXPECT_EQ(b.size(), 10u);
}

TEST(DeviceBuffer, CoherenceModeCarried) {
  DeviceContext ctx;
  DeviceBuffer<double> coarse(ctx, 4, CoherenceMode::kCoarseGrain);
  DeviceBuffer<double> fine(ctx, 4, CoherenceMode::kFineGrain);
  EXPECT_EQ(coarse.coherence(), CoherenceMode::kCoarseGrain);
  EXPECT_EQ(fine.coherence(), CoherenceMode::kFineGrain);
}

TEST(DeviceBuffer, DefaultConstructedIsEmpty) {
  DeviceBuffer<double> buf;
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.bytes(), 0u);
}

}  // namespace
}  // namespace gaia::backends
