#include "backends/pstl_algorithms.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "backends/counting_iterator.hpp"

namespace gaia::backends {
namespace {

TEST(CountingIterator, SatisfiesRandomAccessSemantics) {
  CountingIterator it(10);
  EXPECT_EQ(*it, 10);
  EXPECT_EQ(it[5], 15);
  EXPECT_EQ(*(it + 3), 13);
  EXPECT_EQ(*(3 + it), 13);
  EXPECT_EQ(*(it - 2), 8);
  EXPECT_EQ(CountingIterator(20) - CountingIterator(5), 15);
  EXPECT_TRUE(CountingIterator(1) < CountingIterator(2));
  EXPECT_EQ(CountingIterator(7), CountingIterator(7));
  ++it;
  EXPECT_EQ(*it, 11);
  --it;
  EXPECT_EQ(*it, 10);
  it += 4;
  EXPECT_EQ(*it, 14);
  it -= 4;
  EXPECT_EQ(*it, 10);
  EXPECT_EQ(*it++, 10);
  EXPECT_EQ(*it--, 11);
  EXPECT_EQ(*it, 10);
}

static_assert(std::random_access_iterator<CountingIterator>);

TEST(PstlForEach, SequencedVisitsInOrder) {
  std::vector<std::int64_t> seen;
  pstl::for_each(pstl::seq, CountingIterator(0), CountingIterator(10),
                 [&](std::int64_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(PstlForEach, ParallelVisitsEveryIndexOnce) {
  constexpr std::int64_t n = 50000;
  std::vector<std::atomic<int>> hits(n);
  pstl::for_each(pstl::par, CountingIterator(0), CountingIterator(n),
                 [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(PstlForEachN, ReturnsAdvancedIterator) {
  std::atomic<std::int64_t> sum{0};
  const auto end = pstl::for_each_n(pstl::par, CountingIterator(5), 10,
                                    [&](std::int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(*end, 15);
  EXPECT_EQ(sum.load(), 5 + 6 + 7 + 8 + 9 + 10 + 11 + 12 + 13 + 14);
}

TEST(PstlTransformReduce, SequencedMatchesClosedForm) {
  const auto sum = pstl::transform_reduce(
      pstl::seq, CountingIterator(0), CountingIterator(101), std::int64_t{0},
      std::plus<>{}, [](std::int64_t i) { return i; });
  EXPECT_EQ(sum, 5050);
}

TEST(PstlTransformReduce, ParallelMatchesSequenced) {
  auto square = [](std::int64_t i) { return static_cast<double>(i) * i; };
  const double seq_sum = pstl::transform_reduce(
      pstl::seq, CountingIterator(0), CountingIterator(10000), 0.0,
      std::plus<>{}, square);
  const double par_sum = pstl::transform_reduce(
      pstl::par, CountingIterator(0), CountingIterator(10000), 0.0,
      std::plus<>{}, square);
  EXPECT_NEAR(par_sum, seq_sum, 1e-6 * seq_sum);
}

TEST(PstlTransformReduce, EmptyRangeReturnsInit) {
  const double r = pstl::transform_reduce(
      pstl::par, CountingIterator(5), CountingIterator(5), 7.5,
      std::plus<>{}, [](std::int64_t) { return 1.0; });
  EXPECT_DOUBLE_EQ(r, 7.5);
}

TEST(PstlForEach, EmptyRangeNoop) {
  bool called = false;
  pstl::for_each(pstl::par, CountingIterator(3), CountingIterator(3),
                 [&](std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace gaia::backends
