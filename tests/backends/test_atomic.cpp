#include "backends/atomic.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gaia::backends {
namespace {

TEST(Atomic, RmwAccumulatesSingleThread) {
  double x = 1.0;
  atomic_add_rmw(x, 2.5);
  EXPECT_DOUBLE_EQ(x, 3.5);
}

TEST(Atomic, CasAccumulatesSingleThread) {
  double x = 1.0;
  atomic_add_cas(x, 2.5);
  EXPECT_DOUBLE_EQ(x, 3.5);
}

TEST(Atomic, DispatchSelectsMode) {
  double a = 0, b = 0;
  atomic_add(a, 1.0, AtomicMode::kNativeRmw);
  atomic_add(b, 1.0, AtomicMode::kCasLoop);
  EXPECT_DOUBLE_EQ(a, 1.0);
  EXPECT_DOUBLE_EQ(b, 1.0);
}

class AtomicContention : public ::testing::TestWithParam<AtomicMode> {};

TEST_P(AtomicContention, NoLostUpdatesUnderContention) {
  // Many threads hammering one double: the sum of integer-valued addends
  // is exact in double, so any lost update is detectable.
  const AtomicMode mode = GetParam();
  double target = 0.0;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&target, mode] {
      for (int i = 0; i < kAddsPerThread; ++i) atomic_add(target, 1.0, mode);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(target, static_cast<double>(kThreads) * kAddsPerThread);
}

TEST_P(AtomicContention, ScatteredTargetsStayIndependent) {
  const AtomicMode mode = GetParam();
  std::vector<double> targets(64, 0.0);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&targets, mode, t] {
      for (int rep = 0; rep < 1000; ++rep)
        for (std::size_t i = 0; i < targets.size(); ++i)
          atomic_add(targets[i], static_cast<double>(t + 1), mode);
    });
  }
  for (auto& t : threads) t.join();
  // Each slot received sum(1..4) * 1000 = 10000.
  for (double v : targets) EXPECT_DOUBLE_EQ(v, 10000.0);
}

INSTANTIATE_TEST_SUITE_P(BothLowerings, AtomicContention,
                         ::testing::Values(AtomicMode::kNativeRmw,
                                           AtomicMode::kCasLoop),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(Atomic, ToStringNames) {
  EXPECT_EQ(to_string(AtomicMode::kNativeRmw), "rmw");
  EXPECT_EQ(to_string(AtomicMode::kCasLoop), "cas");
}

}  // namespace
}  // namespace gaia::backends
