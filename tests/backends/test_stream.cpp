#include "backends/stream.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace gaia::backends {
namespace {

TEST(Stream, ExecutesTasksInFifoOrder) {
  Stream s;
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    s.enqueue([&order, i] { order.push_back(i); });
  }
  s.synchronize();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Stream, SynchronizeWaitsForInFlightTask) {
  Stream s;
  std::atomic<bool> finished{false};
  s.enqueue([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    finished.store(true);
  });
  s.synchronize();
  EXPECT_TRUE(finished.load());
}

TEST(Stream, SynchronizeOnIdleStreamReturnsImmediately) {
  Stream s;
  s.synchronize();  // must not hang
  EXPECT_EQ(s.completed(), 0u);
}

TEST(Stream, CompletedCounterAdvances) {
  Stream s;
  for (int i = 0; i < 5; ++i) s.enqueue([] {});
  s.synchronize();
  EXPECT_EQ(s.completed(), 5u);
}

TEST(Stream, TasksRunOffCallerThread) {
  Stream s;
  std::thread::id worker_id;
  s.enqueue([&] { worker_id = std::this_thread::get_id(); });
  s.synchronize();
  EXPECT_NE(worker_id, std::this_thread::get_id());
}

TEST(Stream, MultipleStreamsOverlap) {
  // Two streams each sleeping 50 ms should finish in well under 100 ms
  // when truly concurrent.
  Stream s1, s2;
  const auto t0 = std::chrono::steady_clock::now();
  s1.enqueue([] { std::this_thread::sleep_for(std::chrono::milliseconds(50)); });
  s2.enqueue([] { std::this_thread::sleep_for(std::chrono::milliseconds(50)); });
  s1.synchronize();
  s2.synchronize();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_LT(ms, 95.0);
}

TEST(Stream, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    Stream s;
    for (int i = 0; i < 10; ++i) s.enqueue([&] { ran.fetch_add(1); });
  }  // destructor joins after draining
  EXPECT_EQ(ran.load(), 10);
}

TEST(Event, RecordsAfterPriorTasks) {
  Stream s;
  std::atomic<bool> task_done{false};
  Event e;
  s.enqueue([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    task_done.store(true);
  });
  s.record(e);
  e.wait();
  EXPECT_TRUE(task_done.load());
  EXPECT_TRUE(e.query());
}

TEST(Event, QueryBeforeSignalIsFalse) {
  Event e;
  EXPECT_FALSE(e.query());
}

TEST(Event, CrossStreamWait) {
  Stream producer, consumer;
  Event ready;
  std::atomic<int> value{0};
  producer.enqueue([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    value.store(42);
  });
  producer.record(ready);
  std::atomic<int> observed{-1};
  consumer.enqueue([&] {
    ready.wait();
    observed.store(value.load());
  });
  consumer.synchronize();
  EXPECT_EQ(observed.load(), 42);
}

}  // namespace
}  // namespace gaia::backends
