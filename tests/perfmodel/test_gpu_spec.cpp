#include "perfmodel/gpu_spec.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gaia::perfmodel {
namespace {

TEST(GpuSpec, FivePlatformsWithUniqueNames) {
  EXPECT_EQ(all_platforms().size(), 5u);
  std::set<std::string> names;
  for (Platform p : all_platforms()) names.insert(to_string(p));
  EXPECT_EQ(names.size(), 5u);
}

TEST(GpuSpec, ParseRoundTrip) {
  for (Platform p : all_platforms()) {
    const auto parsed = parse_platform(to_string(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_EQ(parse_platform("mi250x"), Platform::kMi250x);  // case-insensitive
  EXPECT_FALSE(parse_platform("RTX4090").has_value());
}

TEST(GpuSpec, VendorsMatchPaper) {
  EXPECT_EQ(gpu_spec(Platform::kT4).vendor, Vendor::kNvidia);
  EXPECT_EQ(gpu_spec(Platform::kV100).vendor, Vendor::kNvidia);
  EXPECT_EQ(gpu_spec(Platform::kA100).vendor, Vendor::kNvidia);
  EXPECT_EQ(gpu_spec(Platform::kH100).vendor, Vendor::kNvidia);
  EXPECT_EQ(gpu_spec(Platform::kMi250x).vendor, Vendor::kAmd);
}

TEST(GpuSpec, MemoryCapacitiesGateTheProblemSizesLikeThePaper) {
  // 10 GB on all, 30 GB on all but T4, 60 GB only H100 + MI250X.
  EXPECT_LT(gpu_spec(Platform::kT4).mem_capacity_gb, 30.0);
  EXPECT_GE(gpu_spec(Platform::kV100).mem_capacity_gb, 32.0);
  EXPECT_LT(gpu_spec(Platform::kV100).mem_capacity_gb, 60.0);
  EXPECT_LT(gpu_spec(Platform::kA100).mem_capacity_gb, 60.0);
  EXPECT_GE(gpu_spec(Platform::kH100).mem_capacity_gb, 60.0);
  EXPECT_GE(gpu_spec(Platform::kMi250x).mem_capacity_gb, 60.0);
}

TEST(GpuSpec, BandwidthOrderingMatchesGenerations) {
  EXPECT_LT(gpu_spec(Platform::kT4).peak_bw_gbs,
            gpu_spec(Platform::kV100).peak_bw_gbs);
  EXPECT_LT(gpu_spec(Platform::kV100).peak_bw_gbs,
            gpu_spec(Platform::kA100).peak_bw_gbs);
  EXPECT_LT(gpu_spec(Platform::kA100).peak_bw_gbs,
            gpu_spec(Platform::kH100).peak_bw_gbs);
}

TEST(GpuSpec, Mi250xHasLowSpmvEfficiency) {
  // The paper's diagnosis: noncoalesced accesses hit MI250X much harder
  // than the NVIDIA parts for these kernels (SV-B).
  const double amd = gpu_spec(Platform::kMi250x).spmv_bw_efficiency;
  for (Platform p : all_platforms()) {
    if (p == Platform::kMi250x) continue;
    EXPECT_LT(amd, gpu_spec(p).spmv_bw_efficiency);
  }
}

TEST(GpuSpec, PreferredThreadsMatchPaperTuning) {
  // "the number of threads that give best performance is 32" on T4/V100,
  // while 256 "efficiently optimizes ... on H100 and A100" (SV-B).
  EXPECT_EQ(gpu_spec(Platform::kT4).preferred_threads, 32);
  EXPECT_EQ(gpu_spec(Platform::kV100).preferred_threads, 32);
  EXPECT_EQ(gpu_spec(Platform::kA100).preferred_threads, 256);
  EXPECT_EQ(gpu_spec(Platform::kH100).preferred_threads, 256);
}

TEST(GpuSpec, SaneLatenciesAndLanes) {
  for (Platform p : all_platforms()) {
    const GpuSpec& s = gpu_spec(p);
    EXPECT_GT(s.launch_overhead_us, 0.0);
    EXPECT_LT(s.launch_overhead_us, 100.0);
    EXPECT_GT(s.max_concurrent_lanes, 1024);
    EXPECT_GT(s.atomic_rmw_ns, 0.0);
    EXPECT_GT(s.atomic_cas_retry, 1.0);
  }
}

}  // namespace
}  // namespace gaia::perfmodel
