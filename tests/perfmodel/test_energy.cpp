#include "perfmodel/energy.hpp"

#include <gtest/gtest.h>

#include "metrics/pennycook.hpp"

namespace gaia::perfmodel {
namespace {

byte_size gb(double g) { return static_cast<byte_size>(g * kGiB); }

TEST(PowerSpec, SaneForAllPlatforms) {
  for (Platform p : all_platforms()) {
    const PowerSpec& s = power_spec(p);
    EXPECT_GT(s.tdp_w, s.idle_w) << to_string(p);
    EXPECT_GT(s.idle_w, 0.0) << to_string(p);
    EXPECT_GT(s.mem_bound_utilization, 0.0) << to_string(p);
    EXPECT_LE(s.mem_bound_utilization, 1.0) << to_string(p);
  }
}

TEST(EnergyModel, EnergyIsPowerTimesTime) {
  const EnergyModel model;
  const auto r = model.evaluate(Framework::kHip, Platform::kH100, gb(10));
  ASSERT_TRUE(r.supported);
  EXPECT_NEAR(r.energy_per_iteration_j, r.avg_power_w * r.iteration_s,
              1e-12);
  EXPECT_NEAR(r.energy_per_run_j, r.energy_per_iteration_j * 100, 1e-9);
  const PowerSpec& s = power_spec(Platform::kH100);
  EXPECT_GT(r.avg_power_w, s.idle_w);
  EXPECT_LT(r.avg_power_w, s.tdp_w);
}

TEST(EnergyModel, UnsupportedCellsStayUnsupported) {
  const EnergyModel model;
  const auto r = model.evaluate(Framework::kCuda, Platform::kMi250x, gb(10));
  EXPECT_FALSE(r.supported);
  EXPECT_DOUBLE_EQ(r.energy_per_run_j, 0.0);
}

TEST(EnergyModel, NewerGpusAreFasterButNotAlwaysGreener) {
  // H100 pulls far more power than T4: time improves monotonically, but
  // energy-to-solution need not — exactly why the green-computing
  // milestones are tracked separately from the speed ones.
  const EnergyModel model;
  const auto t4 = model.evaluate(Framework::kCuda, Platform::kT4, gb(10));
  const auto h100 = model.evaluate(Framework::kCuda, Platform::kH100, gb(10));
  EXPECT_LT(h100.iteration_s, t4.iteration_s);
  EXPECT_GT(h100.avg_power_w, t4.avg_power_w);
}

TEST(EnergyModel, SlowFrameworksBurnMoreEnergyOnTheSamePlatform) {
  // Same device power profile: energy ordering equals time ordering.
  const EnergyModel model;
  const auto hip = model.evaluate(Framework::kHip, Platform::kMi250x, gb(10));
  const auto omp_llvm =
      model.evaluate(Framework::kOmpLlvm, Platform::kMi250x, gb(10));
  EXPECT_GT(omp_llvm.energy_per_run_j, hip.energy_per_run_j);
  EXPECT_NEAR(omp_llvm.energy_per_run_j / hip.energy_per_run_j,
              omp_llvm.iteration_s / hip.iteration_s, 1e-9);
}

TEST(EnergyModel, CampaignMatrixFeedsPennycookAnalysis) {
  const EnergyModel model;
  const auto platforms = platforms_for_size(gb(10));
  const auto m = model.energy_campaign(gb(10), all_frameworks(), platforms);
  EXPECT_FALSE(m.supported(m.app_index("CUDA"),
                           m.platform_index("MI250X")));
  const auto p = metrics::pennycook_scores(m);
  // Energy-portability: HIP stays strong, CUDA zero over the full set.
  EXPECT_DOUBLE_EQ(p[m.app_index("CUDA")], 0.0);
  EXPECT_GT(p[m.app_index("HIP")], 0.75);
}

TEST(EnergyModel, EnergyEfficiencyDiffersFromTimeEfficiency) {
  // The energy-best platform is not necessarily the time-best platform
  // for a given framework (power profiles reorder the cascade).
  const EnergyModel model;
  PlatformSimulator sim;
  double best_time = 1e30, best_energy = 1e30;
  Platform time_platform{}, energy_platform{};
  for (Platform p : platforms_for_size(gb(10))) {
    const auto r = model.evaluate(Framework::kHip, p, gb(10));
    if (!r.supported) continue;
    if (r.iteration_s < best_time) {
      best_time = r.iteration_s;
      time_platform = p;
    }
    if (r.energy_per_run_j < best_energy) {
      best_energy = r.energy_per_run_j;
      energy_platform = p;
    }
  }
  EXPECT_EQ(time_platform, Platform::kH100);
  // On energy the 70 W T4 competes with the 700 W H100 despite being
  // ~11x slower.
  EXPECT_NE(energy_platform, Platform::kV100);
}

}  // namespace
}  // namespace gaia::perfmodel
