#include "perfmodel/framework.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gaia::perfmodel {
namespace {

TEST(Framework, EightCombinationsWithUniqueNames) {
  EXPECT_EQ(all_frameworks().size(), 8u);
  std::set<std::string> names;
  for (Framework f : all_frameworks()) names.insert(to_string(f));
  EXPECT_EQ(names.size(), 8u);
}

TEST(Framework, ParseRoundTrip) {
  for (Framework f : all_frameworks()) {
    const auto parsed = parse_framework(to_string(f));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, f);
  }
  EXPECT_EQ(parse_framework("sycl+acpp"), Framework::kSyclAcpp);
  EXPECT_FALSE(parse_framework("OpenCL").has_value());
}

TEST(Framework, CudaIsNvidiaOnly) {
  const auto& t = framework_traits(Framework::kCuda);
  EXPECT_TRUE(t.runs_on(Vendor::kNvidia));
  EXPECT_FALSE(t.runs_on(Vendor::kAmd));
  for (Framework f : all_frameworks()) {
    if (f == Framework::kCuda) continue;
    EXPECT_TRUE(framework_traits(f).runs_on(Vendor::kAmd)) << to_string(f);
    EXPECT_TRUE(framework_traits(f).runs_on(Vendor::kNvidia)) << to_string(f);
  }
}

TEST(Framework, PstlIsTheOnlyUntunableFamily) {
  for (Framework f : all_frameworks()) {
    const auto& t = framework_traits(f);
    const bool is_pstl =
        f == Framework::kPstlAcpp || f == Framework::kPstlVendor;
    EXPECT_EQ(t.tunable, !is_pstl) << to_string(f);
    if (is_pstl) {
      EXPECT_EQ(t.fixed_threads, 256);     // nsys observation (SV-B)
      EXPECT_FALSE(t.supports_streams);
    }
  }
}

TEST(Framework, AtomicLoweringMatchesPaper) {
  // Everything is native RMW on NVIDIA.
  for (Framework f : all_frameworks())
    EXPECT_EQ(atomic_lowering(f, Vendor::kNvidia), AtomicMode::kNativeRmw)
        << to_string(f);
  // On AMD, base clang OpenMP and DPC++ fall back to CAS loops (SV-B).
  EXPECT_EQ(atomic_lowering(Framework::kOmpLlvm, Vendor::kAmd),
            AtomicMode::kCasLoop);
  EXPECT_EQ(atomic_lowering(Framework::kSyclDpcpp, Vendor::kAmd),
            AtomicMode::kCasLoop);
  EXPECT_EQ(atomic_lowering(Framework::kHip, Vendor::kAmd),
            AtomicMode::kNativeRmw);
  EXPECT_EQ(atomic_lowering(Framework::kOmpVendor, Vendor::kAmd),
            AtomicMode::kNativeRmw);
  EXPECT_EQ(atomic_lowering(Framework::kPstlAcpp, Vendor::kAmd),
            AtomicMode::kNativeRmw);
}

TEST(Framework, CompilerInfoTranscribesPaperTables) {
  EXPECT_EQ(compiler_info(Framework::kCuda, Vendor::kNvidia).compiler,
            "nvcc");
  EXPECT_EQ(compiler_info(Framework::kOmpVendor, Vendor::kNvidia).compiler,
            "nvc++");
  EXPECT_EQ(compiler_info(Framework::kOmpVendor, Vendor::kAmd).compiler,
            "amdclang++");
  const auto hip_amd = compiler_info(Framework::kHip, Vendor::kAmd);
  EXPECT_NE(hip_amd.flags.find("-munsafe-fp-atomics"), std::string::npos);
  const auto dpcpp_amd = compiler_info(Framework::kSyclDpcpp, Vendor::kAmd);
  EXPECT_EQ(dpcpp_amd.flags.find("-munsafe-fp-atomics"), std::string::npos);
}

TEST(Framework, SizeClassesPartitionTheStudySizes) {
  EXPECT_EQ(size_class_of(10.0), 0);
  EXPECT_EQ(size_class_of(30.0), 1);
  EXPECT_EQ(size_class_of(60.0), 2);
  EXPECT_EQ(size_class_of(1.0), 0);
  EXPECT_EQ(size_class_of(100.0), 2);
}

TEST(Framework, ResidualsAreInUnitRange) {
  for (Framework f : all_frameworks()) {
    for (Platform p : all_platforms()) {
      for (int s = 0; s < 3; ++s) {
        const double r = residual_efficiency(f, p, s);
        EXPECT_GT(r, 0.0) << to_string(f) << "/" << to_string(p);
        EXPECT_LE(r, 1.0) << to_string(f) << "/" << to_string(p);
      }
    }
  }
  EXPECT_THROW((void)residual_efficiency(Framework::kCuda, Platform::kT4, 3),
               gaia::Error);
}

TEST(Framework, ExecutionPlansFollowTraits) {
  const GpuSpec& h100 = gpu_spec(Platform::kH100);
  const GpuSpec& mi = gpu_spec(Platform::kMi250x);

  const auto cuda = execution_plan(Framework::kCuda, h100);
  EXPECT_TRUE(cuda.use_streams);
  EXPECT_EQ(cuda.atomic_mode, AtomicMode::kNativeRmw);

  const auto pstl = execution_plan(Framework::kPstlAcpp, h100);
  EXPECT_FALSE(pstl.use_streams);
  // Every kernel gets the same fixed 256-thread shape.
  for (int k = 0; k < backends::kNumKernels; ++k)
    EXPECT_EQ(pstl.tuning.get(static_cast<KernelId>(k)).threads, 256);

  const auto omp_llvm = execution_plan(Framework::kOmpLlvm, mi);
  EXPECT_EQ(omp_llvm.atomic_mode, AtomicMode::kCasLoop);
}

}  // namespace
}  // namespace gaia::perfmodel
