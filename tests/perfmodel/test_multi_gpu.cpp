#include "perfmodel/multi_gpu.hpp"

#include <gtest/gtest.h>

namespace gaia::perfmodel {
namespace {

MultiGpuModel a100_model() {
  return MultiGpuModel(gpu_spec(Platform::kA100), leonardo_interconnect());
}

ExecutionPlan tuned_plan(Platform p) {
  ExecutionPlan plan;
  plan.tuning = KernelCostModel(gpu_spec(p)).tuned_table();
  return plan;
}

TEST(Allreduce, SingleRankIsFree) {
  EXPECT_DOUBLE_EQ(a100_model().allreduce_seconds(1e9, 1), 0.0);
}

TEST(Allreduce, GrowsWithPayload) {
  const auto m = a100_model();
  EXPECT_LT(m.allreduce_seconds(1e6, 4), m.allreduce_seconds(1e9, 4));
}

TEST(Allreduce, InterNodeSlowerThanIntraNode) {
  const auto m = a100_model();
  // 4 ranks fit one Leonardo-like node; 8 ranks cross nodes.
  const double intra = m.allreduce_seconds(1e9, 4);
  const double inter = m.allreduce_seconds(1e9, 8);
  EXPECT_GT(inter, intra * 2);
}

TEST(Allreduce, RingPayloadFactorConvergesToTwo) {
  const auto m = a100_model();
  // For large N at fixed per-link bandwidth, payload time -> 2*bytes/bw.
  const double bytes = 1e9;
  const double t = m.allreduce_seconds(bytes, 256);
  const double bw = leonardo_interconnect().internode_bw_gbs * 1e9;
  EXPECT_GT(t, 2.0 * bytes / bw);          // at least the payload term
  EXPECT_LT(t, 2.0 * bytes / bw * 1.5 +
                   2 * 255 * leonardo_interconnect().internode_latency_us *
                       1e-6 * 1.01);
}

TEST(StrongScaling, ComputeShrinksCommunicationGrows) {
  const auto m = a100_model();
  const auto shape = ProblemShape::from_footprint(10 * kGiB);
  const auto points =
      m.strong_scaling(shape, tuned_plan(Platform::kA100), 64);
  ASSERT_GE(points.size(), 6u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].compute_s, points[i - 1].compute_s);
    EXPECT_GE(points[i].allreduce_s, points[i - 1].allreduce_s - 1e-9);
  }
  EXPECT_DOUBLE_EQ(points[0].efficiency, 1.0);
}

TEST(StrongScaling, EfficiencyDecaysButStaysPositive) {
  const auto m = a100_model();
  const auto shape = ProblemShape::from_footprint(10 * kGiB);
  const auto points =
      m.strong_scaling(shape, tuned_plan(Platform::kA100), 256);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].efficiency, points[i - 1].efficiency + 1e-9);
    EXPECT_GT(points[i].efficiency, 0.0);
  }
  // At some rank count communication dominates: efficiency below 0.9.
  EXPECT_LT(points.back().efficiency, 0.9);
}

TEST(WeakScaling, HighAtModerateRankCountsThenReplicationBites) {
  // The allreduce payload is small, so weak scaling starts near-flat;
  // what eventually decays it is the *replicated* unknown-space vector
  // work (x, v, w are full-length on every rank, as in production), a
  // real property of the replicated-x design.
  const auto m = a100_model();
  const auto per_rank = ProblemShape::from_footprint(4 * kGiB);
  const auto points =
      m.weak_scaling(per_rank, tuned_plan(Platform::kA100), 256);
  EXPECT_DOUBLE_EQ(points.front().efficiency, 1.0);
  EXPECT_GT(points[3].efficiency, 0.85);  // 8 ranks
  EXPECT_GT(points[5].efficiency, 0.60);  // 32 ranks
  for (std::size_t i = 1; i < points.size(); ++i)
    EXPECT_LE(points[i].efficiency, points[i - 1].efficiency + 1e-9);
}

TEST(WeakScaling, ProductionRowToUnknownRatioScalesFurther) {
  // The companion study sustained 256 Leonardo nodes: production has
  // O(1000) observations per star, so the replicated-vector share is far
  // smaller. Model the same effect by comparing two per-rank shapes with
  // different row/unknown ratios.
  const auto m = a100_model();
  ProblemShape skinny = ProblemShape::from_footprint(4 * kGiB);
  ProblemShape production_like = skinny;
  production_like.n_stars = skinny.n_stars / 20;          // 20x fewer
  production_like.n_astro_params = skinny.n_astro_params / 20;  // unknowns
  const auto plan = tuned_plan(Platform::kA100);
  const auto eff_skinny = m.weak_scaling(skinny, plan, 256).back().efficiency;
  const auto eff_prod =
      m.weak_scaling(production_like, plan, 256).back().efficiency;
  EXPECT_GT(eff_prod, eff_skinny * 1.5);
  EXPECT_GT(eff_prod, 0.5);
}

TEST(WeakScaling, IterationTimeBoundedByComputePlusComm) {
  const auto m = a100_model();
  const auto per_rank = ProblemShape::from_footprint(2 * kGiB);
  const auto points =
      m.weak_scaling(per_rank, tuned_plan(Platform::kA100), 32);
  for (const auto& p : points) {
    EXPECT_NEAR(p.iteration_s, p.compute_s + p.allreduce_s, 1e-12);
    EXPECT_GT(p.compute_s, 0.0);
  }
}

TEST(MultiGpu, RejectsBadRankCounts) {
  const auto m = a100_model();
  const auto shape = ProblemShape::from_footprint(kGiB);
  EXPECT_THROW((void)m.allreduce_seconds(1e6, 0), gaia::Error);
  EXPECT_THROW((void)m.iteration_seconds(shape,
                                          tuned_plan(Platform::kA100), 0),
               gaia::Error);
}

TEST(MultiGpu, InterconnectPresetsAreDistinct) {
  EXPECT_NE(leonardo_interconnect().name, setonix_interconnect().name);
  EXPECT_GT(leonardo_interconnect().bw_gbs, 0);
  EXPECT_GT(setonix_interconnect().ranks_per_node,
            leonardo_interconnect().ranks_per_node - 8);
}

}  // namespace
}  // namespace gaia::perfmodel
