#include "perfmodel/simulator.hpp"

#include <gtest/gtest.h>

#include "metrics/pennycook.hpp"

namespace gaia::perfmodel {
namespace {

byte_size gb(double g) { return static_cast<byte_size>(g * kGiB); }

double p_score(const metrics::PerformanceMatrix& m, Framework f) {
  return metrics::pennycook_scores(m)[m.app_index(to_string(f))];
}

double eff_of(const metrics::PerformanceMatrix& m, Framework f,
              Platform p) {
  const auto eff = metrics::application_efficiency(m);
  return eff[m.app_index(to_string(f))][m.platform_index(to_string(p))];
}

class Campaign {
 public:
  explicit Campaign(double gigabytes)
      : matrix_(PlatformSimulator().measure_campaign(
            gb(gigabytes), all_frameworks(),
            platforms_for_size(gb(gigabytes)))) {}
  const metrics::PerformanceMatrix& matrix() const { return matrix_; }

 private:
  metrics::PerformanceMatrix matrix_;
};

TEST(Simulator, PlatformSetsPerSizeMatchPaper) {
  EXPECT_EQ(platforms_for_size(gb(10)).size(), 5u);
  const auto p30 = platforms_for_size(gb(30));
  EXPECT_EQ(p30.size(), 4u);  // all but T4
  EXPECT_EQ(std::count(p30.begin(), p30.end(), Platform::kT4), 0);
  const auto p60 = platforms_for_size(gb(60));
  ASSERT_EQ(p60.size(), 2u);  // only H100 and MI250X
  EXPECT_EQ(p60[0], Platform::kH100);
  EXPECT_EQ(p60[1], Platform::kMi250x);
}

TEST(Simulator, CudaUnsupportedOnAmdWithReason) {
  PlatformSimulator sim;
  const auto reason =
      sim.unsupported_reason(Framework::kCuda, Platform::kMi250x, gb(10));
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("toolchain"), std::string::npos);
  EXPECT_FALSE(
      sim.unsupported_reason(Framework::kHip, Platform::kMi250x, gb(10)));
}

TEST(Simulator, CapacityRejectionNamesTheDevice) {
  PlatformSimulator sim;
  const auto reason =
      sim.unsupported_reason(Framework::kCuda, Platform::kT4, gb(30));
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("T4"), std::string::npos);
}

TEST(Simulator, RunProducesJitteredSamplesAroundModel) {
  PlatformSimulator sim;
  const auto r = sim.run(Framework::kHip, Platform::kH100, gb(10));
  ASSERT_TRUE(r.supported);
  EXPECT_EQ(r.iteration_samples.size(), 300u);  // 100 iters x 3 reps
  const double model =
      sim.model_iteration_seconds(Framework::kHip, Platform::kH100, gb(10));
  EXPECT_NEAR(r.mean_iteration_s, model, model * 0.02);
  EXPECT_GT(r.stddev_iteration_s, 0.0);
  EXPECT_LT(r.stddev_iteration_s, model * 0.05);
}

TEST(Simulator, RunsAreDeterministic) {
  PlatformSimulator sim;
  const auto a = sim.run(Framework::kSyclAcpp, Platform::kV100, gb(10));
  const auto b = sim.run(Framework::kSyclAcpp, Platform::kV100, gb(10));
  EXPECT_EQ(a.mean_iteration_s, b.mean_iteration_s);
}

TEST(Simulator, UnsupportedCellsCarryReasonAndNoSamples) {
  PlatformSimulator sim;
  const auto r = sim.run(Framework::kCuda, Platform::kMi250x, gb(10));
  EXPECT_FALSE(r.supported);
  EXPECT_FALSE(r.unsupported_reason.empty());
  EXPECT_TRUE(r.iteration_samples.empty());
}

// ---- paper-shape acceptance (DESIGN.md section 6) --------------------------

TEST(PaperShape, Fig3a_10GB_PortabilityScores) {
  const Campaign c(10);
  // HIP ~0.98, best overall.
  const double p_hip = p_score(c.matrix(), Framework::kHip);
  EXPECT_GT(p_hip, 0.93);
  for (Framework f : all_frameworks())
    EXPECT_GE(p_hip, p_score(c.matrix(), f)) << to_string(f);
  // SYCL+ACPP ~0.92.
  const double p_sycl = p_score(c.matrix(), Framework::kSyclAcpp);
  EXPECT_GT(p_sycl, 0.88);
  EXPECT_LT(p_sycl, p_hip);
  // CUDA: zero over the full set, ~0.97 NVIDIA-only.
  EXPECT_DOUBLE_EQ(p_score(c.matrix(), Framework::kCuda), 0.0);
  const auto p_nv = metrics::pennycook_scores(c.matrix(),
                                              nvidia_platform_names());
  EXPECT_NEAR(p_nv[c.matrix().app_index("CUDA")], 0.97, 0.02);
  // OMP+LLVM is the worst non-zero score (~0.25).
  const double p_ompllvm = p_score(c.matrix(), Framework::kOmpLlvm);
  EXPECT_GT(p_ompllvm, 0.15);
  EXPECT_LT(p_ompllvm, 0.40);
  for (Framework f : all_frameworks()) {
    if (f == Framework::kCuda || f == Framework::kOmpLlvm) continue;
    EXPECT_GT(p_score(c.matrix(), f), p_ompllvm) << to_string(f);
  }
}

TEST(PaperShape, Fig3b_30GB_SyclOvertakesHip) {
  const Campaign c(30);
  const double p_hip = p_score(c.matrix(), Framework::kHip);
  const double p_sycl = p_score(c.matrix(), Framework::kSyclAcpp);
  EXPECT_GT(p_sycl, p_hip);          // the paper's 0.93 vs 0.88 flip
  EXPECT_NEAR(p_hip, 0.88, 0.05);
  EXPECT_NEAR(p_sycl, 0.93, 0.04);
  const auto p_nv = metrics::pennycook_scores(
      c.matrix(), {"V100", "A100", "H100"});
  EXPECT_GT(p_nv[c.matrix().app_index("CUDA")], 0.94);
}

TEST(PaperShape, Fig3c_60GB_TwoPlatformScoresAreHigh) {
  const Campaign c(60);
  EXPECT_EQ(c.matrix().n_platforms(), 2u);
  // More frameworks score high due to the small platform set.
  int high = 0, decent = 0;
  for (Framework f : all_frameworks()) {
    if (f == Framework::kCuda) continue;
    if (p_score(c.matrix(), f) > 0.88) ++high;
    if (p_score(c.matrix(), f) > 0.60) ++decent;
  }
  EXPECT_GE(high, 3);    // HIP, SYCL+ACPP, OMP+V
  EXPECT_GE(decent, 5);  // plus DPC++ and at least one PSTL
}

TEST(PaperShape, Fig4_IterationTimeOrderings) {
  const Campaign c(10);
  const auto& m = c.matrix();
  auto t = [&](Framework f, Platform p) {
    return m.time(m.app_index(to_string(f)),
                  m.platform_index(to_string(p)));
  };
  // Newer NVIDIA platforms are strictly faster (for a fixed framework).
  for (Framework f : all_frameworks()) {
    if (f == Framework::kCuda) continue;
    EXPECT_GT(t(f, Platform::kT4), t(f, Platform::kV100)) << to_string(f);
    EXPECT_GT(t(f, Platform::kV100), t(f, Platform::kA100)) << to_string(f);
    EXPECT_GT(t(f, Platform::kA100), t(f, Platform::kH100)) << to_string(f);
  }
  // MI250X sits behind A100/H100 despite its bandwidth (paper SV-B).
  EXPECT_GT(t(Framework::kHip, Platform::kMi250x),
            t(Framework::kHip, Platform::kA100));
  // Fastest per platform: CUDA on T4/A100, HIP on V100/H100, OMP+V on
  // MI250X.
  auto best = [&](Platform p) {
    Framework arg = Framework::kCuda;
    double bt = 1e30;
    for (Framework f : all_frameworks()) {
      const auto a = m.app_index(to_string(f));
      const auto pi = m.platform_index(to_string(p));
      if (!m.supported(a, pi)) continue;
      if (m.time(a, pi) < bt) {
        bt = m.time(a, pi);
        arg = f;
      }
    }
    return arg;
  };
  EXPECT_EQ(best(Platform::kT4), Framework::kCuda);
  EXPECT_EQ(best(Platform::kV100), Framework::kHip);
  EXPECT_EQ(best(Platform::kA100), Framework::kCuda);
  EXPECT_EQ(best(Platform::kH100), Framework::kHip);
  EXPECT_EQ(best(Platform::kMi250x), Framework::kOmpVendor);
}

TEST(PaperShape, Fig5_PstlEfficiencyRisesAcrossGenerationsAndSagsOnAmd) {
  const Campaign c(10);
  const auto& m = c.matrix();
  const double t4 = eff_of(m, Framework::kPstlAcpp, Platform::kT4);
  const double v100 = eff_of(m, Framework::kPstlAcpp, Platform::kV100);
  const double a100 = eff_of(m, Framework::kPstlAcpp, Platform::kA100);
  const double h100 = eff_of(m, Framework::kPstlAcpp, Platform::kH100);
  const double mi = eff_of(m, Framework::kPstlAcpp, Platform::kMi250x);
  EXPECT_LT(t4, v100 + 0.05);
  EXPECT_LT(v100, a100);
  EXPECT_LT(a100, h100);
  EXPECT_NEAR(h100, 0.90, 0.05);  // "reaching 0.90 on H100"
  EXPECT_GT(mi, 0.40);            // "0.45-0.6 on MI250X"
  EXPECT_LT(mi, 0.62);
}

TEST(PaperShape, Fig5_OpenMpEfficienciesOnH100) {
  // OMP+V ~0.91 and OMP+LLVM ~0.84 of the best on H100 (SV-B).
  const Campaign c(10);
  EXPECT_NEAR(eff_of(c.matrix(), Framework::kOmpVendor, Platform::kH100),
              0.91, 0.04);
  EXPECT_NEAR(eff_of(c.matrix(), Framework::kOmpLlvm, Platform::kH100),
              0.84, 0.04);
}

TEST(PaperShape, Fig5_CasFrameworksCollapseOnMi250x) {
  const Campaign c(10);
  const auto& m = c.matrix();
  // CAS-emitting combinations sit far below the RMW ones on MI250X.
  const double omp_v = eff_of(m, Framework::kOmpVendor, Platform::kMi250x);
  const double omp_llvm = eff_of(m, Framework::kOmpLlvm, Platform::kMi250x);
  const double dpcpp = eff_of(m, Framework::kSyclDpcpp, Platform::kMi250x);
  const double hip = eff_of(m, Framework::kHip, Platform::kMi250x);
  EXPECT_LT(omp_llvm, 0.5 * omp_v);
  EXPECT_LT(dpcpp, 0.5 * hip);
  EXPECT_DOUBLE_EQ(omp_v, 1.0);  // best framework on MI250X
}

TEST(PaperShape, AveragePAcrossSizesMatchesAbstract) {
  // Abstract: HIP 0.94 average, SYCL+ACPP 0.93, PSTL+V 0.62.
  double hip = 0, sycl = 0, pstl_v = 0;
  for (double g : {10.0, 30.0, 60.0}) {
    const Campaign c(g);
    hip += p_score(c.matrix(), Framework::kHip) / 3;
    sycl += p_score(c.matrix(), Framework::kSyclAcpp) / 3;
    pstl_v += p_score(c.matrix(), Framework::kPstlVendor) / 3;
  }
  EXPECT_NEAR(hip, 0.94, 0.04);
  EXPECT_NEAR(sycl, 0.93, 0.04);
  EXPECT_NEAR(pstl_v, 0.62, 0.08);
}

}  // namespace
}  // namespace gaia::perfmodel
