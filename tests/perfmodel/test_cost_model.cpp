#include "perfmodel/cost_model.hpp"

#include <gtest/gtest.h>

namespace gaia::perfmodel {
namespace {

ProblemShape shape10() {
  return ProblemShape::from_footprint(10 * kGiB);
}

ExecutionPlan tuned_plan(const GpuSpec& spec) {
  ExecutionPlan plan;
  plan.tuning = KernelCostModel(spec).tuned_table();
  return plan;
}

TEST(ProblemShape, FootprintInversionIsConsistent) {
  for (double gb : {1.0, 10.0, 30.0, 60.0}) {
    const auto s =
        ProblemShape::from_footprint(static_cast<byte_size>(gb * kGiB));
    EXPECT_NEAR(s.gigabytes(), gb, gb * 0.02) << gb;
    EXPECT_GT(s.n_rows, 0);
    EXPECT_GT(s.n_stars, 0);
    EXPECT_EQ(s.n_astro_params, s.n_stars * kAstroParamsPerStar);
  }
}

TEST(ProblemShape, ScalesLinearlyInRows) {
  const auto a = ProblemShape::from_footprint(10 * kGiB);
  const auto b = ProblemShape::from_footprint(30 * kGiB);
  const double ratio = static_cast<double>(b.n_rows) /
                       static_cast<double>(a.n_rows);
  EXPECT_NEAR(ratio, 3.0, 0.05);
  // Secondary sections grow sublinearly.
  EXPECT_LT(static_cast<double>(b.n_att_params) /
                static_cast<double>(a.n_att_params),
            2.0);
}

TEST(CostModel, TrafficScalesWithRows) {
  const KernelCostModel model(gpu_spec(Platform::kA100));
  const auto small = ProblemShape::from_footprint(kGiB);
  const auto big = ProblemShape::from_footprint(10 * kGiB);
  for (int k = 0; k < backends::kNumKernels; ++k) {
    const auto id = static_cast<KernelId>(k);
    const double ratio = model.kernel_traffic_bytes(id, big) /
                         model.kernel_traffic_bytes(id, small);
    EXPECT_NEAR(ratio,
                static_cast<double>(big.n_rows) /
                    static_cast<double>(small.n_rows),
                0.01)
        << backends::to_string(id);
  }
}

TEST(CostModel, ShapeEfficiencyPeaksAtPreferredThreads) {
  const KernelCostModel model(gpu_spec(Platform::kV100));  // prefers 32
  EXPECT_DOUBLE_EQ(model.shape_efficiency({64, 32}), 1.0);
  EXPECT_LT(model.shape_efficiency({64, 256}), 1.0);
  EXPECT_LT(model.shape_efficiency({64, 1024}),
            model.shape_efficiency({64, 256}));
}

TEST(CostModel, PstlFixed256PenaltyMatchesPaperBand) {
  // ~0.6-0.7 of tuned bandwidth on the 32-preferring platforms (SV-B).
  for (Platform p : {Platform::kT4, Platform::kV100}) {
    const KernelCostModel model(gpu_spec(p));
    const double eff = model.shape_efficiency({256, 256});
    EXPECT_GT(eff, 0.55) << to_string(p);
    EXPECT_LT(eff, 0.80) << to_string(p);
  }
  // No penalty on the 256-preferring platforms.
  EXPECT_DOUBLE_EQ(
      KernelCostModel(gpu_spec(Platform::kH100)).shape_efficiency({256, 256}),
      1.0);
}

TEST(CostModel, LaneUtilizationSaturates) {
  const KernelCostModel model(gpu_spec(Platform::kA100));
  EXPECT_LT(model.lane_utilization({1, 32}), 0.2);
  EXPECT_DOUBLE_EQ(model.lane_utilization({1024, 256}), 1.0);
}

TEST(CostModel, CasAtomicsCostMoreThanRmw) {
  const KernelCostModel model(gpu_spec(Platform::kMi250x));
  const auto p = shape10();
  const KernelConfig cfg{32, 64};
  for (KernelId id : {KernelId::kAprod2Att, KernelId::kAprod2Instr}) {
    const double rmw =
        model.atomic_seconds(id, p, cfg, AtomicMode::kNativeRmw);
    const double cas = model.atomic_seconds(id, p, cfg, AtomicMode::kCasLoop);
    EXPECT_GT(cas, 10 * rmw) << backends::to_string(id);
  }
}

TEST(CostModel, AtomicFreeKernelsHaveZeroAtomicCost) {
  const KernelCostModel model(gpu_spec(Platform::kA100));
  const auto p = shape10();
  for (KernelId id :
       {KernelId::kAprod1Astro, KernelId::kAprod1Att, KernelId::kAprod1Instr,
        KernelId::kAprod1Glob, KernelId::kAprod2Astro}) {
    EXPECT_DOUBLE_EQ(
        model.atomic_seconds(id, p, {64, 64}, AtomicMode::kCasLoop), 0.0)
        << backends::to_string(id);
  }
}

TEST(CostModel, CasPenaltyGrowsWithConflictRatio) {
  // More lanes over the same columns -> more collisions -> pricier CAS.
  const KernelCostModel model(gpu_spec(Platform::kMi250x));
  const auto p = shape10();
  const double narrow = model.atomic_seconds(
      KernelId::kAprod2Instr, p, {16, 64}, AtomicMode::kCasLoop);
  const double wide = model.atomic_seconds(
      KernelId::kAprod2Instr, p, {1024, 256}, AtomicMode::kCasLoop);
  const double narrow_per_lane = narrow;
  (void)narrow_per_lane;
  // Total time should not improve when widening into heavy conflicts.
  EXPECT_GT(wide, narrow * 0.5);
}

TEST(CostModel, IterationTimeImprovesAcrossGenerations) {
  const auto p = shape10();
  double prev = 1e9;
  for (Platform plat : {Platform::kT4, Platform::kV100, Platform::kA100,
                        Platform::kH100}) {
    const KernelCostModel model(gpu_spec(plat));
    const double t = model.iteration_seconds(p, tuned_plan(gpu_spec(plat)));
    EXPECT_LT(t, prev) << to_string(plat);
    prev = t;
  }
}

TEST(CostModel, Mi250xSlowerThanA100DespiteHigherPeakBandwidth) {
  // The paper's headline MI250X observation (SV-B).
  const auto p = shape10();
  const double a100 = KernelCostModel(gpu_spec(Platform::kA100))
                          .iteration_seconds(p, tuned_plan(gpu_spec(Platform::kA100)));
  const double mi = KernelCostModel(gpu_spec(Platform::kMi250x))
                        .iteration_seconds(p, tuned_plan(gpu_spec(Platform::kMi250x)));
  EXPECT_GT(gpu_spec(Platform::kMi250x).peak_bw_gbs,
            gpu_spec(Platform::kA100).peak_bw_gbs);
  EXPECT_GT(mi, a100);
}

TEST(CostModel, StreamsNeverSlowDownAnIteration) {
  const auto p = shape10();
  for (Platform plat : all_platforms()) {
    const KernelCostModel model(gpu_spec(plat));
    ExecutionPlan with = tuned_plan(gpu_spec(plat));
    with.use_streams = true;
    ExecutionPlan without = with;
    without.use_streams = false;
    EXPECT_LE(model.iteration_seconds(p, with),
              model.iteration_seconds(p, without))
        << to_string(plat);
  }
}

TEST(CostModel, TuningBeatsNaiveShapesOnThreadSensitivePlatforms) {
  // Paper: up to 40% iteration-time reduction from tuning.
  const auto p = shape10();
  for (Platform plat : {Platform::kT4, Platform::kV100}) {
    const KernelCostModel model(gpu_spec(plat));
    ExecutionPlan tuned = tuned_plan(gpu_spec(plat));
    ExecutionPlan naive = tuned;
    naive.tuning = TuningTable::untuned({256, 256});
    naive.use_streams = false;
    const double t_tuned = model.iteration_seconds(p, tuned);
    const double t_naive = model.iteration_seconds(p, naive);
    EXPECT_GT(t_naive / t_tuned, 1.3) << to_string(plat);
    EXPECT_LT(t_naive / t_tuned, 3.0) << to_string(plat);
  }
}

TEST(CostModel, GlobalKernelsExcludedUnlessRequested) {
  const KernelCostModel model(gpu_spec(Platform::kH100));
  const auto p = shape10();
  ExecutionPlan base = tuned_plan(gpu_spec(Platform::kH100));
  base.solve_global = false;
  ExecutionPlan with_glob = base;
  with_glob.solve_global = true;
  EXPECT_GT(model.iteration_seconds(p, with_glob),
            model.iteration_seconds(p, base));
}

TEST(CostModel, FineGrainCoherenceCostsMoreEspeciallyWithCas) {
  // Paper SIV-b: hipMemAdvise coarse grain exists because fine grain
  // degraded the atomic-heavy kernels.
  const KernelCostModel model(gpu_spec(Platform::kMi250x));
  const auto p = shape10();
  ExecutionPlan plan = tuned_plan(gpu_spec(Platform::kMi250x));
  auto time_with = [&](AtomicMode mode, backends::CoherenceMode coh) {
    plan.atomic_mode = mode;
    plan.coherence = coh;
    return model.iteration_seconds(p, plan);
  };
  const double rmw_coarse =
      time_with(AtomicMode::kNativeRmw, backends::CoherenceMode::kCoarseGrain);
  const double rmw_fine =
      time_with(AtomicMode::kNativeRmw, backends::CoherenceMode::kFineGrain);
  const double cas_coarse =
      time_with(AtomicMode::kCasLoop, backends::CoherenceMode::kCoarseGrain);
  const double cas_fine =
      time_with(AtomicMode::kCasLoop, backends::CoherenceMode::kFineGrain);
  EXPECT_GT(rmw_fine, rmw_coarse);
  EXPECT_GT(cas_fine, cas_coarse);
  // The relative penalty is far larger when atomics already dominate.
  EXPECT_GT(cas_fine / cas_coarse, 2.0 * rmw_fine / rmw_coarse);
}

TEST(CostModel, CoherenceAffectsAtomicKernelCostDirectly) {
  const KernelCostModel model(gpu_spec(Platform::kMi250x));
  const auto p = shape10();
  const KernelConfig cfg{32, 64};
  const double coarse = model.atomic_seconds(
      KernelId::kAprod2Att, p, cfg, AtomicMode::kCasLoop,
      backends::CoherenceMode::kCoarseGrain);
  const double fine = model.atomic_seconds(
      KernelId::kAprod2Att, p, cfg, AtomicMode::kCasLoop,
      backends::CoherenceMode::kFineGrain);
  EXPECT_GT(fine, 3.0 * coarse);
}

}  // namespace
}  // namespace gaia::perfmodel
