#include "metrics/report.hpp"

#include <gtest/gtest.h>

namespace gaia::metrics {
namespace {

PerformanceMatrix demo() {
  PerformanceMatrix m({"HIP", "CUDA"}, {"nv0", "amd0"});
  m.set_time(0, 0, 0.010);
  m.set_time(0, 1, 0.012);
  m.set_time(1, 0, 0.009);
  return m;
}

TEST(Report, ContainsAllSections) {
  const std::string md = markdown_report(demo());
  EXPECT_NE(md.find("# Performance-portability campaign"),
            std::string::npos);
  EXPECT_NE(md.find("## Average iteration time"), std::string::npos);
  EXPECT_NE(md.find("## Application efficiency"), std::string::npos);
  EXPECT_NE(md.find("## Pennycook P"), std::string::npos);
  EXPECT_NE(md.find("## Efficiency cascades"), std::string::npos);
}

TEST(Report, MarksUnsupportedCells) {
  const std::string md = markdown_report(demo());
  EXPECT_NE(md.find("n/a"), std::string::npos);      // CUDA on amd0
  EXPECT_NE(md.find("0 (n/s)"), std::string::npos);  // efficiency cell
}

TEST(Report, SubtitleAndSecondarySubsetRendered) {
  ReportOptions opts;
  opts.subtitle = "10 GB problem, 5 platforms";
  opts.secondary_subset = {"nv0"};
  opts.secondary_subset_label = "P (NVIDIA)";
  const std::string md = markdown_report(demo(), opts);
  EXPECT_NE(md.find("10 GB problem"), std::string::npos);
  EXPECT_NE(md.find("P (NVIDIA)"), std::string::npos);
  // CUDA scores 1.0 on the nv0-only subset.
  EXPECT_NE(md.find("| CUDA | 0.000 | 1.000 |"), std::string::npos);
}

TEST(Report, CascadeLineListsPlatformsInOrder) {
  const std::string md = markdown_report(demo());
  // HIP's application efficiency: 1.0 on amd0 (only framework there),
  // 0.9 on nv0 (CUDA is faster) -> amd0 listed first.
  const auto pos = md.find("**HIP**");
  ASSERT_NE(pos, std::string::npos);
  const auto nv = md.find("nv0 0.90", pos);
  const auto amd = md.find("amd0 1.00", pos);
  ASSERT_NE(nv, std::string::npos);
  ASSERT_NE(amd, std::string::npos);
  EXPECT_LT(amd, nv);
}

TEST(Report, TablesAreValidMarkdown) {
  const std::string md = markdown_report(demo());
  // Every table header row is followed by a rule row.
  std::size_t pos = 0;
  int tables = 0;
  while ((pos = md.find("| framework |", pos)) != std::string::npos) {
    const auto line_end = md.find('\n', pos);
    EXPECT_EQ(md.compare(line_end + 1, 4, "|---"), 0);
    pos = line_end;
    ++tables;
  }
  EXPECT_GE(tables, 3);
}

}  // namespace
}  // namespace gaia::metrics
