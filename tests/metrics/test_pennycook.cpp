#include "metrics/pennycook.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gaia::metrics {
namespace {

TEST(PennycookP, HarmonicMeanOfEfficiencies) {
  // Paper Eq. 1: |H| / sum(1/e_i).
  std::vector<double> eff{1.0, 0.5};
  EXPECT_NEAR(pennycook_p(eff), 2.0 / 3.0, 1e-12);
}

TEST(PennycookP, ZeroWhenAnyPlatformUnsupported) {
  EXPECT_DOUBLE_EQ(pennycook_p(std::vector<double>{1.0, 0.0, 0.9}), 0.0);
}

TEST(PennycookP, PerfectPortabilityIsOne) {
  EXPECT_DOUBLE_EQ(pennycook_p(std::vector<double>{1.0, 1.0, 1.0}), 1.0);
}

TEST(PennycookP, DominatedByWorstPlatform) {
  // The harmonic mean punishes imbalance: one bad platform drags P far
  // below the arithmetic mean.
  std::vector<double> eff{1.0, 1.0, 1.0, 1.0, 0.1};
  EXPECT_LT(pennycook_p(eff), 0.36);
  EXPECT_GT(pennycook_p(eff), 0.3);
}

TEST(PennycookScores, MatchesManualComputation) {
  PerformanceMatrix m({"a", "b"}, {"p0", "p1"});
  m.set_time(0, 0, 1.0);
  m.set_time(0, 1, 1.0);
  m.set_time(1, 0, 2.0);
  m.set_time(1, 1, 1.0);
  const auto p = pennycook_scores(m);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  // b: eff = {0.5, 1.0} -> HM = 2/3.
  EXPECT_NEAR(p[1], 2.0 / 3.0, 1e-12);
}

TEST(PennycookScores, CudaLikeUnsupportedPlatformZeroesFullSetOnly) {
  // The paper's CUDA case: P = 0 over the full set (no AMD toolchain)
  // but 0.97 over the NVIDIA subset.
  PerformanceMatrix m({"cuda"}, {"nv0", "nv1", "amd"});
  m.set_time(0, 0, 1.0);
  m.set_time(0, 1, 1.0);
  const auto p_full = pennycook_scores(m);
  EXPECT_DOUBLE_EQ(p_full[0], 0.0);
  const auto p_nv = pennycook_scores(m, {"nv0", "nv1"});
  EXPECT_DOUBLE_EQ(p_nv[0], 1.0);
}

}  // namespace
}  // namespace gaia::metrics
