#include "metrics/efficiency.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace gaia::metrics {
namespace {

PerformanceMatrix example_matrix() {
  // apps: fast, slow, partial; platforms: p0, p1
  PerformanceMatrix m({"fast", "slow", "partial"}, {"p0", "p1"});
  m.set_time(0, 0, 1.0);
  m.set_time(0, 1, 2.0);
  m.set_time(1, 0, 2.0);
  m.set_time(1, 1, 4.0);
  m.set_time(2, 0, 1.5);  // partial does not run on p1
  return m;
}

TEST(PerformanceMatrix, StoresAndReportsSupport) {
  const auto m = example_matrix();
  EXPECT_TRUE(m.supported(0, 0));
  EXPECT_FALSE(m.supported(2, 1));
  EXPECT_DOUBLE_EQ(m.time(1, 1), 4.0);
  EXPECT_EQ(m.app_index("slow"), 1u);
  EXPECT_EQ(m.platform_index("p1"), 1u);
}

TEST(PerformanceMatrix, RejectsBadInput) {
  EXPECT_THROW(PerformanceMatrix({}, {"p"}), gaia::Error);
  auto m = example_matrix();
  EXPECT_THROW(m.set_time(9, 0, 1.0), gaia::Error);
  EXPECT_THROW(m.set_time(0, 0, 0.0), gaia::Error);
  EXPECT_THROW((void)m.app_index("nope"), gaia::Error);
}

TEST(ApplicationEfficiency, NormalizesByPlatformBest) {
  const auto eff = application_efficiency(example_matrix());
  EXPECT_DOUBLE_EQ(eff[0][0], 1.0);   // fast is the best on p0
  EXPECT_DOUBLE_EQ(eff[0][1], 1.0);   // and on p1
  EXPECT_DOUBLE_EQ(eff[1][0], 0.5);
  EXPECT_DOUBLE_EQ(eff[1][1], 0.5);
  EXPECT_DOUBLE_EQ(eff[2][0], 1.0 / 1.5);
  EXPECT_DOUBLE_EQ(eff[2][1], 0.0);   // unsupported
}

TEST(ApplicationEfficiency, PlatformWithNoAppsGivesZero) {
  PerformanceMatrix m({"a"}, {"p0", "dead"});
  m.set_time(0, 0, 1.0);
  const auto eff = application_efficiency(m);
  EXPECT_DOUBLE_EQ(eff[0][1], 0.0);
}

TEST(BestPlatformEfficiency, NormalizesByOwnBest) {
  const auto eff = best_platform_efficiency(example_matrix());
  EXPECT_DOUBLE_EQ(eff[1][0], 1.0);  // slow's own best is p0
  EXPECT_DOUBLE_EQ(eff[1][1], 0.5);
  EXPECT_DOUBLE_EQ(eff[2][0], 1.0);
  EXPECT_DOUBLE_EQ(eff[2][1], 0.0);
}

TEST(SubsetPlatforms, KeepsTimesAndSupport) {
  const auto m = example_matrix();
  const auto s = m.subset_platforms({"p1"});
  EXPECT_EQ(s.n_platforms(), 1u);
  EXPECT_DOUBLE_EQ(s.time(0, 0), 2.0);
  EXPECT_FALSE(s.supported(2, 0));
}

TEST(SubsetPlatforms, UnknownNameThrows) {
  const auto m = example_matrix();
  EXPECT_THROW(m.subset_platforms({"mystery"}), gaia::Error);
}

}  // namespace
}  // namespace gaia::metrics
