#include "metrics/model_drift.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace gaia::metrics {
namespace {

std::vector<KernelDrift> sample_rows() {
  // Predicted shares 25/75, measured 50/50: both kernels drift 25 pp.
  return {{"aprod1_astro", 1.0, 2.0}, {"aprod2_att", 3.0, 2.0}};
}

TEST(ModelDrift, DerivesSharesAndRatios) {
  const ModelDriftReport report(sample_rows());
  ASSERT_EQ(report.rows().size(), 2u);
  EXPECT_DOUBLE_EQ(report.total_predicted_s(), 4.0);
  EXPECT_DOUBLE_EQ(report.total_measured_s(), 4.0);

  const auto& r0 = report.rows()[0];
  EXPECT_EQ(r0.kernel, "aprod1_astro");
  EXPECT_DOUBLE_EQ(r0.ratio, 2.0);
  EXPECT_DOUBLE_EQ(r0.predicted_share, 0.25);
  EXPECT_DOUBLE_EQ(r0.measured_share, 0.50);
  EXPECT_DOUBLE_EQ(r0.share_drift_pp, 25.0);

  const auto& r1 = report.rows()[1];
  EXPECT_DOUBLE_EQ(r1.share_drift_pp, -25.0);
  EXPECT_DOUBLE_EQ(report.mean_abs_share_drift_pp(), 25.0);
  EXPECT_DOUBLE_EQ(report.max_abs_share_drift_pp(), 25.0);
}

TEST(ModelDrift, ZeroTotalsProduceZeroSharesNotNan) {
  const ModelDriftReport report({{"k", 0.0, 0.0}});
  const auto& r = report.rows()[0];
  EXPECT_DOUBLE_EQ(r.ratio, 0.0);
  EXPECT_DOUBLE_EQ(r.predicted_share, 0.0);
  EXPECT_DOUBLE_EQ(r.measured_share, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_abs_share_drift_pp(), 0.0);
}

TEST(ModelDrift, EmptyReportIsWellBehaved) {
  const ModelDriftReport report({});
  EXPECT_TRUE(report.rows().empty());
  EXPECT_DOUBLE_EQ(report.mean_abs_share_drift_pp(), 0.0);
  EXPECT_DOUBLE_EQ(report.max_abs_share_drift_pp(), 0.0);
  EXPECT_NE(report.csv().find("kernel,predicted_s"), std::string::npos);
}

TEST(ModelDrift, CsvRoundTrips) {
  const ModelDriftReport report(sample_rows());
  const std::string csv = report.csv();
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line,
            "kernel,predicted_s,measured_s,ratio,predicted_share,"
            "measured_share,share_drift_pp");
  int rows = 0;
  while (std::getline(is, line)) {
    ++rows;
    EXPECT_NE(line.find("aprod"), std::string::npos);
  }
  EXPECT_EQ(rows, 2);
}

TEST(ModelDrift, WriteCsvCreatesReadableFile) {
  const std::string path = "model_drift_test.csv";
  const ModelDriftReport report(sample_rows());
  report.write_csv(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header.rfind("kernel,", 0), 0u);
  f.close();
  std::remove(path.c_str());
}

TEST(ModelDrift, MarkdownHasTableAndSummary) {
  const ModelDriftReport report(sample_rows());
  const std::string md = report.markdown("drift check");
  EXPECT_NE(md.find("### drift check"), std::string::npos);
  EXPECT_NE(md.find("| kernel |"), std::string::npos);
  EXPECT_NE(md.find("| aprod1_astro |"), std::string::npos);
  EXPECT_NE(md.find("mean |share drift| = 25.0 pp"), std::string::npos);
  // Drift signs are explicit so regressions read at a glance.
  EXPECT_NE(md.find("+25.0"), std::string::npos);
  EXPECT_NE(md.find("-25.0"), std::string::npos);
}

}  // namespace
}  // namespace gaia::metrics
