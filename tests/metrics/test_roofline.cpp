#include "metrics/roofline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"

namespace gaia::metrics {
namespace {

/// HBM2e-ish machine: 1555 GB/s * 0.8 efficiency, 9700 GFLOP/s fp64 —
/// the values perfmodel's kA100 spec carries, hardcoded here so the
/// arithmetic stays hand-checkable.
RooflineMachine machine() { return {"a100-sim", 1555.0, 9700.0, 0.8}; }

std::vector<obs::MetricRow> series(const std::string& kernel,
                                   std::uint64_t launches, double bytes,
                                   double flops, double seconds_p50) {
  const std::string base = "kernel." + kernel + ".openmp.atomic.";
  obs::MetricRow l;
  l.name = base + "launches";
  l.type = "counter";
  l.count = launches;
  l.sum = static_cast<double>(launches);
  obs::MetricRow b;
  b.name = base + "bytes";
  b.type = "counter";
  b.count = launches;
  b.sum = bytes;
  obs::MetricRow f;
  f.name = base + "flops";
  f.type = "counter";
  f.count = launches;
  f.sum = flops;
  obs::MetricRow t;
  t.name = base + "time_seconds";
  t.type = "histogram";
  t.count = launches;
  t.p50 = seconds_p50;
  return {l, b, f, t};
}

TEST(RooflineTest, RidgeIntensityIsPeakOverEffectiveBandwidth) {
  const RooflineMachine m = machine();
  EXPECT_NEAR(m.effective_bw_gbs(), 1244.0, 1e-9);
  EXPECT_NEAR(ridge_intensity(m), 9700.0 / 1244.0, 1e-12);
}

TEST(RooflineTest, MemoryBoundKernelPlacement) {
  // 1 GB and 0.25 GFLOP per launch in 1 ms: intensity 0.25 FLOP/B, far
  // left of the ridge -> memory bound, ceiling = I * effective BW.
  const auto rows = series("aprod1_att", 10, 10e9, 2.5e9, 1e-3);
  const auto points = roofline_points(rows, machine());
  ASSERT_EQ(points.size(), 1u);
  const RooflinePoint& p = points[0];
  EXPECT_EQ(p.kernel, "aprod1_att");
  EXPECT_EQ(p.backend, "openmp");
  EXPECT_EQ(p.strategy, "atomic");
  EXPECT_EQ(p.launches, 10u);
  EXPECT_NEAR(p.bytes_per_launch, 1e9, 1e-3);
  EXPECT_NEAR(p.flops_per_launch, 0.25e9, 1e-3);
  EXPECT_NEAR(p.intensity, 0.25, 1e-12);
  EXPECT_NEAR(p.achieved_gbs, 1000.0, 1e-9);
  EXPECT_NEAR(p.achieved_gflops, 250.0, 1e-9);
  EXPECT_TRUE(p.memory_bound);
  EXPECT_NEAR(p.ceiling_gflops, 0.25 * 1244.0, 1e-9);
  EXPECT_NEAR(p.fraction_of_ceiling, 250.0 / 311.0, 1e-12);
}

TEST(RooflineTest, ComputeBoundKernelHitsTheFlopCeiling) {
  // 100 FLOP/B: far right of the ridge -> compute bound, ceiling is the
  // machine peak, not the bandwidth line.
  const auto rows = series("aprod2_att", 4, 1e8, 1e10, 2e-3);
  const auto points = roofline_points(rows, machine());
  ASSERT_EQ(points.size(), 1u);
  const RooflinePoint& p = points[0];
  EXPECT_NEAR(p.intensity, 100.0, 1e-9);
  EXPECT_FALSE(p.memory_bound);
  EXPECT_NEAR(p.ceiling_gflops, 9700.0, 1e-9);
  EXPECT_NEAR(p.achieved_gflops, 1e10 / 4.0 / 2e-3 / 1e9, 1e-6);
}

TEST(RooflineTest, SkipsUntimedAndTrafficlessSeries) {
  // Autotuner-style series: timings exist but launches were never
  // counted -> no placement. Same for a counted series with no traffic.
  auto rows = series("aprod1_att", 0, 0, 0, 1e-3);
  auto more = series("aprod1_ast", 5, 0, 0, 1e-3);
  rows.insert(rows.end(), more.begin(), more.end());
  obs::MetricRow unrelated;
  unrelated.name = "lsqr.iterations";
  unrelated.type = "counter";
  unrelated.count = 60;
  rows.push_back(unrelated);
  EXPECT_TRUE(roofline_points(rows, machine()).empty());
}

TEST(RooflineTest, PointsAreSortedByKernel) {
  auto rows = series("zeta", 1, 1e9, 1e9, 1e-3);
  auto more = series("alpha", 1, 1e9, 1e9, 1e-3);
  rows.insert(rows.end(), more.begin(), more.end());
  const auto points = roofline_points(rows, machine());
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].kernel, "alpha");
  EXPECT_EQ(points[1].kernel, "zeta");
}

TEST(RooflineTest, GaugesPublishedUnderKernelSeriesNames) {
  auto& reg = obs::MetricsRegistry::global();
  reg.set_enabled(true);
  reg.reset();
  const auto rows = series("aprod1_att", 10, 10e9, 2.5e9, 1e-3);
  publish_roofline_gauges(roofline_points(rows, machine()));
  const auto snap = reg.snapshot();
  auto value_of = [&](const std::string& field) -> double {
    const std::string name = "kernel.aprod1_att.openmp.atomic." + field;
    for (const auto& r : snap)
      if (r.name == name) return r.last;
    ADD_FAILURE() << "missing gauge " << name;
    return -1;
  };
  EXPECT_NEAR(value_of("roofline_intensity"), 0.25, 1e-12);
  EXPECT_NEAR(value_of("roofline_achieved_gflops"), 250.0, 1e-9);
  EXPECT_NEAR(value_of("roofline_achieved_gbs"), 1000.0, 1e-9);
  EXPECT_NEAR(value_of("roofline_fraction_of_ceiling"), 250.0 / 311.0, 1e-9);
  EXPECT_EQ(value_of("roofline_memory_bound"), 1.0);
  reg.set_enabled(false);
  reg.reset();
}

TEST(RooflineTest, ConsistentWithRecordedBandwidthGauge) {
  // The acceptance criterion: a placement computed from real
  // record_kernel_sample rows must agree with the derived-bandwidth
  // gauge the perf-counter layer maintains (bytes / seconds).
  auto& reg = obs::MetricsRegistry::global();
  reg.set_enabled(true);
  reg.reset();
  obs::KernelSample s;
  s.kernel = "aprod2_att";
  s.backend = "openmp";
  s.strategy = "atomic";
  s.bytes = 800'000'000;
  s.flops = 400'000'000;
  s.seconds = 1e-3;
  for (int i = 0; i < 5; ++i) obs::record_kernel_sample(s);
  const auto snap = reg.snapshot();
  const auto points = roofline_points(snap, machine());
  ASSERT_EQ(points.size(), 1u);
  double recorded_bw = -1;
  for (const auto& r : snap)
    if (r.name == "kernel.aprod2_att.openmp.atomic.bandwidth_bytes_per_s")
      recorded_bw = r.last;
  ASSERT_GT(recorded_bw, 0);
  // Same number, different units (gauge is B/s, placement GB/s).
  EXPECT_NEAR(points[0].achieved_gbs, recorded_bw / 1e9,
              recorded_bw / 1e9 * 1e-9);
  reg.set_enabled(false);
  reg.reset();
}

TEST(RooflineTest, TableRendersEveryPointAndTheMachineHeader) {
  auto rows = series("aprod1_att", 10, 10e9, 2.5e9, 1e-3);
  auto more = series("aprod2_att", 4, 1e8, 1e10, 2e-3);
  rows.insert(rows.end(), more.begin(), more.end());
  const auto points = roofline_points(rows, machine());
  const std::string table = roofline_table(points, machine());
  EXPECT_NE(table.find("a100-sim"), std::string::npos);
  EXPECT_NE(table.find("aprod1_att"), std::string::npos);
  EXPECT_NE(table.find("aprod2_att"), std::string::npos);
  EXPECT_NE(table.find("memory"), std::string::npos);
  EXPECT_NE(table.find("compute"), std::string::npos);
}

}  // namespace
}  // namespace gaia::metrics
