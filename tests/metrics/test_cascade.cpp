#include "metrics/cascade.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "metrics/pennycook.hpp"

namespace gaia::metrics {
namespace {

PerformanceMatrix demo_matrix() {
  PerformanceMatrix m({"portable", "specialist"}, {"p0", "p1", "p2"});
  // portable: decent everywhere.
  m.set_time(0, 0, 1.1);
  m.set_time(0, 1, 1.2);
  m.set_time(0, 2, 1.0);
  // specialist: fastest on p0, missing on p2.
  m.set_time(1, 0, 1.0);
  m.set_time(1, 1, 1.1);
  return m;
}

TEST(Cascade, PlatformsSortedByDecreasingEfficiency) {
  const auto cascade = build_cascade(demo_matrix());
  ASSERT_EQ(cascade.series.size(), 2u);
  for (const auto& s : cascade.series) {
    EXPECT_TRUE(std::is_sorted(s.efficiency.begin(), s.efficiency.end(),
                               std::greater<>{}))
        << s.application;
    EXPECT_EQ(s.platform_order.size(), 3u);
  }
}

TEST(Cascade, FirstPointIsBestEfficiencyAndRunningPDecays) {
  const auto cascade = build_cascade(demo_matrix());
  const auto& s = cascade.series[0];  // portable
  EXPECT_DOUBLE_EQ(s.running_p[0], s.efficiency[0]);
  // Running P is non-increasing as worse platforms join.
  for (std::size_t k = 1; k < s.running_p.size(); ++k)
    EXPECT_LE(s.running_p[k], s.running_p[k - 1] + 1e-12);
}

TEST(Cascade, FinalPMatchesPennycook) {
  const auto m = demo_matrix();
  const auto cascade = build_cascade(m);
  const auto p = pennycook_scores(m);
  for (std::size_t a = 0; a < p.size(); ++a)
    EXPECT_NEAR(cascade.series[a].final_p, p[a], 1e-12);
}

TEST(Cascade, UnsupportedPlatformZeroesTail) {
  const auto cascade = build_cascade(demo_matrix());
  const auto& s = cascade.series[1];  // specialist, missing p2
  EXPECT_DOUBLE_EQ(s.efficiency.back(), 0.0);
  EXPECT_DOUBLE_EQ(s.running_p.back(), 0.0);
  EXPECT_DOUBLE_EQ(s.final_p, 0.0);
  // But its running P before the unsupported platform is positive.
  EXPECT_GT(s.running_p[1], 0.9);
}

TEST(Cascade, RenderMentionsAllSeries) {
  const auto text = render_cascade(build_cascade(demo_matrix()));
  EXPECT_NE(text.find("portable"), std::string::npos);
  EXPECT_NE(text.find("specialist"), std::string::npos);
  EXPECT_NE(text.find("P ="), std::string::npos);
}

}  // namespace
}  // namespace gaia::metrics
