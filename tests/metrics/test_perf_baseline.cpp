/// \file test_perf_baseline.cpp
/// \brief Baseline JSON round-trips and perf-gate verdict semantics.
#include "metrics/perf_baseline.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/error.hpp"

namespace gaia::metrics {
namespace {

KernelTiming timing(const std::string& kernel, double seconds,
                    const std::string& backend = "openmp",
                    const std::string& strategy = "none") {
  KernelTiming t;
  t.kernel = kernel;
  t.backend = backend;
  t.strategy = strategy;
  t.median_seconds = seconds;
  t.samples = 9;
  return t;
}

PerfBaseline baseline_of(std::initializer_list<KernelTiming> kernels) {
  PerfBaseline b;
  b.name = "smoke";
  b.kernels = kernels;
  return b;
}

TEST(PerfBaseline, JsonRoundTrip) {
  PerfBaseline b = baseline_of({
      timing("aprod1_astro", 1.25e-3),
      timing("aprod2_att", 4.5e-4, "gpusim", "privatized"),
  });
  const PerfBaseline back = parse_baseline(b.to_json());
  EXPECT_EQ(back.name, "smoke");
  ASSERT_EQ(back.kernels.size(), 2u);
  EXPECT_EQ(back.kernels[0].kernel, "aprod1_astro");
  EXPECT_DOUBLE_EQ(back.kernels[0].median_seconds, 1.25e-3);
  EXPECT_EQ(back.kernels[0].samples, 9u);
  EXPECT_EQ(back.kernels[1].backend, "gpusim");
  EXPECT_EQ(back.kernels[1].strategy, "privatized");

  const KernelTiming* found = back.find("aprod2_att", "gpusim", "privatized");
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->median_seconds, 4.5e-4);
  EXPECT_EQ(back.find("aprod2_att", "openmp", "privatized"), nullptr);
}

TEST(PerfBaseline, ParseRejectsMalformedInput) {
  EXPECT_THROW(parse_baseline(""), Error);
  EXPECT_THROW(parse_baseline("not json"), Error);
  EXPECT_THROW(parse_baseline("{\"version\":2,\"name\":\"x\",\"kernels\":[]}"),
               Error);
  EXPECT_THROW(
      parse_baseline("{\"version\":1,\"name\":\"x\",\"kernels\":[],"
                     "\"surprise\":1}"),
      Error);
  // Truncated document.
  const std::string good = baseline_of({timing("a", 1.0)}).to_json();
  EXPECT_THROW(parse_baseline(good.substr(0, good.size() / 2)), Error);
}

TEST(PerfGate, IdenticalRunsPass) {
  const PerfBaseline b = baseline_of({timing("a", 1.0), timing("b", 2.0)});
  const GateReport report = perf_gate(b, b);
  EXPECT_TRUE(report.pass);
  EXPECT_TRUE(report.regressions.empty());
  EXPECT_TRUE(report.improvements.empty());
  EXPECT_TRUE(report.missing.empty());
}

TEST(PerfGate, FlagsSlowdownBeyondTolerance) {
  const PerfBaseline base = baseline_of({timing("a", 1.0), timing("b", 1.0)});
  const PerfBaseline next = baseline_of({timing("a", 2.0), timing("b", 1.1)});
  const GateReport report = perf_gate(base, next);  // tolerance 0.25
  EXPECT_FALSE(report.pass);
  ASSERT_EQ(report.regressions.size(), 1u);
  EXPECT_EQ(report.regressions[0].kernel, "a");
  EXPECT_DOUBLE_EQ(report.regressions[0].ratio, 2.0);
  EXPECT_NE(report.to_string().find("REGRESSION"), std::string::npos);
}

TEST(PerfGate, ToleranceBoundaryIsInclusive) {
  const PerfBaseline base = baseline_of({timing("a", 1.0)});
  GateOptions opts;
  opts.tolerance = 0.25;
  // Exactly at the edge: allowed.
  EXPECT_TRUE(perf_gate(base, baseline_of({timing("a", 1.25)}), opts).pass);
  // Just past it: regression.
  EXPECT_FALSE(perf_gate(base, baseline_of({timing("a", 1.26)}), opts).pass);
  // Generous tolerance admits a 2x slowdown.
  opts.tolerance = 1.5;
  EXPECT_TRUE(perf_gate(base, baseline_of({timing("a", 2.0)}), opts).pass);
}

TEST(PerfGate, ClassifiesImprovements) {
  const PerfBaseline base = baseline_of({timing("a", 1.0)});
  const GateReport report = perf_gate(base, baseline_of({timing("a", 0.5)}));
  EXPECT_TRUE(report.pass);  // faster is never a failure
  ASSERT_EQ(report.improvements.size(), 1u);
  EXPECT_DOUBLE_EQ(report.improvements[0].ratio, 0.5);
}

TEST(PerfGate, MissingSeriesFailsUnlessAllowed) {
  const PerfBaseline base = baseline_of({timing("a", 1.0), timing("b", 1.0)});
  const PerfBaseline next = baseline_of({timing("a", 1.0)});
  const GateReport strict = perf_gate(base, next);
  EXPECT_FALSE(strict.pass);
  ASSERT_EQ(strict.missing.size(), 1u);
  EXPECT_EQ(strict.missing[0].kernel, "b");

  GateOptions opts;
  opts.allow_missing = true;
  const GateReport lax = perf_gate(base, next, opts);
  EXPECT_TRUE(lax.pass);
  EXPECT_EQ(lax.missing.size(), 1u);  // still reported, just not fatal
}

TEST(PerfGate, NewOnlySeriesAreIgnored) {
  const PerfBaseline base = baseline_of({timing("a", 1.0)});
  const PerfBaseline next =
      baseline_of({timing("a", 1.0), timing("brand_new", 99.0)});
  const GateReport report = perf_gate(base, next);
  EXPECT_TRUE(report.pass);
  EXPECT_TRUE(report.regressions.empty());
}

}  // namespace
}  // namespace gaia::metrics
