/// Property sweeps over the platform model: monotonicity and sanity
/// invariants that must hold for every framework x platform x size cell.
#include <gtest/gtest.h>

#include <cctype>

#include "metrics/pennycook.hpp"
#include "perfmodel/simulator.hpp"

namespace gaia::perfmodel {
namespace {

byte_size gb(double g) { return static_cast<byte_size>(g * kGiB); }

class CellSweep
    : public ::testing::TestWithParam<std::tuple<Framework, Platform>> {};

TEST_P(CellSweep, TimeGrowsMonotonicallyWithProblemSize) {
  const auto [f, p] = GetParam();
  PlatformSimulator sim;
  double prev = 0;
  for (double size : {1.0, 4.0, 8.0, 10.0}) {
    if (sim.unsupported_reason(f, p, gb(size))) continue;
    const double t = sim.model_iteration_seconds(f, p, gb(size));
    EXPECT_GT(t, prev) << size << " GB";
    prev = t;
  }
}

TEST_P(CellSweep, TimeScalesRoughlyLinearlyInSize) {
  const auto [f, p] = GetParam();
  PlatformSimulator sim;
  if (sim.unsupported_reason(f, p, gb(10))) GTEST_SKIP();
  const double t2 = sim.model_iteration_seconds(f, p, gb(2));
  const double t10 = sim.model_iteration_seconds(f, p, gb(10));
  const double ratio = t10 / t2;
  // CAS-lowered cells scale sublinearly: the conflict ratio falls as the
  // column space grows with the problem, so allow a wider band there.
  const bool cas = atomic_lowering(f, gpu_spec(p).vendor) ==
                   AtomicMode::kCasLoop;
  EXPECT_GT(ratio, cas ? 1.3 : 3.0) << to_string(f) << "/" << to_string(p);
  EXPECT_LT(ratio, 7.0) << to_string(f) << "/" << to_string(p);
}

TEST_P(CellSweep, SupportedCellsProducePositiveTimes) {
  const auto [f, p] = GetParam();
  PlatformSimulator sim;
  for (double size : {10.0, 30.0, 60.0}) {
    const auto r = sim.run(f, p, gb(size));
    if (r.supported) {
      EXPECT_GT(r.mean_iteration_s, 0.0);
      EXPECT_LT(r.mean_iteration_s, 10.0);  // sane: < 10 s per iteration
    } else {
      EXPECT_FALSE(r.unsupported_reason.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, CellSweep,
    ::testing::Combine(::testing::ValuesIn(all_frameworks()),
                       ::testing::ValuesIn(all_platforms())),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param)) + "_" +
                         to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(CampaignProperties, EveryPlatformHasABestFrameworkWithEfficiencyOne) {
  PlatformSimulator sim;
  const auto platforms = platforms_for_size(gb(10));
  const auto m = sim.measure_campaign(gb(10), all_frameworks(), platforms);
  const auto eff = metrics::application_efficiency(m);
  for (std::size_t p = 0; p < m.n_platforms(); ++p) {
    double best = 0;
    for (std::size_t a = 0; a < m.n_applications(); ++a)
      best = std::max(best, eff[a][p]);
    EXPECT_NEAR(best, 1.0, 1e-12) << m.platforms()[p];
  }
}

TEST(CampaignProperties, PNeverExceedsBestEfficiency) {
  PlatformSimulator sim;
  const auto platforms = platforms_for_size(gb(10));
  const auto m = sim.measure_campaign(gb(10), all_frameworks(), platforms);
  const auto eff = metrics::application_efficiency(m);
  const auto p_scores = metrics::pennycook_scores(m);
  for (std::size_t a = 0; a < m.n_applications(); ++a) {
    double mx = 0, mn = 2;
    for (double e : eff[a]) {
      mx = std::max(mx, e);
      if (e > 0) mn = std::min(mn, e);
    }
    // Harmonic mean lies between the min and max positive efficiency
    // (or is zero when any platform is unsupported).
    if (p_scores[a] > 0) {
      EXPECT_LE(p_scores[a], mx + 1e-12) << m.applications()[a];
      EXPECT_GE(p_scores[a], mn - 1e-12) << m.applications()[a];
    }
  }
}

TEST(CampaignProperties, ResidualCalibrationNeverInvertsStructuralLosses) {
  // Sanity guard on the calibration: no framework may beat CUDA/HIP on
  // an NVIDIA platform purely through its residual (they are the
  // reference points of the paper's measurements).
  PlatformSimulator sim;
  for (Platform p :
       {Platform::kT4, Platform::kV100, Platform::kA100, Platform::kH100}) {
    const double best_native =
        std::min(sim.model_iteration_seconds(Framework::kCuda, p, gb(10)),
                 sim.model_iteration_seconds(Framework::kHip, p, gb(10)));
    for (Framework f : all_frameworks()) {
      if (f == Framework::kCuda || f == Framework::kHip) continue;
      EXPECT_GE(sim.model_iteration_seconds(f, p, gb(10)),
                best_native * 0.999)
          << to_string(f) << " on " << to_string(p);
    }
  }
}

}  // namespace
}  // namespace gaia::perfmodel
