/// Property sweeps over the dataset generator: structural invariants
/// must hold for every (size, seed) combination, not just the fixtures.
#include <gtest/gtest.h>

#include "matrix/dense.hpp"
#include "matrix/generator.hpp"
#include "util/rng.hpp"

namespace gaia::matrix {
namespace {

struct SweepParam {
  std::uint64_t seed;
  row_index n_stars;
  double obs_mean;
  col_index att_dof;
  col_index n_instr;
  bool has_global;
};

class GeneratorSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  static GeneratorConfig config() {
    const SweepParam& p = GetParam();
    GeneratorConfig cfg;
    cfg.seed = p.seed;
    cfg.n_stars = p.n_stars;
    cfg.obs_per_star_mean = p.obs_mean;
    cfg.att_dof_per_axis = p.att_dof;
    cfg.n_instr_params = p.n_instr;
    cfg.has_global = p.has_global;
    return cfg;
  }
};

TEST_P(GeneratorSweep, StructureAlwaysValid) {
  const auto gen = generate_system(config());
  EXPECT_NO_THROW(gen.A.validate_structure());
}

TEST_P(GeneratorSweep, FootprintFormulaExact) {
  const auto gen = generate_system(config());
  EXPECT_EQ(gen.A.footprint_bytes(),
            SystemMatrix::footprint_bytes_for(gen.A.n_rows(),
                                              gen.A.layout().n_stars()));
}

TEST_P(GeneratorSweep, AdjointIdentityOnCompressedForm) {
  // <A x, y> == <x, A^T y> straight from the dense expansion — ties the
  // compressed storage semantics down for every sweep point.
  const auto gen = generate_system(config());
  if (gen.A.n_rows() * gen.A.n_cols() > 4'000'000) GTEST_SKIP();
  const auto M = to_dense(gen.A);
  util::Xoshiro256 rng(GetParam().seed + 1);
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()));
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  const auto Ax = dense_matvec(M, gen.A.n_rows(), gen.A.n_cols(), x);
  const auto Aty = dense_rmatvec(M, gen.A.n_rows(), gen.A.n_cols(), y);
  real lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < Ax.size(); ++i) lhs += Ax[i] * y[i];
  for (std::size_t i = 0; i < Aty.size(); ++i) rhs += Aty[i] * x[i];
  EXPECT_NEAR(lhs, rhs, 1e-8 * std::max<real>(1, std::abs(lhs)));
}

TEST_P(GeneratorSweep, GroundTruthSatisfiesConstraints) {
  auto cfg = config();
  cfg.rhs_mode = RhsMode::kFromGroundTruth;
  const auto gen = generate_system(cfg);
  ASSERT_TRUE(gen.ground_truth.has_value());
  const auto& lay = gen.A.layout();
  // Every axis' first constraint window must sum to ~0 in the truth.
  for (int axis = 0; axis < kAttBlocks; ++axis) {
    real sum = 0;
    for (int i = 0; i < kAttBlockSize; ++i)
      sum += (*gen.ground_truth)[static_cast<std::size_t>(
          lay.att_offset() + axis * lay.att_stride() + i)];
    EXPECT_NEAR(sum, 0.0, 1e-10) << "axis " << axis;
  }
}

TEST_P(GeneratorSweep, SeedStabilityAcrossRepeatedCalls) {
  const auto a = generate_system(config());
  const auto b = generate_system(config());
  EXPECT_TRUE(std::equal(a.A.values().begin(), a.A.values().end(),
                         b.A.values().begin()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorSweep,
    ::testing::Values(SweepParam{1, 8, 6.0, 8, 6, false},
                      SweepParam{2, 16, 10.0, 16, 8, true},
                      SweepParam{3, 64, 8.0, 32, 24, true},
                      SweepParam{4, 100, 20.0, 48, 12, false},
                      SweepParam{5, 256, 12.0, 64, 64, true},
                      SweepParam{6, 500, 30.0, 24, 7, true}),
    [](const auto& info) {
      return "case" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace gaia::matrix
