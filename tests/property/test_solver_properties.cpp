/// Property sweeps over the solver: LSQR invariants across backends,
/// sizes and damping values.
#include <gtest/gtest.h>

#include <cmath>

#include "core/lsqr.hpp"
#include "core/weights.hpp"
#include "matrix/generator.hpp"
#include "test_helpers.hpp"

namespace gaia::core {
namespace {

struct SolveCase {
  std::uint64_t seed;
  backends::BackendKind backend;
  real damp;
  bool precondition;
};

class SolverSweep : public ::testing::TestWithParam<SolveCase> {
 protected:
  static matrix::GeneratedSystem system() {
    auto cfg = gaia::testing::small_config(GetParam().seed);
    cfg.rhs_mode = matrix::RhsMode::kFromGroundTruth;
    cfg.noise_sigma = 0.05;
    return matrix::generate_system(cfg);
  }
  static LsqrOptions options() {
    LsqrOptions opts;
    opts.aprod.backend = GetParam().backend;
    opts.aprod.use_streams =
        GetParam().backend != backends::BackendKind::kSerial;
    opts.max_iterations = 400;
    opts.atol = 1e-11;
    opts.btol = 1e-11;
    opts.damp = GetParam().damp;
    opts.precondition = GetParam().precondition;
    opts.record_history = true;
    return opts;
  }
};

TEST_P(SolverSweep, NormalEquationsResidualIsSmall) {
  // At convergence A^T (A x - b) + damp^2 x ~ 0: the least-squares
  // optimality condition, checked directly on the compressed system.
  // (Only valid in unscaled variables when damping is combined with
  // *no* preconditioning: the preconditioned solver damps the scaled
  // unknowns, so the sweep uses precondition=false for damped cases.)
  if (GetParam().damp > 0 && GetParam().precondition) GTEST_SKIP();
  const auto gen = system();
  const auto result = lsqr_solve(gen.A, options());
  auto r = compute_residuals(gen.A, result.x);  // A x - b
  // g = A^T r + damp^2 x via the dense-free residual helper + aprod2.
  backends::DeviceContext device;
  AprodOptions aopts;
  aopts.backend = backends::BackendKind::kSerial;
  aopts.use_streams = false;
  Aprod aprod(gen.A, device, aopts);
  std::vector<real> g(static_cast<std::size_t>(gen.A.n_cols()), 0.0);
  aprod.apply2(r, g);
  const real damp = GetParam().damp;
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] += damp * damp * result.x[i];
  real gnorm = 0, xnorm = 0;
  for (real v : g) gnorm += v * v;
  for (real v : result.x) xnorm += v * v;
  EXPECT_LT(std::sqrt(gnorm), 2e-4 * std::max<real>(1, std::sqrt(xnorm)))
      << "stop: " << to_string(result.istop) << " after "
      << result.iterations;
}

TEST_P(SolverSweep, RnormHistoryMonotoneNonIncreasing) {
  const auto gen = system();
  const auto result = lsqr_solve(gen.A, options());
  for (std::size_t i = 1; i < result.rnorm_history.size(); ++i)
    ASSERT_LE(result.rnorm_history[i],
              result.rnorm_history[i - 1] * (1 + 1e-12))
        << "iteration " << i;
}

TEST_P(SolverSweep, SolutionFiniteEverywhere) {
  const auto gen = system();
  const auto result = lsqr_solve(gen.A, options());
  for (real v : result.x) ASSERT_TRUE(std::isfinite(v));
  for (real v : result.std_errors) ASSERT_TRUE(std::isfinite(v));
}

TEST_P(SolverSweep, RnormNeverBelowDampedFloor) {
  // With damping the residual of the damped system cannot reach zero
  // unless x = 0; rnorm must stay positive and consistent.
  const auto gen = system();
  const auto result = lsqr_solve(gen.A, options());
  EXPECT_GE(result.rnorm, 0.0);
  if (GetParam().damp > 0 && result.xnorm > 0) {
    EXPECT_GE(result.rnorm + 1e-12, GetParam().damp * 0.0);  // sanity
    EXPECT_GT(result.rnorm, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverSweep,
    ::testing::Values(
        SolveCase{201, backends::BackendKind::kSerial, 0.0, true},
        SolveCase{202, backends::BackendKind::kSerial, 0.5, false},
        SolveCase{203, backends::BackendKind::kSerial, 0.0, false},
        SolveCase{204, backends::BackendKind::kOpenMP, 0.0, true},
        SolveCase{205, backends::BackendKind::kPstl, 0.2, false},
        SolveCase{206, backends::BackendKind::kGpuSim, 0.0, true},
        SolveCase{207, backends::BackendKind::kGpuSim, 1.0, false}),
    [](const auto& info) {
      return backends::to_string(info.param.backend) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace gaia::core
