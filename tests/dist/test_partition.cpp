#include "dist/partition.hpp"

#include <gtest/gtest.h>

#include "matrix/dense.hpp"
#include "matrix/generator.hpp"
#include "test_helpers.hpp"

namespace gaia::dist {
namespace {

class Partition : public ::testing::TestWithParam<int> {};

TEST_P(Partition, CoversAllStarsAndRowsDisjointly) {
  const int ranks = GetParam();
  const auto gen = matrix::generate_system(gaia::testing::medium_config(90));
  const auto part = partition_by_stars(gen.A, ranks);

  EXPECT_EQ(part.star_begin.front(), 0);
  EXPECT_EQ(part.star_begin.back(), gen.A.layout().n_stars());
  EXPECT_EQ(part.row_begin.front(), 0);
  EXPECT_EQ(part.row_begin.back(), gen.A.n_obs());
  row_index stars = 0, rows = 0;
  for (int r = 0; r < ranks; ++r) {
    EXPECT_GE(part.stars_of(r), 1) << "rank " << r;
    EXPECT_GT(part.rows_of(r), 0) << "rank " << r;
    stars += part.stars_of(r);
    rows += part.rows_of(r);
  }
  EXPECT_EQ(stars, gen.A.layout().n_stars());
  EXPECT_EQ(rows, gen.A.n_obs());
}

TEST_P(Partition, CutsRespectStarBoundaries) {
  const int ranks = GetParam();
  const auto gen = matrix::generate_system(gaia::testing::medium_config(91));
  const auto part = partition_by_stars(gen.A, ranks);
  const auto starts = gen.A.star_row_start();
  for (int r = 0; r <= ranks; ++r) {
    const row_index star = part.star_begin[static_cast<std::size_t>(r)];
    EXPECT_EQ(part.row_begin[static_cast<std::size_t>(r)],
              starts[static_cast<std::size_t>(star)]);
  }
}

TEST_P(Partition, RowBalanceIsReasonable) {
  const int ranks = GetParam();
  const auto gen = matrix::generate_system(gaia::testing::medium_config(92));
  const auto part = partition_by_stars(gen.A, ranks);
  const double ideal =
      static_cast<double>(gen.A.n_obs()) / static_cast<double>(ranks);
  for (int r = 0; r < ranks; ++r) {
    EXPECT_LT(static_cast<double>(part.rows_of(r)), ideal * 1.5)
        << "rank " << r;
    EXPECT_GT(static_cast<double>(part.rows_of(r)), ideal * 0.5)
        << "rank " << r;
  }
}

TEST_P(Partition, SlicesReassembleTheGlobalMatrix) {
  const int ranks = GetParam();
  const auto gen = matrix::generate_system(gaia::testing::small_config(93));
  const auto part = partition_by_stars(gen.A, ranks);

  row_index total_obs = 0, total_constraints = 0;
  for (int r = 0; r < ranks; ++r) {
    const auto slice = extract_rank_slice(gen.A, part, r);
    EXPECT_NO_THROW(slice.validate_structure()) << "rank " << r;
    EXPECT_EQ(slice.n_cols(), gen.A.n_cols());
    total_obs += slice.n_obs();
    total_constraints += slice.n_constraints();
    // Row content must match the global rows verbatim.
    const row_index lo = part.row_begin[static_cast<std::size_t>(r)];
    for (row_index i = 0; i < slice.n_obs(); ++i) {
      const auto g = gen.A.row_values(lo + i);
      const auto l = slice.row_values(i);
      for (int k = 0; k < kNnzPerRow; ++k)
        ASSERT_EQ(l[k], g[k]) << "rank " << r << " row " << i;
      ASSERT_EQ(slice.known_terms()[static_cast<std::size_t>(i)],
                gen.A.known_terms()[static_cast<std::size_t>(lo + i)]);
    }
  }
  EXPECT_EQ(total_obs, gen.A.n_obs());
  EXPECT_EQ(total_constraints, gen.A.n_constraints());
}

TEST_P(Partition, SliceProductsSumToGlobalProduct) {
  // sum_r A_r^T y_r == A^T y : the algebraic identity the distributed
  // aprod2 allreduce relies on.
  const int ranks = GetParam();
  const auto gen = matrix::generate_system(gaia::testing::small_config(94));
  const auto part = partition_by_stars(gen.A, ranks);
  const auto M = matrix::to_dense(gen.A);
  util::Xoshiro256 rng(4);
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
  for (auto& v : y) v = rng.normal();
  const auto oracle =
      matrix::dense_rmatvec(M, gen.A.n_rows(), gen.A.n_cols(), y);

  std::vector<real> sum(static_cast<std::size_t>(gen.A.n_cols()), 0.0);
  for (int r = 0; r < ranks; ++r) {
    const auto slice = extract_rank_slice(gen.A, part, r);
    const auto Ms = matrix::to_dense(slice);
    // Local y: observation slice (+ constraints on the last rank).
    std::vector<real> y_local;
    const row_index lo = part.row_begin[static_cast<std::size_t>(r)];
    for (row_index i = 0; i < slice.n_obs(); ++i)
      y_local.push_back(y[static_cast<std::size_t>(lo + i)]);
    for (row_index i = 0; i < slice.n_constraints(); ++i)
      y_local.push_back(y[static_cast<std::size_t>(gen.A.n_obs() + i)]);
    const auto partial =
        matrix::dense_rmatvec(Ms, slice.n_rows(), slice.n_cols(), y_local);
    for (std::size_t i = 0; i < sum.size(); ++i) sum[i] += partial[i];
  }
  EXPECT_LT(gaia::testing::max_abs_diff(sum, oracle), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, Partition, ::testing::Values(1, 2, 3, 7),
                         [](const auto& info) {
                           return "ranks" + std::to_string(info.param);
                         });

TEST(PartitionErrors, MoreRanksThanStarsThrows) {
  auto cfg = gaia::testing::small_config(95);
  cfg.n_stars = 3;
  const auto gen = matrix::generate_system(cfg);
  EXPECT_THROW(partition_by_stars(gen.A, 4), gaia::Error);
  EXPECT_THROW(partition_by_stars(gen.A, 0), gaia::Error);
}

}  // namespace
}  // namespace gaia::dist
