#include "dist/comm.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>
#include <string>
#include <vector>

namespace gaia::dist {
namespace {

TEST(World, RunsEveryRankExactlyOnce) {
  World world(4);
  std::atomic<int> count{0};
  std::array<std::atomic<int>, 4> seen{};
  world.run([&](Comm& comm) {
    count.fetch_add(1);
    seen[static_cast<std::size_t>(comm.rank())].fetch_add(1);
    EXPECT_EQ(comm.size(), 4);
  });
  EXPECT_EQ(count.load(), 4);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(World, SingleRankWorldWorks) {
  World world(1);
  world.run([&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    std::vector<real> v{1.0, 2.0};
    comm.allreduce(v, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(v[0], 1.0);
    EXPECT_DOUBLE_EQ(v[1], 2.0);
  });
}

TEST(World, RejectsNonPositiveSize) {
  EXPECT_THROW(World(0), gaia::Error);
}

TEST(Comm, AllreduceSumAddsContributions) {
  World world(3);
  world.run([&](Comm& comm) {
    std::vector<real> v(4, static_cast<real>(comm.rank() + 1));
    comm.allreduce(v, ReduceOp::kSum);
    for (real x : v) EXPECT_DOUBLE_EQ(x, 6.0);  // 1 + 2 + 3
  });
}

TEST(Comm, AllreduceMaxAndMin) {
  World world(4);
  world.run([&](Comm& comm) {
    const real mx = comm.allreduce(static_cast<real>(comm.rank()),
                                   ReduceOp::kMax);
    const real mn = comm.allreduce(static_cast<real>(comm.rank()),
                                   ReduceOp::kMin);
    EXPECT_DOUBLE_EQ(mx, 3.0);
    EXPECT_DOUBLE_EQ(mn, 0.0);
  });
}

TEST(Comm, AllreduceIsDeterministicAcrossRuns) {
  // Rank-ordered reduction: identical inputs -> bitwise identical sums.
  World world(4);
  real first = 0, second = 0;
  auto body = [&](real& out) {
    return [&out](Comm& comm) {
      const real v = 0.1 * (comm.rank() + 1);
      const real sum = comm.allreduce(v, ReduceOp::kSum);
      if (comm.rank() == 0) out = sum;
    };
  };
  world.run(body(first));
  world.run(body(second));
  EXPECT_EQ(first, second);
}

TEST(Comm, BcastDistributesRootData) {
  World world(3);
  world.run([&](Comm& comm) {
    std::vector<real> v(3, comm.rank() == 1 ? 7.5 : 0.0);
    comm.bcast(v, 1);
    for (real x : v) EXPECT_DOUBLE_EQ(x, 7.5);
  });
}

TEST(Comm, BcastBadRootThrows) {
  World world(2);
  EXPECT_THROW(world.run([&](Comm& comm) {
                 std::vector<real> v(1);
                 comm.bcast(v, 5);
               }),
               gaia::Error);
}

TEST(Comm, SequentialCollectivesStayCoherent) {
  World world(3);
  world.run([&](Comm& comm) {
    for (int round = 0; round < 50; ++round) {
      const real sum = comm.allreduce(real{1}, ReduceOp::kSum);
      ASSERT_DOUBLE_EQ(sum, 3.0) << "round " << round;
      comm.barrier();
    }
  });
}

TEST(World, ExceptionInOneRankPropagates) {
  World world(3);
  EXPECT_THROW(world.run([&](Comm& comm) {
                 if (comm.rank() == 2) throw gaia::Error("rank 2 failed");
                 // Other ranks try a collective; the dropped rank must
                 // not deadlock them.
                 comm.allreduce(real{1}, ReduceOp::kSum);
               }),
               gaia::Error);
  // The world stays usable afterwards.
  std::atomic<int> ok{0};
  world.run([&](Comm&) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 3);
}

TEST(World, MidLoopRankFailureDoesNotDeadlockSurvivors) {
  // Regression: rank 1 dies *between* collectives while the survivors
  // are already blocked inside the next barrier phase. Without world
  // poisoning the survivors would wait forever on the dead rank's
  // arrival; with it, every survivor unwinds cleanly instead.
  World world(3);
  try {
    world.run([&](Comm& comm) {
      for (int round = 0;; ++round) {
        if (comm.rank() == 1 && round == 3)
          throw gaia::Error("rank 1 died mid-loop");
        comm.allreduce(real{1}, ReduceOp::kSum);
        comm.barrier();
      }
    });
    FAIL() << "expected the rank failure to propagate";
  } catch (const gaia::Error& e) {
    // The *original* error surfaces, not the collateral poisoning.
    EXPECT_NE(std::string(e.what()).find("rank 1 died mid-loop"),
              std::string::npos);
  }
  // The world recovers fully: collectives work on the next run().
  world.run([&](Comm& comm) {
    const real sum = comm.allreduce(real{1}, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(sum, 3.0);
  });
}

TEST(World, AllRanksFailingReportsOneErrorAndRecovers) {
  World world(4);
  EXPECT_THROW(world.run([&](Comm& comm) {
                 throw gaia::Error("rank " + std::to_string(comm.rank()));
               }),
               gaia::Error);
  std::atomic<int> ok{0};
  world.run([&](Comm&) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(World, PoisonedCollectiveThrowsWorldPoisonedOnSurvivors) {
  // Survivors observe the failure as WorldPoisoned (a gaia::Error), so
  // rank-level cleanup code can distinguish "I failed" from "a peer
  // failed". The run() itself reports the original error.
  World world(2);
  std::atomic<int> poisoned_seen{0};
  try {
    world.run([&](Comm& comm) {
      if (comm.rank() == 0) throw gaia::Error("boom");
      try {
        for (;;) comm.barrier();
      } catch (const WorldPoisoned&) {
        poisoned_seen.fetch_add(1);
        throw;
      }
    });
    FAIL() << "expected an error";
  } catch (const gaia::Error& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  EXPECT_EQ(poisoned_seen.load(), 1);
}

TEST(Comm, EmptySpanCollectivesAreSafe) {
  World world(3);
  world.run([&](Comm& comm) {
    std::vector<real> empty;
    comm.allreduce(empty, ReduceOp::kSum);  // must not deadlock or crash
    comm.bcast(empty, 0);
    comm.barrier();
  });
  SUCCEED();
}

TEST(Comm, MixedCollectiveSequenceStaysOrdered) {
  // Alternating allreduce/bcast/barrier across ranks exercises the
  // shared-buffer reuse between different collective types.
  World world(4);
  world.run([&](Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      std::vector<real> v(3, static_cast<real>(comm.rank()));
      comm.allreduce(v, ReduceOp::kSum);
      ASSERT_DOUBLE_EQ(v[0], 6.0);  // 0+1+2+3
      std::vector<real> b(2, comm.rank() == 0 ? 42.0 : 0.0);
      comm.bcast(b, 0);
      ASSERT_DOUBLE_EQ(b[1], 42.0);
      const real mx = comm.allreduce(
          static_cast<real>(comm.rank() * round), ReduceOp::kMax);
      ASSERT_DOUBLE_EQ(mx, 3.0 * round);
    }
  });
}

}  // namespace
}  // namespace gaia::dist
