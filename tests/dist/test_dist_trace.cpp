#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "dist/dist_lsqr.hpp"
#include "matrix/generator.hpp"
#include "obs/critpath.hpp"
#include "obs/trace_merge.hpp"
#include "test_helpers.hpp"

namespace gaia::dist {
namespace {

namespace fs = std::filesystem;

class DistTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("gaia_trace_") + info->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

DistLsqrOptions traced_options(int ranks, const std::string& trace_dir) {
  DistLsqrOptions opts;
  opts.n_ranks = ranks;
  opts.lsqr.aprod.backend = backends::BackendKind::kSerial;
  opts.lsqr.aprod.use_streams = false;
  opts.lsqr.max_iterations = 5;
  opts.trace_dir = trace_dir;
  return opts;
}

TEST_F(DistTraceTest, ThreeRankRunEmitsPerRankAndMergedTraces) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(200));
  const auto result = dist_lsqr_solve(gen.A, traced_options(3, dir_.string()));

  ASSERT_EQ(result.trace_files.size(), 3u);
  ASSERT_FALSE(result.merged_trace_file.empty());
  for (const std::string& path : result.trace_files)
    EXPECT_TRUE(fs::exists(path)) << path;
  ASSERT_TRUE(fs::exists(result.merged_trace_file));

  // Each per-rank file parses strictly, validates, and carries its rank
  // identity and a non-negative clock offset against the world epoch.
  for (int r = 0; r < 3; ++r) {
    const obs::TraceDoc doc =
        obs::parse_trace_file(result.trace_files[static_cast<std::size_t>(r)]);
    obs::validate_trace(doc);
    EXPECT_EQ(doc.rank, r);
    EXPECT_EQ(doc.n_ranks, 3);
    EXPECT_GE(doc.epoch_offset_us, 0.0);
    bool has_comm = false, has_iteration = false;
    for (const auto& e : doc.events) {
      if (e.cat == "comm" && e.phase == 'X') has_comm = true;
      if (e.name == "lsqr.iteration") has_iteration = true;
    }
    EXPECT_TRUE(has_comm) << "rank " << r << " has no comm spans";
    EXPECT_TRUE(has_iteration) << "rank " << r << " has no iteration spans";
  }

  // The merged timeline validates and contains spans from all 3 ranks,
  // comm spans included — with the wait/exchange split present.
  const obs::TraceDoc merged =
      obs::parse_trace_file(result.merged_trace_file);
  obs::validate_trace(merged);
  EXPECT_TRUE(merged.merged);
  EXPECT_EQ(merged.source_ranks, (std::vector<int>{0, 1, 2}));
  std::set<std::int64_t> comm_pids;
  bool has_wait = false, has_exchange = false;
  for (const auto& e : merged.events) {
    if (e.cat != "comm" || e.phase != 'X') continue;
    comm_pids.insert(e.pid);
    if (e.name == "allreduce.wait") has_wait = true;
    if (e.name == "allreduce.exchange") has_exchange = true;
  }
  EXPECT_EQ(comm_pids, (std::set<std::int64_t>{0, 1, 2}));
  EXPECT_TRUE(has_wait);
  EXPECT_TRUE(has_exchange);
}

TEST_F(DistTraceTest, MergedTraceDrivesCritpathAnalysis) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(201));
  const auto result = dist_lsqr_solve(gen.A, traced_options(3, dir_.string()));

  const obs::TraceDoc merged =
      obs::parse_trace_file(result.merged_trace_file);
  const obs::CritpathReport report = obs::analyze_critpath(merged);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.n_ranks, 3);
  EXPECT_EQ(report.iterations.size(), 5u);
  EXPECT_GT(report.total_critical_path_us, 0.0);
  // Five synchronous allreduce-heavy iterations: comm must show up.
  EXPECT_GT(report.total_exposed_us, 0.0);
  EXPECT_GT(report.exposure_fraction, 0.0);
  EXPECT_LE(report.exposure_fraction, 1.0);
  for (const auto& iter : report.iterations) {
    EXPECT_EQ(iter.ranks_seen, 3);
    EXPECT_GT(iter.critical_path_us, 0.0);
  }
}

TEST_F(DistTraceTest, CommAccountingReachesResultAndMetrics) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(202));
  const auto result = dist_lsqr_solve(gen.A, traced_options(2, dir_.string()));

  EXPECT_GT(result.comm_seconds_max, 0.0);
  EXPECT_GE(result.comm_seconds_max, result.comm_wait_seconds_max);
  EXPECT_GT(result.comm_exposure_fraction_max, 0.0);
  EXPECT_LE(result.comm_exposure_fraction_max, 1.0);

  // The per-rank rows carry the comm split, and the scalar-as-histogram
  // encoding keeps count = 1 per rank so the cluster aggregation yields
  // a max envelope over ranks.
  bool found_seconds = false, found_exposure = false;
  for (const auto& rows : result.rank_metrics) {
    for (const auto& row : rows) {
      if (row.name == "dist.rank.comm.seconds") {
        found_seconds = true;
        EXPECT_EQ(row.count, 1u);
        EXPECT_DOUBLE_EQ(row.max, row.p50);
      }
      if (row.name == "dist.rank.comm.exposure_fraction")
        found_exposure = true;
    }
  }
  EXPECT_TRUE(found_seconds);
  EXPECT_TRUE(found_exposure);
  for (const auto& row : result.cluster_metrics) {
    if (row.name == "dist.rank.comm.seconds") {
      EXPECT_EQ(row.count, 2u);  // one sample per rank
      EXPECT_NEAR(row.max, result.comm_seconds_max, 1e-9);
    }
  }
}

TEST_F(DistTraceTest, UntracedRunLeavesNoArtifacts) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(203));
  DistLsqrOptions opts = traced_options(2, "");
  const auto result = dist_lsqr_solve(gen.A, opts);
  EXPECT_TRUE(result.trace_files.empty());
  EXPECT_TRUE(result.merged_trace_file.empty());
  EXPECT_EQ(result.trace_dropped_events, 0u);
  // Comm accounting is always on (two clock reads per collective).
  EXPECT_GT(result.comm_seconds_max, 0.0);
}

TEST_F(DistTraceTest, TraceCapacityCapsPerRankBuffers) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(204));
  DistLsqrOptions opts = traced_options(2, dir_.string());
  opts.trace_capacity = 16;  // far below the events a 5-iteration run emits
  const auto result = dist_lsqr_solve(gen.A, opts);
  EXPECT_GT(result.trace_dropped_events, 0u);
  for (const std::string& path : result.trace_files) {
    const obs::TraceDoc doc = obs::parse_trace_file(path);
    obs::validate_trace(doc);  // the sliding window is still a valid trace
    EXPECT_LE(doc.events.size(), 16u);
    EXPECT_GT(doc.dropped_events, 0u);
  }
}

}  // namespace
}  // namespace gaia::dist
