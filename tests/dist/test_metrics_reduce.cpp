/// \file test_metrics_reduce.cpp
/// \brief Cross-rank metric aggregation: reduction math, schema
/// agreement, poison safety, and the dist_lsqr cluster snapshot.
#include "dist/metrics_reduce.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "dist/dist_lsqr.hpp"
#include "matrix/generator.hpp"
#include "obs/export.hpp"
#include "test_helpers.hpp"

namespace gaia::dist {
namespace {

obs::MetricRow counter_row(const std::string& name, double value) {
  obs::MetricRow r;
  r.name = name;
  r.type = "counter";
  r.count = static_cast<std::uint64_t>(value);
  r.sum = value;
  r.last = value;
  return r;
}

obs::MetricRow histogram_row(const std::string& name, double lo, double hi,
                             std::uint64_t count) {
  obs::MetricRow r;
  r.name = name;
  r.type = "histogram";
  r.count = count;
  r.sum = (lo + hi) / 2 * static_cast<double>(count);
  r.min = lo;
  r.max = hi;
  r.last = hi;
  r.p50 = (lo + hi) / 2;
  r.p95 = hi;
  r.p99 = hi;
  return r;
}

const obs::MetricRow* find_row(const std::vector<obs::MetricRow>& rows,
                               const std::string& name) {
  for (const auto& r : rows)
    if (r.name == name) return &r;
  return nullptr;
}

TEST(AggregateMetrics, SumsCountersAndEnvelopesHistograms) {
  World world(3);
  std::array<AggregatedMetrics, 3> results;
  world.run([&](Comm& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    std::vector<obs::MetricRow> rows;
    rows.push_back(counter_row("dist.rank.launches", 10 * mine));
    rows.push_back(histogram_row("dist.rank.iteration_seconds",
                                 /*lo=*/mine, /*hi=*/10 * mine,
                                 /*count=*/comm.rank() == 0 ? 4u : 2u));
    results[static_cast<std::size_t>(comm.rank())] =
        aggregate_metrics(comm, rows);
  });

  for (const auto& agg : results) {
    EXPECT_TRUE(agg.complete);
    ASSERT_EQ(agg.rows.size(), 2u);

    const obs::MetricRow* c = find_row(agg.rows, "dist.rank.launches");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->count, 60u);              // 10 + 20 + 30
    EXPECT_DOUBLE_EQ(c->sum, 60.0);
    EXPECT_DOUBLE_EQ(c->last, 60.0);       // counters: last tracks the sum

    const obs::MetricRow* h =
        find_row(agg.rows, "dist.rank.iteration_seconds");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 8u);               // 4 + 2 + 2
    EXPECT_DOUBLE_EQ(h->min, 1.0);         // min over ranks
    EXPECT_DOUBLE_EQ(h->max, 30.0);        // max over ranks
    EXPECT_DOUBLE_EQ(h->p95, 30.0);        // conservative upper envelope
  }
}

TEST(AggregateMetrics, SingleRankIsIdentity) {
  World world(1);
  world.run([&](Comm& comm) {
    std::vector<obs::MetricRow> rows{counter_row("x", 5)};
    const AggregatedMetrics agg = aggregate_metrics(comm, rows);
    EXPECT_TRUE(agg.complete);
    ASSERT_EQ(agg.rows.size(), 1u);
    EXPECT_EQ(agg.rows[0].count, 5u);
  });
}

TEST(AggregateMetrics, SchemaMismatchFallsBackToLocalRows) {
  // Rank 1 contributes a different metric name: no rank may blindly sum
  // misaligned buffers, so every rank must get its own rows back with
  // complete == false — consistently, without deadlock.
  World world(3);
  std::array<AggregatedMetrics, 3> results;
  world.run([&](Comm& comm) {
    const std::string name =
        comm.rank() == 1 ? "dist.rank.oops" : "dist.rank.launches";
    std::vector<obs::MetricRow> rows{counter_row(name, 10)};
    results[static_cast<std::size_t>(comm.rank())] =
        aggregate_metrics(comm, rows);
  });
  for (int rank = 0; rank < 3; ++rank) {
    const auto& agg = results[static_cast<std::size_t>(rank)];
    EXPECT_FALSE(agg.complete) << "rank " << rank;
    ASSERT_EQ(agg.rows.size(), 1u);
    EXPECT_EQ(agg.rows[0].name,
              rank == 1 ? "dist.rank.oops" : "dist.rank.launches");
    EXPECT_EQ(agg.rows[0].count, 10u);  // untouched local value
  }
}

TEST(AggregateMetrics, DeadRankYieldsPartialSnapshotNotHang) {
  // Rank 2 dies before joining the collective. The survivors must come
  // back with their own rows and complete == false instead of hanging
  // on the dead rank's contribution.
  World world(3);
  std::array<AggregatedMetrics, 3> results;
  std::atomic<int> survivors{0};
  try {
    world.run([&](Comm& comm) {
      if (comm.rank() == 2) throw gaia::Error("rank 2 died");
      std::vector<obs::MetricRow> rows{
          counter_row("dist.rank.launches", comm.rank() + 1.0)};
      results[static_cast<std::size_t>(comm.rank())] =
          aggregate_metrics(comm, rows);
      survivors.fetch_add(1);
    });
    FAIL() << "expected the rank death to propagate";
  } catch (const gaia::Error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 2 died"), std::string::npos);
  }
  EXPECT_EQ(survivors.load(), 2);
  for (int rank = 0; rank < 2; ++rank) {
    const auto& agg = results[static_cast<std::size_t>(rank)];
    EXPECT_FALSE(agg.complete) << "rank " << rank;
    ASSERT_EQ(agg.rows.size(), 1u);
    EXPECT_DOUBLE_EQ(agg.rows[0].sum, rank + 1.0);  // own rows, unreduced
  }
}

class DistLsqrMetrics : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::global().set_enabled(false);
    obs::MetricsRegistry::global().reset();
  }
  void TearDown() override {
    obs::MetricsRegistry::global().set_enabled(false);
    obs::MetricsRegistry::global().reset();
    obs::set_global_snapshot_path("");
    obs::set_global_snapshot_meta(obs::SnapshotMeta{});
  }
};

TEST_F(DistLsqrMetrics, ClusterCountersAreSumsOfRankRows) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(104));
  DistLsqrOptions opts;
  opts.n_ranks = 3;
  opts.lsqr.aprod.backend = backends::BackendKind::kSerial;
  opts.lsqr.aprod.use_streams = false;
  opts.lsqr.max_iterations = 12;
  opts.lsqr.atol = 0;
  opts.lsqr.btol = 0;
  const DistLsqrResult result = dist_lsqr_solve(gen.A, opts);

  EXPECT_TRUE(result.cluster_metrics_complete);
  ASSERT_EQ(result.rank_metrics.size(), 3u);
  ASSERT_FALSE(result.cluster_metrics.empty());

  // The acceptance criterion: every aggregated counter equals the sum
  // of the per-rank contributions.
  for (const char* name :
       {"dist.rank.launches", "dist.rank.rows", "dist.rank.kernel_bytes"}) {
    double rank_sum = 0;
    for (const auto& rows : result.rank_metrics) {
      const obs::MetricRow* r = find_row(rows, name);
      ASSERT_NE(r, nullptr) << name;
      EXPECT_EQ(r->type, "counter");
      rank_sum += r->sum;
    }
    const obs::MetricRow* agg = find_row(result.cluster_metrics, name);
    ASSERT_NE(agg, nullptr) << name;
    EXPECT_DOUBLE_EQ(agg->sum, rank_sum) << name;
  }

  // Every rank owns a slice; together they cover the whole system.
  const obs::MetricRow* rows_row =
      find_row(result.cluster_metrics, "dist.rank.rows");
  ASSERT_NE(rows_row, nullptr);
  EXPECT_DOUBLE_EQ(rows_row->sum, static_cast<double>(gen.A.n_rows()));

  // The iteration-time envelope spans every rank's local extremes.
  const obs::MetricRow* iter =
      find_row(result.cluster_metrics, "dist.rank.iteration_seconds");
  ASSERT_NE(iter, nullptr);
  EXPECT_EQ(iter->type, "histogram");
  EXPECT_EQ(iter->count, 3u * 12u);
  for (const auto& rows : result.rank_metrics) {
    const obs::MetricRow* local =
        find_row(rows, "dist.rank.iteration_seconds");
    ASSERT_NE(local, nullptr);
    EXPECT_LE(iter->min, local->min);
    EXPECT_GE(iter->max, local->max);
  }
}

TEST_F(DistLsqrMetrics, PublishesClusterRowsToRegistryWhenEnabled) {
  obs::MetricsRegistry::global().set_enabled(true);
  const auto gen = matrix::generate_system(gaia::testing::small_config(105));
  DistLsqrOptions opts;
  opts.n_ranks = 2;
  opts.lsqr.aprod.backend = backends::BackendKind::kSerial;
  opts.lsqr.aprod.use_streams = false;
  opts.lsqr.max_iterations = 8;
  opts.lsqr.atol = 0;
  opts.lsqr.btol = 0;
  const DistLsqrResult result = dist_lsqr_solve(gen.A, opts);
  ASSERT_TRUE(result.cluster_metrics_complete);

  auto& reg = obs::MetricsRegistry::global();
  const obs::MetricRow* agg =
      find_row(result.cluster_metrics, "dist.rank.launches");
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(reg.counter("cluster.dist.rank.launches").value(), agg->count);
  EXPECT_DOUBLE_EQ(reg.gauge("cluster.dist.rank.iteration_seconds.count")
                       .value(),
                   2.0 * 8.0);
}

}  // namespace
}  // namespace gaia::dist
