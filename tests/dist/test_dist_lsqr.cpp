#include "dist/dist_lsqr.hpp"

#include <gtest/gtest.h>

#include "matrix/dense.hpp"
#include "matrix/generator.hpp"
#include "test_helpers.hpp"

namespace gaia::dist {
namespace {

core::LsqrOptions solver_options() {
  core::LsqrOptions opts;
  opts.aprod.backend = backends::BackendKind::kSerial;
  opts.aprod.use_streams = false;
  opts.max_iterations = 300;
  opts.atol = 1e-12;
  opts.btol = 1e-12;
  return opts;
}

class DistLsqr : public ::testing::TestWithParam<int> {};

TEST_P(DistLsqr, MatchesSingleProcessSolution) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(100));
  const auto reference = core::lsqr_solve(gen.A, solver_options());

  DistLsqrOptions opts;
  opts.n_ranks = GetParam();
  opts.lsqr = solver_options();
  const auto dist = dist_lsqr_solve(gen.A, opts);

  EXPECT_LT(gaia::testing::rel_l2_error(dist.x, reference.x), 1e-8)
      << "ranks=" << GetParam();
}

TEST_P(DistLsqr, MatchesDenseLeastSquares) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(101));
  const auto M = matrix::to_dense(gen.A);
  const auto x_ref = matrix::dense_least_squares(
      M, gen.A.n_rows(), gen.A.n_cols(), gen.A.known_terms());

  DistLsqrOptions opts;
  opts.n_ranks = GetParam();
  opts.lsqr = solver_options();
  const auto dist = dist_lsqr_solve(gen.A, opts);
  EXPECT_LT(gaia::testing::rel_l2_error(dist.x, x_ref), 1e-6);
}

TEST_P(DistLsqr, StdErrorsMatchSingleProcess) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(102));
  auto single_opts = solver_options();
  // Fixed iteration count: the serial solver has extra machine-precision
  // stopping tests, and the variance accumulator depends on the exact
  // iteration the solvers stop at.
  single_opts.atol = 0;
  single_opts.btol = 0;
  single_opts.max_iterations = 200;
  single_opts.compute_std_errors = true;
  const auto reference = core::lsqr_solve(gen.A, single_opts);

  DistLsqrOptions opts;
  opts.n_ranks = GetParam();
  opts.lsqr = single_opts;
  const auto dist = dist_lsqr_solve(gen.A, opts);
  ASSERT_EQ(dist.std_errors.size(), reference.std_errors.size());
  // The variance accumulator is history-dependent: the Lanczos vectors'
  // trajectories diverge at roundoff level between the two reduction
  // orders and do not re-contract the way the solution does, so the
  // error *estimates* agree to ~1e-4, not 1e-8 (expected for LSQR).
  EXPECT_LT(gaia::testing::rel_l2_error(dist.std_errors,
                                        reference.std_errors),
            5e-3);
}

TEST_P(DistLsqr, IterationTimesAreMaxOverRanksAndPositive) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(103));
  DistLsqrOptions opts;
  opts.n_ranks = GetParam();
  opts.lsqr = solver_options();
  opts.lsqr.max_iterations = 10;
  opts.lsqr.atol = 0;
  opts.lsqr.btol = 0;
  const auto dist = dist_lsqr_solve(gen.A, opts);
  EXPECT_EQ(dist.iterations, 10);
  ASSERT_EQ(dist.iteration_seconds.size(), 10u);
  for (double t : dist.iteration_seconds) EXPECT_GT(t, 0.0);
  EXPECT_GT(dist.mean_iteration_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistLsqr, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "ranks" + std::to_string(info.param);
                         });

TEST(DistLsqrParallelBackend, GpuSimBackendAgreesAcrossRanks) {
  // Parallel backend inside each rank + multi-rank reduction.
  const auto gen = matrix::generate_system(gaia::testing::small_config(104));
  auto opts_core = solver_options();
  opts_core.aprod.backend = backends::BackendKind::kGpuSim;
  opts_core.aprod.use_streams = true;
  const auto reference = core::lsqr_solve(gen.A, opts_core);

  DistLsqrOptions opts;
  opts.n_ranks = 3;
  opts.lsqr = opts_core;
  const auto dist = dist_lsqr_solve(gen.A, opts);
  EXPECT_LT(gaia::testing::rel_l2_error(dist.x, reference.x), 1e-7);
}

TEST(DistLsqrValidation, PartitionRecordedInResult) {
  const auto gen = matrix::generate_system(gaia::testing::small_config(105));
  DistLsqrOptions opts;
  opts.n_ranks = 2;
  opts.lsqr = solver_options();
  opts.lsqr.max_iterations = 5;
  opts.lsqr.atol = 0;
  opts.lsqr.btol = 0;
  const auto dist = dist_lsqr_solve(gen.A, opts);
  EXPECT_EQ(dist.partition.n_ranks, 2);
  EXPECT_EQ(dist.partition.row_begin.back(), gen.A.n_obs());
}

}  // namespace
}  // namespace gaia::dist
