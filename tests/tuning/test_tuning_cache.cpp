/// Persistence contract of the tuning cache: winners round-trip through
/// the CRC-framed JSON file; anything torn, corrupted, or syntactically
/// off is *ignored* (load() -> false, cache stays empty) so the solver
/// falls back to searching; a different problem-shape bucket is a miss
/// that forces a re-tune.
#include "tuning/tuning_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "resilience/checkpoint.hpp"

namespace gaia::tuning {
namespace {

namespace fs = std::filesystem;
using backends::BackendKind;
using backends::KernelConfig;
using backends::KernelId;

class TuningCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("gaia_tuning_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Cache with a complete gpusim entry set for `bucket`.
  [[nodiscard]] static TuningCache full_cache(ShapeBucket bucket) {
    TuningCache cache;
    for (KernelId id : backends::all_kernels())
      cache.put(BackendKind::kGpuSim, bucket, id,
                {32 + static_cast<int>(id), 64});
    return cache;
  }

  fs::path dir_;
};

TEST(ShapeBucketTest, BucketsAreFloorLog2) {
  EXPECT_EQ(bucket_for(1024, 512), (ShapeBucket{10, 9}));
  EXPECT_EQ(bucket_for(1023, 511), (ShapeBucket{9, 8}));
  EXPECT_EQ(bucket_for(1, 1), (ShapeBucket{0, 0}));
  // Degenerate sizes clamp instead of producing negative exponents.
  EXPECT_EQ(bucket_for(0, -5), (ShapeBucket{0, 0}));
  // Same order of magnitude -> same bucket (the transfer rule).
  EXPECT_EQ(bucket_for(40000, 3000), bucket_for(65535, 2048));
}

TEST_F(TuningCacheTest, PutFindApplyRoundTrip) {
  const ShapeBucket bucket{15, 11};
  TuningCache cache;
  EXPECT_FALSE(cache.find(BackendKind::kGpuSim, bucket, KernelId::kAprod2Att)
                   .has_value());
  EXPECT_FALSE(cache.complete_for(BackendKind::kGpuSim, bucket));

  cache.put(BackendKind::kGpuSim, bucket, KernelId::kAprod2Att, {32, 32});
  const auto hit =
      cache.find(BackendKind::kGpuSim, bucket, KernelId::kAprod2Att);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (KernelConfig{32, 32}));
  // Partial coverage installs what it has but is not "complete".
  backends::TuningTable table = backends::TuningTable::untuned({256, 256});
  EXPECT_EQ(cache.apply(BackendKind::kGpuSim, bucket, table), 1);
  EXPECT_EQ(table.get(KernelId::kAprod2Att), (KernelConfig{32, 32}));
  EXPECT_EQ(table.get(KernelId::kAprod1Astro), (KernelConfig{256, 256}));
  EXPECT_FALSE(cache.complete_for(BackendKind::kGpuSim, bucket));

  const TuningCache full = full_cache(bucket);
  EXPECT_TRUE(full.complete_for(BackendKind::kGpuSim, bucket));
  EXPECT_EQ(full.size(), static_cast<std::size_t>(backends::kNumKernels));
}

TEST_F(TuningCacheTest, SaveLoadRoundTripsThroughTheSealedFile) {
  const ShapeBucket bucket{15, 11};
  full_cache(bucket).save(path("tc.json"));

  TuningCache loaded;
  ASSERT_TRUE(loaded.load(path("tc.json")));
  EXPECT_TRUE(loaded.complete_for(BackendKind::kGpuSim, bucket));
  for (KernelId id : backends::all_kernels()) {
    const auto hit = loaded.find(BackendKind::kGpuSim, bucket, id);
    ASSERT_TRUE(hit.has_value()) << to_string(id);
    EXPECT_EQ(*hit, (KernelConfig{32 + static_cast<int>(id), 64}));
  }
}

TEST_F(TuningCacheTest, MissingFileIsACleanMiss) {
  TuningCache cache;
  EXPECT_FALSE(cache.load(path("nonexistent.json")));
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(TuningCacheTest, CorruptedFileIsRejectedAndIgnored) {
  full_cache({15, 11}).save(path("tc.json"));
  // Flip one byte in the middle of the sealed payload: the CRC framing
  // must catch it and load() must leave the cache empty.
  std::fstream f(path("tc.json"),
                 std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(40);
  f.put('~');
  f.close();
  TuningCache cache;
  EXPECT_FALSE(cache.load(path("tc.json")));
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(TuningCacheTest, TruncatedFileIsRejectedAndIgnored) {
  full_cache({15, 11}).save(path("tc.json"));
  const auto full_size = fs::file_size(path("tc.json"));
  fs::resize_file(path("tc.json"), full_size / 2);  // torn write
  TuningCache cache;
  EXPECT_FALSE(cache.load(path("tc.json")));
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(TuningCacheTest, ValidFramingWithGarbageJsonIsRejected) {
  // The CRC can pass while the payload is still not a cache document;
  // the strict parser is the second line of defense.
  resilience::write_framed_file(path("tc.json"), "{\"version\":1,\"entr");
  TuningCache cache;
  EXPECT_FALSE(cache.load(path("tc.json")));
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(TuningCacheTest, BucketMismatchForcesAReTune) {
  const ShapeBucket tuned_bucket{15, 11};
  full_cache(tuned_bucket).save(path("tc.json"));
  TuningCache cache;
  ASSERT_TRUE(cache.load(path("tc.json")));
  // A problem one order of magnitude larger lands in another bucket:
  // nothing applies, complete_for is false, the solver searches afresh.
  const ShapeBucket other{16, 11};
  EXPECT_FALSE(cache.complete_for(BackendKind::kGpuSim, other));
  backends::TuningTable table;
  EXPECT_EQ(cache.apply(BackendKind::kGpuSim, other, table), 0);
  // Same bucket, different backend: also a miss.
  EXPECT_FALSE(cache.complete_for(BackendKind::kOpenMP, tuned_bucket));
}

TEST(TuningCacheJson, DocumentRoundTripsAndIsStable) {
  TuningCache cache;
  cache.put(BackendKind::kGpuSim, {8, 7}, KernelId::kAprod2Att,
            {32, 32, backends::ScatterStrategy::kPrivatized,
             backends::StorageLayout::kSlicedInstr,
             backends::Precision::kFp32});
  cache.put(BackendKind::kOpenMP, {8, 7}, KernelId::kAprod1Astro, {16, 128});
  const std::string json = cache.to_json();
  EXPECT_NE(json.find("\"version\":4"), std::string::npos);
  EXPECT_NE(json.find("\"kernel\":\"aprod2_att\""), std::string::npos);
  EXPECT_NE(json.find("\"strategy\":\"privatized\""), std::string::npos);
  EXPECT_NE(json.find("\"layout\":\"sliced_instr\""), std::string::npos);
  EXPECT_NE(json.find("\"precision\":\"fp32\""), std::string::npos);
  const auto parsed = TuningCache::parse_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);
  const auto hit =
      parsed->find(BackendKind::kGpuSim, {8, 7}, KernelId::kAprod2Att);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit,
            (KernelConfig{32, 32, backends::ScatterStrategy::kPrivatized,
                          backends::StorageLayout::kSlicedInstr,
                          backends::Precision::kFp32}));
  // Serialization is deterministic (diffable caches).
  EXPECT_EQ(parsed->to_json(), json);
}

TEST(TuningCacheJson, MissingStrategyAndLayoutKeysDefaultToSeed) {
  // Readers accept entries without the optional keys (a hand-edited
  // file); absent means atomic + seed_aos + fp64, the pre-axis
  // behaviour.
  const std::string json =
      "{\"version\":4,\"entries\":[{\"backend\":\"gpusim\","
      "\"rows_log2\":8,\"cols_log2\":7,\"kernel\":\"aprod2_att\","
      "\"blocks\":32,\"threads\":32}]}";
  const auto parsed = TuningCache::parse_json(json);
  ASSERT_TRUE(parsed.has_value());
  const auto hit =
      parsed->find(BackendKind::kGpuSim, {8, 7}, KernelId::kAprod2Att);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->strategy, backends::ScatterStrategy::kAtomic);
  EXPECT_EQ(hit->layout, backends::StorageLayout::kSeedAos);
  EXPECT_EQ(hit->precision, backends::Precision::kFp64);
}

TEST(TuningCacheJson, StrictParserRejectsEveryMalformation) {
  const auto entry = [](const std::string& backend, const std::string& kernel,
                        int blocks, int threads) {
    return "{\"version\":4,\"entries\":[{\"backend\":\"" + backend +
           "\",\"rows_log2\":8,\"cols_log2\":7,\"kernel\":\"" + kernel +
           "\",\"blocks\":" + std::to_string(blocks) +
           ",\"threads\":" + std::to_string(threads) +
           ",\"strategy\":\"atomic\",\"layout\":\"seed_aos\","
           "\"precision\":\"fp64\"}]}";
  };
  // The control: the generator above produces a parsable document.
  ASSERT_TRUE(TuningCache::parse_json(entry("gpusim", "aprod2_att", 32, 32))
                  .has_value());

  using Status = TuningCache::ParseStatus;
  Status status = Status::kOk;
  EXPECT_FALSE(TuningCache::parse_json("", &status).has_value());
  EXPECT_EQ(status, Status::kMalformed);
  EXPECT_FALSE(TuningCache::parse_json("not json").has_value());
  EXPECT_FALSE(TuningCache::parse_json("{\"version\":2}").has_value());
  // Other schema versions: rejected, but as a *version miss*, not
  // corruption — the entries are never trusted. v1 predates the
  // strategy axis, v2 the layout axis, v3 the precision axis.
  EXPECT_FALSE(
      TuningCache::parse_json("{\"version\":1,\"entries\":[]}", &status)
          .has_value());
  EXPECT_EQ(status, Status::kVersionMismatch);
  EXPECT_FALSE(
      TuningCache::parse_json("{\"version\":2,\"entries\":[]}", &status)
          .has_value());
  EXPECT_EQ(status, Status::kVersionMismatch);
  EXPECT_FALSE(
      TuningCache::parse_json("{\"version\":3,\"entries\":[]}", &status)
          .has_value());
  EXPECT_EQ(status, Status::kVersionMismatch);
  // Unknown backend / kernel / strategy / layout names.
  EXPECT_FALSE(TuningCache::parse_json(entry("cuda11", "aprod2_att", 32, 32))
                   .has_value());
  EXPECT_FALSE(TuningCache::parse_json(entry("gpusim", "aprod9_att", 32, 32))
                   .has_value());
  std::string bad_strategy = entry("gpusim", "aprod2_att", 32, 32);
  bad_strategy.replace(bad_strategy.find("atomic"), 6, "quantum");
  EXPECT_FALSE(TuningCache::parse_json(bad_strategy, &status).has_value());
  EXPECT_EQ(status, Status::kMalformed);
  std::string bad_layout = entry("gpusim", "aprod2_att", 32, 32);
  bad_layout.replace(bad_layout.find("seed_aos"), 8, "zigzag");
  EXPECT_FALSE(TuningCache::parse_json(bad_layout, &status).has_value());
  EXPECT_EQ(status, Status::kMalformed);
  std::string bad_precision = entry("gpusim", "aprod2_att", 32, 32);
  bad_precision.replace(bad_precision.find("fp64"), 4, "fp13");
  EXPECT_FALSE(TuningCache::parse_json(bad_precision, &status).has_value());
  EXPECT_EQ(status, Status::kMalformed);
  // Unlaunchable shapes: negative, zero-paired, absurd.
  EXPECT_FALSE(TuningCache::parse_json(entry("gpusim", "aprod2_att", -1, 32))
                   .has_value());
  EXPECT_FALSE(TuningCache::parse_json(entry("gpusim", "aprod2_att", 0, 32))
                   .has_value());
  EXPECT_FALSE(
      TuningCache::parse_json(entry("gpusim", "aprod2_att", 32, 1 << 20))
          .has_value());
  // Trailing garbage after a well-formed document.
  EXPECT_FALSE(
      TuningCache::parse_json(entry("gpusim", "aprod2_att", 32, 32) + "x")
          .has_value());
}

TEST(TuningCacheJson, OldVersionFileBumpsTheVersionMissCounter) {
  namespace fs = std::filesystem;
  auto& reg = obs::MetricsRegistry::global();
  reg.set_enabled(true);
  reg.reset();
  const std::string p =
      (fs::path(::testing::TempDir()) / "gaia_tc_v1.json").string();
  resilience::write_framed_file(
      p, "{\"version\":1,\"entries\":[{\"backend\":\"gpusim\","
         "\"rows_log2\":8,\"cols_log2\":7,\"kernel\":\"aprod2_att\","
         "\"blocks\":32,\"threads\":32}]}");
  TuningCache cache;
  EXPECT_FALSE(cache.load(p));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(reg.counter("tuning.cache.version_miss").value(), 1u);
  // A sealed v2 cache (strategy axis, no layout axis) is the file an
  // upgrade actually encounters: same clean fallback to a re-tune, no
  // entry ever trusted.
  resilience::write_framed_file(
      p, "{\"version\":2,\"entries\":[{\"backend\":\"gpusim\","
         "\"rows_log2\":8,\"cols_log2\":7,\"kernel\":\"aprod2_att\","
         "\"blocks\":32,\"threads\":32,\"strategy\":\"privatized\"}]}");
  EXPECT_FALSE(cache.load(p));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(reg.counter("tuning.cache.version_miss").value(), 2u);
  // A sealed v3 cache (layout axis, no precision axis) — the file this
  // release's upgrade encounters: version miss, entries untouched.
  resilience::write_framed_file(
      p, "{\"version\":3,\"entries\":[{\"backend\":\"gpusim\","
         "\"rows_log2\":8,\"cols_log2\":7,\"kernel\":\"aprod2_att\","
         "\"blocks\":32,\"threads\":32,\"strategy\":\"privatized\","
         "\"layout\":\"soa_tiled\"}]}");
  EXPECT_FALSE(cache.load(p));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(reg.counter("tuning.cache.version_miss").value(), 3u);
  // Plain corruption does not touch the version-miss counter.
  resilience::write_framed_file(p, "not json");
  EXPECT_FALSE(cache.load(p));
  EXPECT_EQ(reg.counter("tuning.cache.version_miss").value(), 3u);
  fs::remove(p);
  reg.set_enabled(false);
  reg.reset();
}

TEST(ShapeBucketTest, ToStringNamesBothAxes) {
  const std::string s = to_string(ShapeBucket{15, 11});
  EXPECT_NE(s.find("15"), std::string::npos);
  EXPECT_NE(s.find("11"), std::string::npos);
}

}  // namespace
}  // namespace gaia::tuning
