/// End-to-end behavior of the autotuning pipeline through the solver
/// facade: a first run searches and seals the cache, a second run loads
/// it without searching, a different problem-shape bucket forces a
/// re-tune, shape-blind backends skip everything, checkpoints cross
/// tuning boundaries, and the dist solver broadcasts rank 0's winners.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>

#include "core/lsqr_engine.hpp"
#include "core/solver.hpp"
#include "dist/dist_lsqr.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace gaia::core {
namespace {

namespace fs = std::filesystem;
using backends::BackendKind;

class AutotuneIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("gaia_autotune_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string cache_path() const {
    return (dir_ / "tc.json").string();
  }

  /// Tiny problem + tight search budget: the whole search fits in a few
  /// warm-up rounds.
  [[nodiscard]] SolverRunConfig config(BackendKind backend) const {
    SolverRunConfig cfg;
    cfg.generator = gaia::testing::small_config(99);
    cfg.lsqr.aprod.backend = backend;
    cfg.lsqr.max_iterations = 3;
    cfg.autotune.enabled = true;
    cfg.autotune.cache_path = cache_path();
    cfg.autotune.search.samples_per_config = 1;
    cfg.autotune.search.max_configs_per_kernel = 3;
    return cfg;
  }

  fs::path dir_;
};

TEST_F(AutotuneIntegration, FirstRunSearchesAndSealsSecondRunLoads) {
  const SolverRunReport first = run_solver(config(BackendKind::kGpuSim));
  EXPECT_TRUE(first.autotune_enabled);
  EXPECT_FALSE(first.autotune_cache_hit);
  EXPECT_EQ(first.kernels_tuned, backends::kNumKernels);
  EXPECT_GT(first.tuning_trials, 0u);
  ASSERT_TRUE(fs::exists(cache_path()));

  const SolverRunReport second = run_solver(config(BackendKind::kGpuSim));
  EXPECT_TRUE(second.autotune_cache_hit);
  EXPECT_EQ(second.tuning_trials, 0u) << "cache hit must skip the search";
  EXPECT_EQ(second.kernels_tuned, backends::kNumKernels);
  // The cached winners are exactly what the first run settled on.
  EXPECT_EQ(second.tuning_used, first.tuning_used);
  // And both summaries name the outcome the operator greps for.
  EXPECT_NE(second.summary().find("search skipped"), std::string::npos);
  EXPECT_EQ(first.summary().find("search skipped"), std::string::npos);
}

TEST_F(AutotuneIntegration, DifferentShapeBucketForcesAFreshSearch) {
  run_solver(config(BackendKind::kGpuSim));
  ASSERT_TRUE(fs::exists(cache_path()));

  // An order-of-magnitude bigger system lands in another bucket: the
  // sealed winners do not apply and the search runs again.
  SolverRunConfig big = config(BackendKind::kGpuSim);
  big.generator = gaia::testing::medium_config(99);
  const SolverRunReport report = run_solver(big);
  EXPECT_FALSE(report.autotune_cache_hit);
  EXPECT_GT(report.tuning_trials, 0u);

  // The cache now holds both buckets; the small problem still hits.
  const SolverRunReport small_again = run_solver(config(BackendKind::kGpuSim));
  EXPECT_TRUE(small_again.autotune_cache_hit);
}

TEST_F(AutotuneIntegration, ShapeBlindBackendSkipsSearchAndCache) {
  for (BackendKind backend : {BackendKind::kSerial, BackendKind::kPstl}) {
    const SolverRunReport report = run_solver(config(backend));
    EXPECT_TRUE(report.autotune_enabled);
    EXPECT_FALSE(report.autotune_cache_hit);
    EXPECT_EQ(report.kernels_tuned, 0);
    EXPECT_EQ(report.tuning_trials, 0u);
    EXPECT_FALSE(fs::exists(cache_path()))
        << "nothing to seal for " << to_string(backend);
  }
}

TEST_F(AutotuneIntegration, AutotunedSolveMatchesUntunedNumerics) {
  SolverRunConfig untuned = config(BackendKind::kGpuSim);
  untuned.autotune.enabled = false;
  const SolverRunReport baseline = run_solver(untuned);
  const SolverRunReport tuned = run_solver(config(BackendKind::kGpuSim));
  EXPECT_EQ(tuned.result.iterations, baseline.result.iterations);
  // Launch shapes change scheduling, never the math.
  EXPECT_LT(gaia::testing::rel_l2_error(tuned.result.x, baseline.result.x),
            1e-10);
}

TEST_F(AutotuneIntegration, CheckpointsCrossTuningBoundaries) {
  // A checkpoint sealed by an untuned run must restore into an engine
  // running autotuned shapes (and vice versa): launch-shape tuning is
  // deliberately outside the problem fingerprint.
  auto gen = matrix::generate_system(gaia::testing::small_config(7));

  LsqrOptions untuned;
  untuned.aprod.backend = BackendKind::kGpuSim;
  untuned.aprod.tuning = backends::TuningTable::untuned({256, 256});
  untuned.max_iterations = 6;
  LsqrEngine writer(gen.A, untuned);
  writer.step();
  writer.step();
  std::ostringstream payload(std::ios::binary);
  writer.checkpoint(payload);

  LsqrOptions tuned = untuned;
  tuned.aprod.tuning = backends::TuningTable::tuned_default();
  LsqrEngine reader(gen.A, tuned);
  std::istringstream in(payload.str(), std::ios::binary);
  EXPECT_NO_THROW(reader.restore(in));
  EXPECT_EQ(reader.iteration(), 2);

  // The control: an actually different problem still refuses to load.
  auto other = matrix::generate_system(gaia::testing::small_config(8));
  LsqrEngine stranger(other.A, tuned);
  std::istringstream in2(payload.str(), std::ios::binary);
  EXPECT_THROW(stranger.restore(in2), Error);
}

TEST_F(AutotuneIntegration, DistAutotuneBroadcastKeepsRanksConsistent) {
  auto gen = matrix::generate_system(gaia::testing::medium_config(13));

  dist::DistLsqrOptions base;
  base.n_ranks = 3;
  base.lsqr.aprod.backend = BackendKind::kGpuSim;
  base.lsqr.max_iterations = 4;
  const dist::DistLsqrResult plain = dist::dist_lsqr_solve(gen.A, base);

  dist::DistLsqrOptions tuned = base;
  tuned.autotune = true;
  tuned.autotune_search.samples_per_config = 1;
  tuned.autotune_search.max_configs_per_kernel = 3;
  const dist::DistLsqrResult result = dist::dist_lsqr_solve(gen.A, tuned);

  // Rank 0 tuned and broadcast; every rank ran the same shapes, so the
  // collective trajectory is intact and matches the untuned solve.
  EXPECT_EQ(result.iterations, plain.iterations);
  EXPECT_TRUE(std::isfinite(result.rnorm));
  EXPECT_LT(gaia::testing::rel_l2_error(result.x, plain.x), 1e-8);
}

}  // namespace
}  // namespace gaia::core
