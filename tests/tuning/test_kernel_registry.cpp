/// Registry dispatch must be an invisible indirection: for every
/// (kernel, backend) pair the type-erased launcher has to produce output
/// bit-identical to calling the templated kernel directly. The launch
/// shape {1, 1} serializes the backends that honor it, and the small
/// system stays under the PSTL grain, so floating-point summation order
/// is fixed and exact equality is the right assertion.
#include "tuning/kernel_registry.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/aprod_kernels.hpp"
#include "core/kernel_catalog.hpp"
#include "matrix/generator.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace gaia::tuning {
namespace {

using backends::AtomicMode;
using backends::BackendKind;
using backends::KernelConfig;
using backends::KernelId;

/// The pre-registry dispatch: one explicit switch over the templated
/// instantiations. Kept here (and only here) as the oracle the registry
/// is checked against.
template <typename Exec>
void direct_launch(KernelId id, const core::SystemView& view, const real* in,
                   real* out, KernelConfig cfg, AtomicMode mode) {
  switch (id) {
    case KernelId::kAprod1Astro:
      core::aprod1_astro<Exec>(view, in, out, cfg);
      break;
    case KernelId::kAprod1Att:
      core::aprod1_att<Exec>(view, in, out, cfg);
      break;
    case KernelId::kAprod1Instr:
      core::aprod1_instr<Exec>(view, in, out, cfg);
      break;
    case KernelId::kAprod1Glob:
      core::aprod1_glob<Exec>(view, in, out, cfg);
      break;
    case KernelId::kAprod2Astro:
      core::aprod2_astro<Exec>(view, in, out, cfg);
      break;
    case KernelId::kAprod2Att:
      core::aprod2_att<Exec>(view, in, out, cfg, mode);
      break;
    case KernelId::kAprod2Instr:
      core::aprod2_instr<Exec>(view, in, out, cfg, mode);
      break;
    case KernelId::kAprod2Glob:
      core::aprod2_glob<Exec>(view, in, out, cfg, mode);
      break;
  }
}

constexpr bool is_aprod1(KernelId id) {
  return static_cast<int>(id) < static_cast<int>(KernelId::kAprod2Astro);
}

class KernelRegistryDispatch : public ::testing::Test {
 protected:
  void SetUp() override {
    core::ensure_kernel_catalog();
    gen_ = matrix::generate_system(gaia::testing::small_config(23));
    view_ = core::SystemView::from(gen_.A);
    util::Xoshiro256 rng(51);
    x_.resize(static_cast<std::size_t>(gen_.A.n_cols()));
    y_.resize(static_cast<std::size_t>(gen_.A.n_rows()));
    for (auto& v : x_) v = rng.normal();
    for (auto& v : y_) v = rng.normal();
  }

  matrix::GeneratedSystem gen_;
  core::SystemView view_{};
  std::vector<real> x_;
  std::vector<real> y_;
};

TEST_F(KernelRegistryDispatch, CatalogCoversEveryKernelOnEveryBackend) {
  const KernelRegistry& reg = KernelRegistry::global();
  EXPECT_EQ(reg.size(), static_cast<std::size_t>(backends::kNumKernels) *
                            static_cast<std::size_t>(backends::kNumBackends));
  for (BackendKind kind : backends::all_backends()) {
    for (KernelId id : backends::all_kernels())
      EXPECT_TRUE(reg.has(id, kind))
          << to_string(id) << " on " << to_string(kind);
    EXPECT_TRUE(reg.has_fused(kind)) << to_string(kind);
  }
}

TEST_F(KernelRegistryDispatch, BitIdenticalToDirectCallOnEveryPair) {
  const KernelRegistry& reg = KernelRegistry::global();
  const KernelConfig cfg{1, 1};  // serialize: fixed FP summation order
  for (BackendKind kind : backends::all_backends()) {
    for (KernelId id : backends::all_kernels()) {
      const std::vector<real>& in = is_aprod1(id) ? x_ : y_;
      const std::size_t out_n = is_aprod1(id) ? y_.size() : x_.size();
      std::vector<real> via_registry(out_n, 0.0);
      std::vector<real> via_direct(out_n, 0.0);

      LaunchArgs args;
      args.view = &view_;
      args.in = in.data();
      args.out = via_registry.data();
      args.config = cfg;
      args.atomic_mode = AtomicMode::kNativeRmw;
      reg.launch(id, kind, args);

      backends::dispatch(kind, [&](auto exec) {
        direct_launch<decltype(exec)>(id, view_, in.data(), via_direct.data(),
                                      cfg, AtomicMode::kNativeRmw);
      });

      for (std::size_t i = 0; i < out_n; ++i)
        ASSERT_EQ(via_registry[i], via_direct[i])
            << to_string(id) << " on " << to_string(kind) << " at " << i;
    }
  }
}

TEST_F(KernelRegistryDispatch, FusedLauncherMatchesDirectFusedCall) {
  const KernelRegistry& reg = KernelRegistry::global();
  const KernelConfig cfg{1, 1};
  for (BackendKind kind : backends::all_backends()) {
    std::vector<real> via_registry(x_.size(), 0.0);
    std::vector<real> via_direct(x_.size(), 0.0);

    LaunchArgs args;
    args.view = &view_;
    args.in = y_.data();
    args.out = via_registry.data();
    args.config = cfg;
    args.atomic_mode = AtomicMode::kNativeRmw;
    reg.launch_fused(kind, args);

    backends::dispatch(kind, [&](auto exec) {
      core::aprod2_shared_fused<decltype(exec)>(view_, y_.data(),
                                                via_direct.data(), cfg,
                                                AtomicMode::kNativeRmw);
    });

    for (std::size_t i = 0; i < via_direct.size(); ++i)
      ASSERT_EQ(via_registry[i], via_direct[i])
          << "fused on " << to_string(kind) << " at " << i;
  }
}

TEST_F(KernelRegistryDispatch, CasModeFlowsThroughTheLaunchArgs) {
  // The atomic lowering is part of LaunchArgs; both lowerings must reach
  // the kernel and agree with the direct call exactly (serialized).
  const KernelRegistry& reg = KernelRegistry::global();
  std::vector<real> via_registry(x_.size(), 0.0);
  std::vector<real> via_direct(x_.size(), 0.0);
  LaunchArgs args;
  args.view = &view_;
  args.in = y_.data();
  args.out = via_registry.data();
  args.config = {1, 1};
  args.atomic_mode = AtomicMode::kCasLoop;
  reg.launch(KernelId::kAprod2Att, BackendKind::kOpenMP, args);
  core::aprod2_att<backends::OpenMPExec>(view_, y_.data(), via_direct.data(),
                                         {1, 1}, AtomicMode::kCasLoop);
  for (std::size_t i = 0; i < via_direct.size(); ++i)
    ASSERT_EQ(via_registry[i], via_direct[i]) << i;
}

TEST(KernelRegistry, UnregisteredLaunchThrows) {
  KernelRegistry reg;  // local and empty: the global one is always full
  EXPECT_FALSE(reg.has(KernelId::kAprod1Astro, BackendKind::kSerial));
  EXPECT_FALSE(reg.has_fused(BackendKind::kSerial));
  EXPECT_EQ(reg.size(), 0u);
  LaunchArgs args;
  EXPECT_THROW(reg.launch(KernelId::kAprod1Astro, BackendKind::kSerial, args),
               Error);
  EXPECT_THROW(reg.launch_fused(BackendKind::kSerial, args), Error);
}

TEST(KernelRegistry, NullLauncherIsRejected) {
  KernelRegistry reg;
  EXPECT_THROW(reg.add(KernelId::kAprod1Astro, BackendKind::kSerial, nullptr),
               Error);
  EXPECT_THROW(reg.add_fused(BackendKind::kSerial, nullptr), Error);
}

}  // namespace
}  // namespace gaia::tuning
