/// The search contract: greedy coordinate descent over the pow-2 grid,
/// medians as scores, atomic kernels seeded narrow, shape-blind backends
/// never searched, stale measurements ignored, budget respected.
#include "tuning/autotuner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace gaia::tuning {
namespace {

using backends::BackendKind;
using backends::KernelConfig;
using backends::KernelId;

/// Synthetic oracle with a unique grid minimum: time grows with the
/// log-distance from (best_blocks, best_threads), so coordinate descent
/// must walk downhill to it from any seed.
double oracle_seconds(KernelConfig cfg, std::int32_t best_blocks,
                      std::int32_t best_threads) {
  const double db = std::log2(static_cast<double>(cfg.blocks)) -
                    std::log2(static_cast<double>(best_blocks));
  const double dt = std::log2(static_cast<double>(cfg.threads)) -
                    std::log2(static_cast<double>(best_threads));
  return 1e-3 * (1.0 + std::abs(db) + std::abs(dt));
}

/// Drives one kernel's search against the oracle to completion.
void search_kernel(Autotuner& tuner, KernelId id, std::int32_t best_blocks,
                   std::int32_t best_threads, int max_steps = 1000) {
  for (int step = 0; step < max_steps && tuner.searching(id); ++step) {
    const KernelConfig cfg = tuner.propose(id);
    tuner.report(id, cfg, oracle_seconds(cfg, best_blocks, best_threads));
  }
  ASSERT_FALSE(tuner.searching(id));
}

AutotuneOptions one_sample() {
  AutotuneOptions opts;
  opts.samples_per_config = 1;
  opts.max_configs_per_kernel = 64;  // let the descent run to its end
  return opts;
}

TEST(Autotuner, InactiveOnShapeBlindBackends) {
  for (BackendKind kind : {BackendKind::kSerial, BackendKind::kPstl}) {
    Autotuner tuner(kind);
    EXPECT_FALSE(tuner.active()) << to_string(kind);
    for (KernelId id : backends::all_kernels()) {
      EXPECT_FALSE(tuner.searching(id));
      EXPECT_TRUE(tuner.propose(id).is_default());
      EXPECT_FALSE(tuner.report(id, {32, 32}, 1e-3));
    }
    EXPECT_EQ(tuner.trials(), 0u);
    // apply_winners must leave the base table untouched.
    const auto base = backends::TuningTable::tuned_default();
    EXPECT_EQ(tuner.apply_winners(base), base);
  }
}

TEST(Autotuner, ActiveOnShapeHonoringBackends) {
  for (BackendKind kind : {BackendKind::kOpenMP, BackendKind::kGpuSim}) {
    Autotuner tuner(kind);
    EXPECT_TRUE(tuner.active()) << to_string(kind);
    EXPECT_EQ(tuner.backend(), kind);
  }
}

TEST(Autotuner, AtomicKernelsSeedNarrowGathersSeedWide) {
  Autotuner tuner(BackendKind::kGpuSim);
  // First proposal == the seed of the descent (the paper's prior).
  EXPECT_EQ(tuner.propose(KernelId::kAprod2Att), (KernelConfig{32, 32}));
  EXPECT_EQ(tuner.propose(KernelId::kAprod2Glob), (KernelConfig{32, 32}));
  EXPECT_EQ(tuner.propose(KernelId::kAprod1Astro), (KernelConfig{128, 128}));
  EXPECT_EQ(tuner.propose(KernelId::kAprod2Astro), (KernelConfig{128, 128}));
}

TEST(Autotuner, DescentConvergesToTheOracleMinimum) {
  Autotuner tuner(BackendKind::kGpuSim, one_sample());
  // Minima chosen off-seed on both axes so the descent has to move.
  search_kernel(tuner, KernelId::kAprod1Astro, 256, 512);
  EXPECT_EQ(tuner.best(KernelId::kAprod1Astro), (KernelConfig{256, 512}));
  search_kernel(tuner, KernelId::kAprod2Att, 8, 128);
  EXPECT_EQ(tuner.best(KernelId::kAprod2Att), (KernelConfig{8, 128}));
  EXPECT_EQ(tuner.kernels_tuned(), 2);
  EXPECT_NEAR(tuner.best_median_s(KernelId::kAprod2Att), 1e-3, 1e-9);
}

TEST(Autotuner, MedianOfSamplesScoresACandidate) {
  AutotuneOptions opts;
  opts.samples_per_config = 3;
  Autotuner tuner(BackendKind::kGpuSim, opts);
  const KernelId id = KernelId::kAprod1Att;
  const KernelConfig seed = tuner.propose(id);
  // One wild outlier must not poison the score: median(1ms, 1ms, 1s).
  EXPECT_FALSE(tuner.report(id, seed, 1e-3));
  EXPECT_FALSE(tuner.report(id, seed, 1.0));
  tuner.report(id, seed, 1e-3);
  EXPECT_EQ(tuner.best(id), seed);
  EXPECT_NEAR(tuner.best_median_s(id), 1e-3, 1e-12);
}

TEST(Autotuner, StaleReportsAreIgnored) {
  Autotuner tuner(BackendKind::kGpuSim, one_sample());
  const KernelId id = KernelId::kAprod1Astro;
  const KernelConfig current = tuner.propose(id);
  const KernelConfig stale{current.blocks * 2, current.threads};
  // A failover launch ran elsewhere: its timing must not be scored.
  EXPECT_FALSE(tuner.report(id, stale, 1e-9));
  EXPECT_EQ(tuner.trials(), 0u);
  EXPECT_TRUE(tuner.best(id).is_default());  // nothing scored yet
  // The real candidate still scores normally afterwards.
  tuner.report(id, current, 1e-3);
  EXPECT_EQ(tuner.best(id), current);
}

TEST(Autotuner, BudgetCapsTheSearch) {
  AutotuneOptions opts = one_sample();
  opts.max_configs_per_kernel = 1;
  Autotuner tuner(BackendKind::kGpuSim, opts);
  const KernelId id = KernelId::kAprod2Instr;
  const KernelConfig seed = tuner.propose(id);
  // The very first scored candidate exhausts the budget and closes the
  // search — report() returns true exactly on the closing call.
  EXPECT_TRUE(tuner.report(id, seed, 1e-3));
  EXPECT_FALSE(tuner.searching(id));
  EXPECT_EQ(tuner.best(id), seed);
  EXPECT_EQ(tuner.trials(), 1u);
}

TEST(Autotuner, FinishClosesEverySearchKeepingWinners) {
  Autotuner tuner(BackendKind::kGpuSim, one_sample());
  const KernelId id = KernelId::kAprod1Glob;
  const KernelConfig seed = tuner.propose(id);
  tuner.report(id, seed, 1e-3);
  tuner.finish();
  EXPECT_FALSE(tuner.active());
  EXPECT_EQ(tuner.best(id), seed);
  // Unscored kernels stay at the base shape when winners are applied.
  const auto base = backends::TuningTable::untuned({64, 64});
  const auto tuned = tuner.apply_winners(base);
  EXPECT_EQ(tuned.get(id), seed);
  EXPECT_EQ(tuned.get(KernelId::kAprod2Att), (KernelConfig{64, 64}));
}

TEST(Autotuner, ProposeAfterCloseReturnsTheWinner) {
  AutotuneOptions opts = one_sample();
  opts.max_configs_per_kernel = 1;
  Autotuner tuner(BackendKind::kGpuSim, opts);
  const KernelId id = KernelId::kAprod1Instr;
  const KernelConfig seed = tuner.propose(id);
  tuner.report(id, seed, 1e-3);
  EXPECT_EQ(tuner.propose(id), seed);  // steady state: best known shape
}

TEST(Autotuner, InvalidSearchOptionsAreRejected) {
  AutotuneOptions bad_samples;
  bad_samples.samples_per_config = 0;
  EXPECT_THROW(Autotuner(BackendKind::kGpuSim, bad_samples), Error);

  AutotuneOptions bad_grid;
  bad_grid.block_grid = {-8, 16};
  EXPECT_THROW(Autotuner(BackendKind::kGpuSim, bad_grid), Error);

  AutotuneOptions empty_grid;
  empty_grid.thread_grid.clear();
  EXPECT_THROW(Autotuner(BackendKind::kGpuSim, empty_grid), Error);
}

TEST(Autotuner, PinnedPrivatizedSearchesOnlyThatArm) {
  AutotuneOptions opts = one_sample();
  opts.scatter = backends::ScatterStrategy::kPrivatized;
  Autotuner tuner(BackendKind::kGpuSim, opts);
  const KernelId id = KernelId::kAprod2Att;
  // The privatized arm has no collisions to avoid: it seeds wide.
  EXPECT_EQ(tuner.propose(id),
            (KernelConfig{128, 128, backends::ScatterStrategy::kPrivatized}));
  search_kernel(tuner, id, 64, 128);
  EXPECT_EQ(tuner.best(id).strategy,
            backends::ScatterStrategy::kPrivatized);
  // Gather kernels are strategy-blind and keep their wide atomic seed.
  EXPECT_EQ(tuner.propose(KernelId::kAprod1Astro).strategy,
            backends::ScatterStrategy::kAtomic);
}

TEST(Autotuner, OpenStrategyAxisMeasuresBothArmsAndKeepsTheFaster) {
  AutotuneOptions opts = one_sample();
  opts.scatter = std::nullopt;
  Autotuner tuner(BackendKind::kGpuSim, opts);
  const KernelId id = KernelId::kAprod2Att;
  // Oracle: privatized launches are uniformly 3x faster (a contended
  // scatter) — the winner must carry the privatized strategy.
  for (int step = 0; step < 2000 && tuner.searching(id); ++step) {
    const KernelConfig cfg = tuner.propose(id);
    const double base = oracle_seconds(cfg, 64, 128);
    tuner.report(
        id, cfg,
        cfg.strategy == backends::ScatterStrategy::kPrivatized ? base / 3
                                                               : base);
  }
  ASSERT_FALSE(tuner.searching(id));
  EXPECT_EQ(tuner.best(id).strategy,
            backends::ScatterStrategy::kPrivatized);
  // Both arms were genuinely descended: each holds a scored best, and
  // the per-arm medians reproduce the 3x oracle gap at the optimum.
  const double atomic_med =
      tuner.best_median_for(id, backends::ScatterStrategy::kAtomic);
  const double priv_med =
      tuner.best_median_for(id, backends::ScatterStrategy::kPrivatized);
  EXPECT_LT(atomic_med, std::numeric_limits<double>::infinity());
  EXPECT_NEAR(priv_med, atomic_med / 3, 1e-9);
  EXPECT_EQ(tuner.best_for(id, backends::ScatterStrategy::kAtomic).strategy,
            backends::ScatterStrategy::kAtomic);
}

TEST(Autotuner, OpenStrategyAxisKeepsAtomicWhenItWins) {
  AutotuneOptions opts = one_sample();
  opts.scatter = std::nullopt;
  Autotuner tuner(BackendKind::kGpuSim, opts);
  const KernelId id = KernelId::kAprod2Glob;
  for (int step = 0; step < 2000 && tuner.searching(id); ++step) {
    const KernelConfig cfg = tuner.propose(id);
    const double base = oracle_seconds(cfg, 32, 64);
    // Here the scratch reduction costs more than the atomics save.
    tuner.report(
        id, cfg,
        cfg.strategy == backends::ScatterStrategy::kPrivatized ? base * 2
                                                               : base);
  }
  ASSERT_FALSE(tuner.searching(id));
  EXPECT_EQ(tuner.best(id).strategy, backends::ScatterStrategy::kAtomic);
  EXPECT_EQ(tuner.best(id), (KernelConfig{32, 64}));
}

TEST(AutotunerEncoding, TableRoundTripsThroughTheBroadcastEncoding) {
  backends::TuningTable table = backends::TuningTable::tuned_default();
  table.set(KernelId::kAprod1Glob, {3, 7});
  table.set(KernelId::kAprod2Att,
            {16, 32, backends::ScatterStrategy::kPrivatized,
             backends::StorageLayout::kSoaTiled});
  table.set(KernelId::kAprod2Instr,
            {8, 64, backends::ScatterStrategy::kAtomic,
             backends::StorageLayout::kSlicedInstr});
  // Mixed precisions must survive the 5-real-per-kernel wire format the
  // rank-0 broadcast uses.
  table.set(KernelId::kAprod1Astro,
            {64, 128, backends::ScatterStrategy::kAtomic,
             backends::StorageLayout::kSoaTiled, backends::Precision::kFp32});
  table.set(KernelId::kAprod1Att,
            {64, 128, backends::ScatterStrategy::kAtomic,
             backends::StorageLayout::kSeedAos,
             backends::Precision::kBf16s});
  const std::vector<real> wire = encode_table(table);
  EXPECT_EQ(wire.size(), kEncodedTableSize);
  EXPECT_EQ(decode_table(wire), table);
}

TEST(AutotunerEncoding, WrongElementCountThrows) {
  std::vector<real> wire(kEncodedTableSize - 1, 0.0);
  EXPECT_THROW((void)decode_table(wire), Error);
}

TEST(AutotunerEncoding, UnknownStrategyCodeThrows) {
  backends::TuningTable table = backends::TuningTable::tuned_default();
  std::vector<real> wire = encode_table(table);
  wire[2] = 9;  // not a ScatterStrategy enumerator
  EXPECT_THROW((void)decode_table(wire), Error);
}

TEST(AutotunerEncoding, UnknownLayoutCodeThrows) {
  backends::TuningTable table = backends::TuningTable::tuned_default();
  std::vector<real> wire = encode_table(table);
  wire[3] = 9;  // not a StorageLayout enumerator
  EXPECT_THROW((void)decode_table(wire), Error);
}

TEST(AutotunerEncoding, UnknownPrecisionCodeThrows) {
  backends::TuningTable table = backends::TuningTable::tuned_default();
  std::vector<real> wire = encode_table(table);
  wire[4] = 9;  // not a Precision enumerator
  EXPECT_THROW((void)decode_table(wire), Error);
}

}  // namespace
}  // namespace gaia::tuning
