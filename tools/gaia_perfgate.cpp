/// \file gaia_perfgate.cpp
/// \brief CLI perf-regression gate over BENCH_<name>.json baselines.
///
///   gaia-perfgate OLD.json NEW.json [--tolerance X] [--allow-missing]
///
/// Exit codes: 0 = within tolerance, 1 = regression (or a series
/// vanished without --allow-missing), 2 = usage / I/O / parse error.
/// CI runs this between a committed baseline and a fresh bench run; the
/// nonzero exit is what turns a silent slowdown into a red build.
#include <cstdlib>
#include <iostream>
#include <string>

#include "metrics/perf_baseline.hpp"
#include "util/error.hpp"

namespace {

constexpr const char* kUsage =
    "usage: gaia-perfgate OLD.json NEW.json [--tolerance X] "
    "[--allow-missing]\n"
    "  --tolerance X    allowed fractional slowdown (default 0.25)\n"
    "  --allow-missing  series missing from NEW do not fail the gate\n"
    "exit codes: 0 = gate passes, 1 = regression detected, 2 = bad "
    "input\n"
    "(the same contract as gaia-critpath, so CI can pipeline both)\n";

int fail_usage(const std::string& why) {
  std::cerr << "gaia-perfgate: " << why << '\n' << kUsage;
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string old_path, new_path;
  gaia::metrics::GateOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--allow-missing") {
      options.allow_missing = true;
    } else if (arg == "--tolerance" || arg.rfind("--tolerance=", 0) == 0) {
      std::string value;
      if (arg == "--tolerance") {
        if (++i >= argc) return fail_usage("--tolerance needs a value");
        value = argv[i];
      } else {
        value = arg.substr(std::string("--tolerance=").size());
      }
      char* end = nullptr;
      options.tolerance = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || options.tolerance < 0)
        return fail_usage("bad --tolerance value '" + value + "'");
    } else if (arg.rfind("--", 0) == 0) {
      return fail_usage("unknown option '" + arg + "'");
    } else if (old_path.empty()) {
      old_path = arg;
    } else if (new_path.empty()) {
      new_path = arg;
    } else {
      return fail_usage("too many positional arguments");
    }
  }
  if (old_path.empty() || new_path.empty())
    return fail_usage("need OLD.json and NEW.json");

  try {
    const auto base = gaia::metrics::load_baseline(old_path);
    const auto next = gaia::metrics::load_baseline(new_path);
    const auto report = gaia::metrics::perf_gate(base, next, options);
    std::cout << "comparing '" << base.name << "' (" << base.kernels.size()
              << " series) against '" << next.name << "' ("
              << next.kernels.size() << " series), tolerance "
              << options.tolerance << ":\n"
              << report.to_string();
    return report.pass ? 0 : 1;
  } catch (const gaia::Error& e) {
    std::cerr << "gaia-perfgate: " << e.what() << '\n';
    return 2;
  }
}
