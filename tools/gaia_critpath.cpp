/// \file gaia_critpath.cpp
/// \brief CLI critical-path / comm-exposure analyzer over merged traces.
///
///   gaia-critpath TRACE.json [more-rank-traces...] [options]
///
/// Accepts either one already-merged trace (trace.merged.json from a
/// distributed run) or the individual trace.rank<N>.json files, which it
/// merges itself (clock-aligned via their epoch_offset_us headers;
/// --merge-out saves the result). Every input is strictly parsed and
/// validated — a torn or malformed trace exits 2, never a silently
/// truncated report.
///
/// Exit codes (gaia-perfgate convention): 0 = analysis ran and all gates
/// pass, 1 = a gate tripped (--max-exposure / --max-skew-us, or a
/// partial trace without --allow-partial), 2 = usage / I/O / parse /
/// validation error.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "obs/critpath.hpp"
#include "obs/trace_merge.hpp"
#include "util/error.hpp"

namespace {

constexpr const char* kUsage =
    "usage: gaia-critpath TRACE.json [TRACE2.json ...] [options]\n"
    "  inputs: one merged trace, or several per-rank traces (merged\n"
    "          here using their epoch_offset_us clock-alignment headers)\n"
    "  --merge-out PATH   write the merged timeline (Perfetto-loadable)\n"
    "  --json             print the report as JSON instead of a table\n"
    "  --max-exposure X   gate: fail (exit 1) when overall comm exposure\n"
    "                     (exposed comm / critical path) exceeds X\n"
    "  --max-skew-us X    gate: fail when any iteration's rank-start\n"
    "                     skew exceeds X microseconds\n"
    "  --allow-partial    accept traces missing ranks or iterations\n"
    "exit codes: 0 = gates pass, 1 = gate tripped, 2 = bad input\n";

int fail_usage(const std::string& why) {
  std::cerr << "gaia-critpath: " << why << '\n' << kUsage;
  return 2;
}

double parse_double(const std::string& flag, const std::string& value,
                    bool& ok) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  ok = end != value.c_str() && *end == '\0' && v >= 0;
  if (!ok) std::cerr << "gaia-critpath: bad " << flag << " value '" << value
                     << "'\n";
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string merge_out;
  bool as_json = false;
  gaia::obs::CritpathOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (++i >= argc) return "";
      return argv[i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--json") {
      as_json = true;
    } else if (arg == "--allow-partial") {
      options.allow_partial = true;
    } else if (arg == "--merge-out" || arg.rfind("--merge-out=", 0) == 0) {
      merge_out = value_of("--merge-out");
      if (merge_out.empty()) return fail_usage("--merge-out needs a path");
    } else if (arg == "--max-exposure" ||
               arg.rfind("--max-exposure=", 0) == 0) {
      const std::string v = value_of("--max-exposure");
      if (v.empty()) return fail_usage("--max-exposure needs a value");
      bool ok = false;
      options.max_exposure_fraction = parse_double("--max-exposure", v, ok);
      if (!ok) return 2;
    } else if (arg == "--max-skew-us" ||
               arg.rfind("--max-skew-us=", 0) == 0) {
      const std::string v = value_of("--max-skew-us");
      if (v.empty()) return fail_usage("--max-skew-us needs a value");
      bool ok = false;
      options.max_skew_us = parse_double("--max-skew-us", v, ok);
      if (!ok) return 2;
    } else if (arg.rfind("--", 0) == 0) {
      return fail_usage("unknown option '" + arg + "'");
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return fail_usage("need at least one trace file");

  try {
    gaia::obs::TraceDoc doc;
    if (inputs.size() == 1) {
      doc = gaia::obs::parse_trace_file(inputs.front());
      gaia::obs::validate_trace(doc);
      // A single per-rank file is analyzable on its own (shift applied
      // so times are on the world clock, like a one-rank merge).
      if (!doc.merged && doc.rank >= 0) {
        doc = gaia::obs::merge_traces({doc});
      }
    } else {
      std::vector<gaia::obs::TraceDoc> docs;
      docs.reserve(inputs.size());
      for (const std::string& path : inputs) {
        docs.push_back(gaia::obs::parse_trace_file(path));
        gaia::obs::validate_trace(docs.back());
      }
      doc = gaia::obs::merge_traces(docs);
    }
    gaia::obs::validate_trace(doc);
    if (!merge_out.empty()) {
      gaia::obs::write_trace(doc, merge_out);
      std::cerr << "gaia-critpath: merged timeline written to " << merge_out
                << '\n';
    }

    const gaia::obs::CritpathReport report = gaia::obs::analyze_critpath(doc);
    std::cout << (as_json ? gaia::obs::to_json(report)
                          : gaia::obs::to_string(report));
    if (as_json) std::cout << '\n';

    const std::vector<std::string> violations =
        gaia::obs::check_gates(report, options);
    for (const std::string& v : violations)
      std::cerr << "gaia-critpath: GATE: " << v << '\n';
    return violations.empty() ? 0 : 1;
  } catch (const gaia::Error& e) {
    std::cerr << "gaia-critpath: " << e.what() << '\n';
    return 2;
  }
}
