/// \file gaia_postmortem.cpp
/// \brief CLI reader for flight-recorder postmortem bundles.
///
///   gaia-postmortem BUNDLE.json [more-bundles...] [options]
///
/// Loads one or more CRC-framed bundles (postmortem.json /
/// postmortem.rank<N>.json), prints the failure diagnosis, the config
/// fingerprint, the flight-event timeline tail, the headline metrics and
/// the telemetry tail. A torn or bit-rotted bundle is rejected loudly —
/// the framing footer makes "half a postmortem" impossible to mistake
/// for a whole one.
///
/// Exit codes (gaia-perfgate convention): 0 = every bundle parsed (and
/// matched --expect when given), 1 = a bundle parsed but its reason did
/// not match --expect, 2 = usage / missing / torn / malformed bundle.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "util/error.hpp"

namespace {

constexpr const char* kUsage =
    "usage: gaia-postmortem BUNDLE.json [BUNDLE2.json ...] [options]\n"
    "  --expect REASON   gate: fail (exit 1) when a bundle's failure\n"
    "                    reason is not REASON (e.g. rank-death,\n"
    "                    sdc-unrepaired, exception)\n"
    "  --events N        show at most N timeline events per bundle\n"
    "                    (default 20, 0 = all)\n"
    "  --metrics         also print every metric row (default: top 12)\n"
    "exit codes: 0 = parsed (and expectation met), 1 = --expect\n"
    "            mismatch, 2 = missing/torn/malformed bundle\n";

int fail_usage(const std::string& why) {
  std::cerr << "gaia-postmortem: " << why << '\n' << kUsage;
  return 2;
}

void print_bundle(const gaia::obs::PostmortemBundle& bundle,
                  const std::string& path, std::size_t max_events,
                  bool all_metrics) {
  std::cout << "== " << path << " ==\n";
  std::cout << "reason:  " << bundle.info.reason << '\n';
  if (!bundle.info.detail.empty())
    std::cout << "detail:  " << bundle.info.detail << '\n';
  std::cout << "scope:   "
            << (bundle.info.rank < 0
                    ? std::string("cluster/process")
                    : "rank " + std::to_string(bundle.info.rank))
            << " of " << bundle.info.ranks << " rank(s)\n";

  if (!bundle.context.empty()) {
    std::cout << "fingerprint:\n";
    for (const auto& [key, value] : bundle.context)
      std::cout << "  " << key << " = " << value << '\n';
  }

  std::cout << "timeline (" << bundle.events.size() << " event(s)";
  if (bundle.events_dropped > 0)
    std::cout << ", " << bundle.events_dropped << " dropped before tail";
  std::cout << "):\n";
  std::size_t begin = 0;
  if (max_events > 0 && bundle.events.size() > max_events) {
    begin = bundle.events.size() - max_events;
    std::cout << "  ... " << begin << " earlier event(s) elided ...\n";
  }
  for (std::size_t i = begin; i < bundle.events.size(); ++i) {
    const gaia::obs::FlightEvent& e = bundle.events[i];
    char stamp[64];
    std::snprintf(stamp, sizeof(stamp), "  [%10.3fs]", e.t_s);
    std::cout << stamp << ' ' << e.category << '/' << e.name;
    if (e.rank >= 0) std::cout << " rank=" << e.rank;
    if (e.iteration >= 0) std::cout << " itn=" << e.iteration;
    if (!e.detail.empty()) std::cout << "  " << e.detail;
    std::cout << '\n';
  }

  if (!bundle.metrics.empty()) {
    std::size_t shown = all_metrics ? bundle.metrics.size()
                                    : std::min<std::size_t>(
                                          bundle.metrics.size(), 12);
    std::cout << "metrics (" << shown << " of " << bundle.metrics.size()
              << " row(s)):\n";
    for (std::size_t i = 0; i < shown; ++i) {
      const gaia::obs::MetricRow& r = bundle.metrics[i];
      char line[192];
      std::snprintf(line, sizeof(line),
                    "  %-44s count=%llu last=%.6g sum=%.6g",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.count), r.last,
                    r.sum);
      std::cout << line << '\n';
    }
  }

  if (!bundle.trace_tail.empty()) {
    std::cout << "trace tail (" << bundle.trace_tail.size()
              << " event(s)";
    if (bundle.trace_dropped > 0)
      std::cout << ", " << bundle.trace_dropped << " dropped by the ring";
    std::cout << "):\n";
    for (const gaia::obs::PostmortemTraceEvent& t : bundle.trace_tail) {
      char line[160];
      std::snprintf(line, sizeof(line), "  [%12.1fus] %c %s (%s) %.1fus",
                    t.ts_us, t.phase, t.name.c_str(), t.cat.c_str(),
                    t.dur_us);
      std::cout << line << '\n';
    }
  }

  if (!bundle.telemetry_tail.empty()) {
    std::cout << "telemetry tail (" << bundle.telemetry_tail.size()
              << " sample(s)):\n";
    for (const std::string& line : bundle.telemetry_tail)
      std::cout << "  " << line << '\n';
  }

  // One-line diagnosis keyed on the machine-matchable reason class, so
  // an operator eyeballing CI logs gets the verdict without scrolling.
  std::cout << "diagnosis: ";
  if (bundle.info.reason == "sdc-unrepaired") {
    std::cout << "silent data corruption exceeded the repair budget; "
                 "see the last health verdict above\n";
  } else if (bundle.info.reason == "rank-death") {
    std::cout << "a rank died mid-solve; this is the dying rank's own "
                 "bundle\n";
  } else if (bundle.info.reason == "rank-death-unrecovered") {
    std::cout << "rank death exhausted the restart budget; the cluster "
                 "gave up\n";
  } else if (bundle.info.reason == "world-poisoned") {
    std::cout << "collateral unwind: a peer failed first, check its "
                 "bundle\n";
  } else if (bundle.info.reason == "exception") {
    std::cout << "unclassified exception escaped the solver; detail "
                 "above\n";
  } else {
    std::cout << "recorded reason '" << bundle.info.reason << "'\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string expect;
  std::size_t max_events = 20;
  bool all_metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      if (++i >= argc) return "";
      return argv[i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    }
    if (arg == "--metrics") {
      all_metrics = true;
    } else if (arg == "--expect" || arg.rfind("--expect=", 0) == 0) {
      expect = value_of("--expect");
      if (expect.empty()) return fail_usage("--expect needs a reason");
    } else if (arg == "--events" || arg.rfind("--events=", 0) == 0) {
      const std::string v = value_of("--events");
      if (v.empty()) return fail_usage("--events needs a count");
      char* end = nullptr;
      const long n = std::strtol(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0' || n < 0)
        return fail_usage("bad --events value '" + v + "'");
      max_events = static_cast<std::size_t>(n);
    } else if (arg.rfind("--", 0) == 0) {
      return fail_usage("unknown option '" + arg + "'");
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return fail_usage("need at least one bundle file");

  bool expectation_failed = false;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    gaia::obs::PostmortemBundle bundle;
    try {
      bundle = gaia::obs::read_postmortem_file(inputs[i]);
    } catch (const gaia::Error& e) {
      std::cerr << "gaia-postmortem: " << inputs[i] << ": " << e.what()
                << '\n';
      return 2;
    }
    if (i > 0) std::cout << '\n';
    print_bundle(bundle, inputs[i], max_events, all_metrics);
    if (!expect.empty() && bundle.info.reason != expect) {
      std::cerr << "gaia-postmortem: " << inputs[i] << ": reason '"
                << bundle.info.reason << "' != expected '" << expect
                << "'\n";
      expectation_failed = true;
    }
  }
  return expectation_failed ? 1 : 0;
}
