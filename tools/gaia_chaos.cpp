/// \file gaia_chaos.cpp
/// \brief gaia-chaos — deterministic fault-campaign runner for the SDC
/// defense pipeline.
///
/// Solves a seeded synthetic system once fault-free (the reference),
/// then replays the same solve under a sweep of seeded fault campaigns
/// — silent bit flips in kernel outputs, rank deaths — with the health
/// monitor in repair mode, and asserts that every campaign is detected,
/// repaired, and lands on a final solution within the validation
/// tolerance of the reference (the paper's fig. 6 criterion: the
/// backends — and here, the repaired trajectories — must agree).
///
/// Exit contract (the perf-gate convention, consumable by CI):
///   0  every campaign repaired and within tolerance
///   1  a campaign went unrepaired, was never detected, or missed the
///      tolerance
///   2  bad invocation or campaign spec
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/lsqr.hpp"
#include "dist/dist_lsqr.hpp"
#include "matrix/generator.hpp"
#include "obs/flight_recorder.hpp"
#include "resilience/fault_injector.hpp"
#include "resilience/health_monitor.hpp"
#include "util/error.hpp"
#include "util/string_utils.hpp"

namespace {

constexpr const char* kUsage = R"(usage: gaia-chaos [options]

Deterministic fault-campaign runner: solves a seeded reference, replays
it under seeded SDC / rank-death campaigns with --health repair, and
verifies detection, repair, and final-solution agreement.

options:
  --size BYTES        synthetic system footprint (default 4MB)
  --iterations N      LSQR iterations per solve (default 60)
  --backend NAME      aprod backend (default serial)
  --ranks N           simulated MPI ranks; 1 = single-process (default 1)
  --seed N            injector RNG seed (default 1746)
  --health MODE       detect|repair (default repair)
  --health-every N    deep-check cadence in iterations (default 10)
  --tolerance T       max relative L2 distance from the reference
                      solution (default 1e-9; repaired replays are
                      deterministic and normally match bit-for-bit)
  --campaign NAME     run only the named built-in campaign (repeatable)
  --faults SPEC       run a custom campaign with this injector spec
                      instead of the built-ins (repeatable; grammar of
                      GAIA_FAULTS, see resilience/fault_injector.hpp)
  --report PATH       write the JSON campaign report to PATH
  --postmortem-dir D  arm the flight recorder: every campaign seals a
                      postmortem.<name>.json bundle into D (plus the
                      per-rank bundles the failure paths themselves
                      flush), readable with gaia-postmortem
  --list              list built-in campaigns and exit
  --help              this text

exit status: 0 all campaigns repaired + within tolerance,
             1 unrepaired / undetected / tolerance miss, 2 bad input.
)";

[[noreturn]] void fail_usage(const std::string& message) {
  std::cerr << "gaia-chaos: " << message << "\n\n" << kUsage;
  std::exit(2);
}

struct Campaign {
  std::string name;
  std::string spec;           ///< injector clause(s), GAIA_FAULTS grammar
  std::int64_t injected_iteration = -1;  ///< -1 = not iteration-pinned
  bool needs_ranks = false;   ///< only meaningful with --ranks > 1
  bool expects_detection = true;  ///< health monitor must trip (sdc);
                                  ///< rank deaths recover loudly instead
};

/// Built-in sweep: mantissa and exponent flips in both aprod passes at
/// early/mid/late iterations, plus a rank death when running multi-rank.
/// Iterations are chosen inside the default 60-iteration solve and off
/// the deep-check cadence, so same-iteration ABFT detection (not the
/// periodic deep pass) is what the sdc campaigns exercise.
std::vector<Campaign> builtin_campaigns() {
  return {
      {"sdc-aprod2-mant", "sdc:kernel=aprod2,iter=12,bit=51", 12, false, true},
      {"sdc-aprod2-exp", "sdc:kernel=aprod2,iter=23,bit=62", 23, false, true},
      {"sdc-aprod1-mant", "sdc:kernel=aprod1,iter=17,bit=55", 17, false, true},
      {"sdc-late", "sdc:kernel=aprod2,iter=41,bit=52", 41, false, true},
      {"rank-death", "rank:rank=1,iter=28", 28, true, false},
  };
}

struct Options {
  gaia::byte_size size = 4 * gaia::kMiB;
  std::int64_t iterations = 60;
  std::string backend = "serial";
  int ranks = 1;
  std::uint64_t seed = 1746;
  std::string health_mode = "repair";
  std::int64_t health_every = 10;
  double tolerance = 1e-9;
  std::vector<std::string> selected;       ///< --campaign filters
  std::vector<std::string> custom_faults;  ///< --faults specs
  std::string report_path;
  std::string postmortem_dir;
  bool list = false;
};

struct CampaignOutcome {
  Campaign campaign;
  std::string status;  ///< repaired | recovered | unrepaired |
                       ///< undetected | tolerance-miss | error
  bool pass = false;
  std::uint64_t detections = 0;
  std::uint64_t repairs = 0;
  int restarts = 0;
  std::int64_t first_detection_iteration = -1;
  std::int64_t detection_latency = -1;  ///< iterations from flip to trip
  double rel_l2_vs_reference = -1;
  std::string diagnosis;
};

/// One solve under whatever the global injector is armed with.
struct SolveOutcome {
  std::vector<gaia::real> x;
  gaia::resilience::HealthReport health;
  int restarts = 0;
};

SolveOutcome run_solve(const gaia::matrix::SystemMatrix& A,
                       const gaia::core::LsqrOptions& lsqr,
                       int ranks) {
  SolveOutcome out;
  if (ranks <= 1) {
    const auto result = gaia::core::lsqr_solve(A, lsqr);
    out.x = result.x;
    out.health = result.health;
  } else {
    gaia::dist::DistLsqrOptions dopts;
    dopts.n_ranks = ranks;
    dopts.lsqr = lsqr;
    const auto result = gaia::dist::dist_lsqr_solve(A, dopts);
    out.x = result.x;
    out.health = result.health;
    out.restarts = result.restarts;
  }
  return out;
}

double rel_l2(const std::vector<gaia::real>& x,
              const std::vector<gaia::real>& ref) {
  double diff = 0, norm = 0;
  const std::size_t n = std::min(x.size(), ref.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(x[i]) - static_cast<double>(ref[i]);
    diff += d * d;
    norm += static_cast<double>(ref[i]) * static_cast<double>(ref[i]);
  }
  if (x.size() != ref.size()) return std::numeric_limits<double>::infinity();
  return norm > 0 ? std::sqrt(diff / norm) : std::sqrt(diff);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_report(std::ostream& os, const Options& opt,
                  const std::vector<CampaignOutcome>& outcomes, bool pass) {
  os << "{\n  \"config\": {\n"
     << "    \"size_bytes\": " << opt.size << ",\n"
     << "    \"iterations\": " << opt.iterations << ",\n"
     << "    \"backend\": \"" << json_escape(opt.backend) << "\",\n"
     << "    \"ranks\": " << opt.ranks << ",\n"
     << "    \"seed\": " << opt.seed << ",\n"
     << "    \"health\": \"" << json_escape(opt.health_mode) << "\",\n"
     << "    \"health_every\": " << opt.health_every << ",\n"
     << "    \"tolerance\": " << opt.tolerance << "\n  },\n"
     << "  \"campaigns\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto& o = outcomes[i];
    os << "    {\n"
       << "      \"name\": \"" << json_escape(o.campaign.name) << "\",\n"
       << "      \"faults\": \"" << json_escape(o.campaign.spec) << "\",\n"
       << "      \"status\": \"" << o.status << "\",\n"
       << "      \"pass\": " << (o.pass ? "true" : "false") << ",\n"
       << "      \"detections\": " << o.detections << ",\n"
       << "      \"repairs\": " << o.repairs << ",\n"
       << "      \"restarts\": " << o.restarts << ",\n"
       << "      \"injected_iteration\": " << o.campaign.injected_iteration
       << ",\n"
       << "      \"first_detection_iteration\": "
       << o.first_detection_iteration << ",\n"
       << "      \"detection_latency\": " << o.detection_latency << ",\n"
       << "      \"rel_l2_vs_reference\": " << o.rel_l2_vs_reference << ",\n"
       << "      \"diagnosis\": \"" << json_escape(o.diagnosis) << "\"\n"
       << "    }" << (i + 1 < outcomes.size() ? "," : "") << '\n';
  }
  os << "  ],\n  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
}

Options parse_args(int argc, char** argv) {
  Options opt;
  auto need_value = [&](int& i, const char* name) -> std::string {
    std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq != std::string::npos) return arg.substr(eq + 1);
    if (i + 1 >= argc) fail_usage(std::string(name) + " needs a value");
    return argv[++i];
  };
  auto parse_int = [&](const std::string& v, const char* name) -> long long {
    char* end = nullptr;
    const long long n = std::strtoll(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0' || n < 0)
      fail_usage(std::string("bad ") + name + " value '" + v + "'");
    return n;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto is = [&](const char* name) {
      return arg == name || arg.rfind(std::string(name) + "=", 0) == 0;
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      std::exit(0);
    } else if (arg == "--list") {
      opt.list = true;
    } else if (is("--size")) {
      const auto v = need_value(i, "--size");
      const auto bytes = gaia::util::parse_size(v);
      if (!bytes) fail_usage("bad --size value '" + v + "'");
      opt.size = *bytes;
    } else if (is("--iterations")) {
      opt.iterations = parse_int(need_value(i, "--iterations"), "--iterations");
    } else if (is("--backend")) {
      opt.backend = need_value(i, "--backend");
    } else if (is("--ranks")) {
      opt.ranks = static_cast<int>(parse_int(need_value(i, "--ranks"),
                                             "--ranks"));
      if (opt.ranks < 1) fail_usage("--ranks must be >= 1");
    } else if (is("--seed")) {
      opt.seed = static_cast<std::uint64_t>(
          parse_int(need_value(i, "--seed"), "--seed"));
    } else if (is("--health")) {
      opt.health_mode = need_value(i, "--health");
      if (opt.health_mode != "detect" && opt.health_mode != "repair")
        fail_usage("--health must be detect or repair");
    } else if (is("--health-every")) {
      opt.health_every = parse_int(need_value(i, "--health-every"),
                                   "--health-every");
      if (opt.health_every <= 0) fail_usage("--health-every must be > 0");
    } else if (is("--tolerance")) {
      const auto v = need_value(i, "--tolerance");
      char* end = nullptr;
      opt.tolerance = std::strtod(v.c_str(), &end);
      if (end == v.c_str() || *end != '\0' || !(opt.tolerance >= 0))
        fail_usage("bad --tolerance value '" + v + "'");
    } else if (is("--campaign")) {
      opt.selected.push_back(need_value(i, "--campaign"));
    } else if (is("--faults")) {
      opt.custom_faults.push_back(need_value(i, "--faults"));
    } else if (is("--report")) {
      opt.report_path = need_value(i, "--report");
    } else if (is("--postmortem-dir")) {
      opt.postmortem_dir = need_value(i, "--postmortem-dir");
    } else {
      fail_usage("unknown option '" + arg + "'");
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  std::vector<Campaign> campaigns;
  if (!opt.custom_faults.empty()) {
    int k = 0;
    for (const auto& spec : opt.custom_faults) {
      Campaign c;
      c.name = "custom-" + std::to_string(k++);
      c.spec = spec;
      // Custom sdc campaigns must trip the monitor; loud campaigns
      // (rank deaths, transfer faults) recover through their own paths.
      c.expects_detection = spec.rfind("sdc:", 0) == 0;
      campaigns.push_back(std::move(c));
    }
  } else {
    for (auto& c : builtin_campaigns()) {
      if (c.needs_ranks && opt.ranks <= 1) continue;
      if (!opt.selected.empty() &&
          std::find(opt.selected.begin(), opt.selected.end(), c.name) ==
              opt.selected.end())
        continue;
      campaigns.push_back(std::move(c));
    }
    if (!opt.selected.empty() && campaigns.size() != opt.selected.size())
      fail_usage("unknown --campaign name (see --list)");
  }

  if (opt.list) {
    for (const auto& c : builtin_campaigns())
      std::cout << c.name << "\t" << c.spec
                << (c.needs_ranks ? "\t(requires --ranks > 1)" : "") << '\n';
    return 0;
  }
  if (campaigns.empty()) fail_usage("no campaigns to run");

  try {
    // Validate every spec up front: a typo must exit 2 before any solve.
    for (const auto& c : campaigns)
      (void)gaia::resilience::parse_fault_spec(c.spec, opt.seed);

    const auto backend = gaia::backends::parse_backend(opt.backend);
    if (!backend) fail_usage("unknown backend '" + opt.backend + "'");

    gaia::core::LsqrOptions lsqr;
    lsqr.aprod.backend = *backend;
    lsqr.max_iterations = opt.iterations;

    std::cout << "gaia-chaos: generating "
              << gaia::util::format_bytes(opt.size) << " system\n";
    const auto generated = gaia::matrix::generate_system(
        gaia::matrix::config_for_footprint(opt.size));

    auto& injector = gaia::resilience::FaultInjector::global();
    injector.disarm();
    if (!opt.postmortem_dir.empty())
      gaia::obs::set_postmortem_dir(opt.postmortem_dir);

    std::cout << "gaia-chaos: reference solve (" << opt.ranks << " rank"
              << (opt.ranks > 1 ? "s" : "") << ", " << opt.iterations
              << " iterations, backend " << opt.backend << ")\n";
    const auto reference = run_solve(generated.A, lsqr, opt.ranks);

    lsqr.health = gaia::resilience::health_config_from_env(opt.health_mode,
                                                           opt.health_every);
    const bool repair_mode =
        lsqr.health.mode == gaia::resilience::HealthMode::kRepair;

    std::vector<CampaignOutcome> outcomes;
    bool all_pass = true;
    for (const auto& c : campaigns) {
      CampaignOutcome o;
      o.campaign = c;
      std::cout << "gaia-chaos: campaign " << c.name << " [" << c.spec
                << "]\n";
      gaia::obs::set_postmortem_context("campaign", c.name);
      gaia::obs::set_postmortem_context("faults", c.spec);
      // Fresh timeline per campaign: each bundle narrates only its own
      // injected failure, not the tail of the previous one.
      gaia::obs::FlightRecorder::global().reset();
      injector.configure(c.spec, opt.seed);
      try {
        const auto run = run_solve(generated.A, lsqr, opt.ranks);
        o.detections = run.health.detections;
        o.repairs = run.health.repairs;
        o.restarts = run.restarts;
        o.first_detection_iteration = run.health.first_detection_iteration;
        o.diagnosis = run.health.last_diagnosis;
        if (o.first_detection_iteration >= 0 && c.injected_iteration >= 0)
          o.detection_latency =
              o.first_detection_iteration - c.injected_iteration;
        o.rel_l2_vs_reference = rel_l2(run.x, reference.x);
        if (c.expects_detection && o.detections == 0) {
          o.status = "undetected";
        } else if (c.expects_detection && repair_mode && o.repairs == 0) {
          o.status = "unrepaired";
        } else if (!(o.rel_l2_vs_reference <= opt.tolerance)) {
          o.status = "tolerance-miss";
        } else {
          o.status = c.expects_detection ? "repaired" : "recovered";
          o.pass = true;
        }
      } catch (const gaia::resilience::SdcError& e) {
        o.status = "unrepaired";
        o.diagnosis = e.what();
      } catch (const gaia::Error& e) {
        o.status = "error";
        o.diagnosis = e.what();
      }
      injector.disarm();
      // One bundle per campaign (reason = outcome status): even the
      // campaigns that repaired cleanly leave a diagnosable artifact, so
      // CI's postmortem-smoke job asserts every injected failure mode
      // produced one. No-op while --postmortem-dir is absent.
      gaia::obs::flush_postmortem(
          {o.status, o.diagnosis.empty() ? c.spec : o.diagnosis, -1,
           opt.ranks},
          "postmortem." + c.name + ".json");
      std::cout << "gaia-chaos:   " << o.status << " (detections "
                << o.detections << ", repairs " << o.repairs;
      if (o.restarts > 0) std::cout << ", restarts " << o.restarts;
      if (o.detection_latency >= 0)
        std::cout << ", detection latency " << o.detection_latency
                  << " iteration(s)";
      if (o.rel_l2_vs_reference >= 0)
        std::cout << ", rel L2 vs reference " << o.rel_l2_vs_reference;
      std::cout << ")\n";
      if (!o.diagnosis.empty())
        std::cout << "gaia-chaos:   diagnosis: " << o.diagnosis << '\n';
      all_pass = all_pass && o.pass;
      outcomes.push_back(std::move(o));
    }

    if (!opt.report_path.empty()) {
      std::ofstream out(opt.report_path);
      if (!out) {
        std::cerr << "gaia-chaos: cannot write report to " << opt.report_path
                  << '\n';
        return 2;
      }
      write_report(out, opt, outcomes, all_pass);
      std::cout << "gaia-chaos: report written to " << opt.report_path
                << '\n';
    }

    std::cout << "gaia-chaos: " << (all_pass ? "PASS" : "FAIL") << " ("
              << outcomes.size() << " campaign(s))\n";
    return all_pass ? 0 : 1;
  } catch (const gaia::Error& e) {
    std::cerr << "gaia-chaos: " << e.what() << '\n';
    return 2;
  }
}
