# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_backends[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_dist[1]_include.cmake")
include("/root/repo/build/tests/test_perfmodel[1]_include.cmake")
include("/root/repo/build/tests/test_validation[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
