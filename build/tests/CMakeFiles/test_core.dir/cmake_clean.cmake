file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_aprod_driver.cpp.o"
  "CMakeFiles/test_core.dir/core/test_aprod_driver.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_aprod_kernels.cpp.o"
  "CMakeFiles/test_core.dir/core/test_aprod_kernels.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_derotation.cpp.o"
  "CMakeFiles/test_core.dir/core/test_derotation.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_lsqr.cpp.o"
  "CMakeFiles/test_core.dir/core/test_lsqr.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_lsqr_engine.cpp.o"
  "CMakeFiles/test_core.dir/core/test_lsqr_engine.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_outer_loop.cpp.o"
  "CMakeFiles/test_core.dir/core/test_outer_loop.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_preconditioner.cpp.o"
  "CMakeFiles/test_core.dir/core/test_preconditioner.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_profiling_integration.cpp.o"
  "CMakeFiles/test_core.dir/core/test_profiling_integration.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_solver.cpp.o"
  "CMakeFiles/test_core.dir/core/test_solver.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_vector_ops.cpp.o"
  "CMakeFiles/test_core.dir/core/test_vector_ops.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_weights.cpp.o"
  "CMakeFiles/test_core.dir/core/test_weights.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
