
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_aprod_driver.cpp" "tests/CMakeFiles/test_core.dir/core/test_aprod_driver.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_aprod_driver.cpp.o.d"
  "/root/repo/tests/core/test_aprod_kernels.cpp" "tests/CMakeFiles/test_core.dir/core/test_aprod_kernels.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_aprod_kernels.cpp.o.d"
  "/root/repo/tests/core/test_derotation.cpp" "tests/CMakeFiles/test_core.dir/core/test_derotation.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_derotation.cpp.o.d"
  "/root/repo/tests/core/test_lsqr.cpp" "tests/CMakeFiles/test_core.dir/core/test_lsqr.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_lsqr.cpp.o.d"
  "/root/repo/tests/core/test_lsqr_engine.cpp" "tests/CMakeFiles/test_core.dir/core/test_lsqr_engine.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_lsqr_engine.cpp.o.d"
  "/root/repo/tests/core/test_outer_loop.cpp" "tests/CMakeFiles/test_core.dir/core/test_outer_loop.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_outer_loop.cpp.o.d"
  "/root/repo/tests/core/test_preconditioner.cpp" "tests/CMakeFiles/test_core.dir/core/test_preconditioner.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_preconditioner.cpp.o.d"
  "/root/repo/tests/core/test_profiling_integration.cpp" "tests/CMakeFiles/test_core.dir/core/test_profiling_integration.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_profiling_integration.cpp.o.d"
  "/root/repo/tests/core/test_solver.cpp" "tests/CMakeFiles/test_core.dir/core/test_solver.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_solver.cpp.o.d"
  "/root/repo/tests/core/test_vector_ops.cpp" "tests/CMakeFiles/test_core.dir/core/test_vector_ops.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_vector_ops.cpp.o.d"
  "/root/repo/tests/core/test_weights.cpp" "tests/CMakeFiles/test_core.dir/core/test_weights.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/gaia_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/gaia_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gaia_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/validation/CMakeFiles/gaia_validation.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gaia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/gaia_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/gaia_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gaia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
