file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/util/test_cli.cpp.o"
  "CMakeFiles/test_util.dir/util/test_cli.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_csv.cpp.o"
  "CMakeFiles/test_util.dir/util/test_csv.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_error.cpp.o"
  "CMakeFiles/test_util.dir/util/test_error.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_profiler.cpp.o"
  "CMakeFiles/test_util.dir/util/test_profiler.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_rng.cpp.o"
  "CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_stats.cpp.o"
  "CMakeFiles/test_util.dir/util/test_stats.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_stopwatch.cpp.o"
  "CMakeFiles/test_util.dir/util/test_stopwatch.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_string_utils.cpp.o"
  "CMakeFiles/test_util.dir/util/test_string_utils.cpp.o.d"
  "CMakeFiles/test_util.dir/util/test_table.cpp.o"
  "CMakeFiles/test_util.dir/util/test_table.cpp.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
