file(REMOVE_RECURSE
  "CMakeFiles/test_validation.dir/validation/test_compare.cpp.o"
  "CMakeFiles/test_validation.dir/validation/test_compare.cpp.o.d"
  "CMakeFiles/test_validation.dir/validation/test_cross_backend.cpp.o"
  "CMakeFiles/test_validation.dir/validation/test_cross_backend.cpp.o.d"
  "CMakeFiles/test_validation.dir/validation/test_residual_analysis.cpp.o"
  "CMakeFiles/test_validation.dir/validation/test_residual_analysis.cpp.o.d"
  "test_validation"
  "test_validation.pdb"
  "test_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
