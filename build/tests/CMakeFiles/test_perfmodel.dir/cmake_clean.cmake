file(REMOVE_RECURSE
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_cost_model.cpp.o"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_cost_model.cpp.o.d"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_energy.cpp.o"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_energy.cpp.o.d"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_framework.cpp.o"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_framework.cpp.o.d"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_gpu_spec.cpp.o"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_gpu_spec.cpp.o.d"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_multi_gpu.cpp.o"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_multi_gpu.cpp.o.d"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_simulator.cpp.o"
  "CMakeFiles/test_perfmodel.dir/perfmodel/test_simulator.cpp.o.d"
  "test_perfmodel"
  "test_perfmodel.pdb"
  "test_perfmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
