file(REMOVE_RECURSE
  "CMakeFiles/test_matrix.dir/matrix/test_csr.cpp.o"
  "CMakeFiles/test_matrix.dir/matrix/test_csr.cpp.o.d"
  "CMakeFiles/test_matrix.dir/matrix/test_dense.cpp.o"
  "CMakeFiles/test_matrix.dir/matrix/test_dense.cpp.o.d"
  "CMakeFiles/test_matrix.dir/matrix/test_generator.cpp.o"
  "CMakeFiles/test_matrix.dir/matrix/test_generator.cpp.o.d"
  "CMakeFiles/test_matrix.dir/matrix/test_io.cpp.o"
  "CMakeFiles/test_matrix.dir/matrix/test_io.cpp.o.d"
  "CMakeFiles/test_matrix.dir/matrix/test_layout.cpp.o"
  "CMakeFiles/test_matrix.dir/matrix/test_layout.cpp.o.d"
  "CMakeFiles/test_matrix.dir/matrix/test_scanlaw.cpp.o"
  "CMakeFiles/test_matrix.dir/matrix/test_scanlaw.cpp.o.d"
  "CMakeFiles/test_matrix.dir/matrix/test_system_matrix.cpp.o"
  "CMakeFiles/test_matrix.dir/matrix/test_system_matrix.cpp.o.d"
  "test_matrix"
  "test_matrix.pdb"
  "test_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
