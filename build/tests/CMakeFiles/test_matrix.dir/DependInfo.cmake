
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/matrix/test_csr.cpp" "tests/CMakeFiles/test_matrix.dir/matrix/test_csr.cpp.o" "gcc" "tests/CMakeFiles/test_matrix.dir/matrix/test_csr.cpp.o.d"
  "/root/repo/tests/matrix/test_dense.cpp" "tests/CMakeFiles/test_matrix.dir/matrix/test_dense.cpp.o" "gcc" "tests/CMakeFiles/test_matrix.dir/matrix/test_dense.cpp.o.d"
  "/root/repo/tests/matrix/test_generator.cpp" "tests/CMakeFiles/test_matrix.dir/matrix/test_generator.cpp.o" "gcc" "tests/CMakeFiles/test_matrix.dir/matrix/test_generator.cpp.o.d"
  "/root/repo/tests/matrix/test_io.cpp" "tests/CMakeFiles/test_matrix.dir/matrix/test_io.cpp.o" "gcc" "tests/CMakeFiles/test_matrix.dir/matrix/test_io.cpp.o.d"
  "/root/repo/tests/matrix/test_layout.cpp" "tests/CMakeFiles/test_matrix.dir/matrix/test_layout.cpp.o" "gcc" "tests/CMakeFiles/test_matrix.dir/matrix/test_layout.cpp.o.d"
  "/root/repo/tests/matrix/test_scanlaw.cpp" "tests/CMakeFiles/test_matrix.dir/matrix/test_scanlaw.cpp.o" "gcc" "tests/CMakeFiles/test_matrix.dir/matrix/test_scanlaw.cpp.o.d"
  "/root/repo/tests/matrix/test_system_matrix.cpp" "tests/CMakeFiles/test_matrix.dir/matrix/test_system_matrix.cpp.o" "gcc" "tests/CMakeFiles/test_matrix.dir/matrix/test_system_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/gaia_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/gaia_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gaia_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/validation/CMakeFiles/gaia_validation.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gaia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/gaia_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/gaia_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gaia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
