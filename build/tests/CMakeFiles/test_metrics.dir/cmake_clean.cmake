file(REMOVE_RECURSE
  "CMakeFiles/test_metrics.dir/metrics/test_cascade.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/test_cascade.cpp.o.d"
  "CMakeFiles/test_metrics.dir/metrics/test_efficiency.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/test_efficiency.cpp.o.d"
  "CMakeFiles/test_metrics.dir/metrics/test_pennycook.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/test_pennycook.cpp.o.d"
  "CMakeFiles/test_metrics.dir/metrics/test_report.cpp.o"
  "CMakeFiles/test_metrics.dir/metrics/test_report.cpp.o.d"
  "test_metrics"
  "test_metrics.pdb"
  "test_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
