# Empty compiler generated dependencies file for test_backends.
# This may be replaced when dependencies are built.
