file(REMOVE_RECURSE
  "CMakeFiles/test_backends.dir/backends/test_atomic.cpp.o"
  "CMakeFiles/test_backends.dir/backends/test_atomic.cpp.o.d"
  "CMakeFiles/test_backends.dir/backends/test_device_buffer.cpp.o"
  "CMakeFiles/test_backends.dir/backends/test_device_buffer.cpp.o.d"
  "CMakeFiles/test_backends.dir/backends/test_exec_policies.cpp.o"
  "CMakeFiles/test_backends.dir/backends/test_exec_policies.cpp.o.d"
  "CMakeFiles/test_backends.dir/backends/test_kernel_config.cpp.o"
  "CMakeFiles/test_backends.dir/backends/test_kernel_config.cpp.o.d"
  "CMakeFiles/test_backends.dir/backends/test_pstl_algorithms.cpp.o"
  "CMakeFiles/test_backends.dir/backends/test_pstl_algorithms.cpp.o.d"
  "CMakeFiles/test_backends.dir/backends/test_stream.cpp.o"
  "CMakeFiles/test_backends.dir/backends/test_stream.cpp.o.d"
  "CMakeFiles/test_backends.dir/backends/test_thread_pool.cpp.o"
  "CMakeFiles/test_backends.dir/backends/test_thread_pool.cpp.o.d"
  "test_backends"
  "test_backends.pdb"
  "test_backends[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
