file(REMOVE_RECURSE
  "CMakeFiles/convergence_study.dir/convergence_study.cpp.o"
  "CMakeFiles/convergence_study.dir/convergence_study.cpp.o.d"
  "convergence_study"
  "convergence_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
