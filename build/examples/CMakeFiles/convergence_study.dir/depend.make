# Empty dependencies file for convergence_study.
# This may be replaced when dependencies are built.
