file(REMOVE_RECURSE
  "CMakeFiles/validate_ports.dir/validate_ports.cpp.o"
  "CMakeFiles/validate_ports.dir/validate_ports.cpp.o.d"
  "validate_ports"
  "validate_ports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_ports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
