# Empty dependencies file for validate_ports.
# This may be replaced when dependencies are built.
