file(REMOVE_RECURSE
  "CMakeFiles/gaia_solver.dir/gaia_solver.cpp.o"
  "CMakeFiles/gaia_solver.dir/gaia_solver.cpp.o.d"
  "gaia_solver"
  "gaia_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
