# Empty dependencies file for gaia_solver.
# This may be replaced when dependencies are built.
