file(REMOVE_RECURSE
  "CMakeFiles/astrometric_pipeline.dir/astrometric_pipeline.cpp.o"
  "CMakeFiles/astrometric_pipeline.dir/astrometric_pipeline.cpp.o.d"
  "astrometric_pipeline"
  "astrometric_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astrometric_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
