# Empty dependencies file for astrometric_pipeline.
# This may be replaced when dependencies are built.
