# Empty dependencies file for portability_report.
# This may be replaced when dependencies are built.
