file(REMOVE_RECURSE
  "CMakeFiles/portability_report.dir/portability_report.cpp.o"
  "CMakeFiles/portability_report.dir/portability_report.cpp.o.d"
  "portability_report"
  "portability_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portability_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
