# Empty dependencies file for gaia_matrix.
# This may be replaced when dependencies are built.
