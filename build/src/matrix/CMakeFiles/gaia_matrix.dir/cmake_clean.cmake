file(REMOVE_RECURSE
  "CMakeFiles/gaia_matrix.dir/csr.cpp.o"
  "CMakeFiles/gaia_matrix.dir/csr.cpp.o.d"
  "CMakeFiles/gaia_matrix.dir/dense.cpp.o"
  "CMakeFiles/gaia_matrix.dir/dense.cpp.o.d"
  "CMakeFiles/gaia_matrix.dir/generator.cpp.o"
  "CMakeFiles/gaia_matrix.dir/generator.cpp.o.d"
  "CMakeFiles/gaia_matrix.dir/io.cpp.o"
  "CMakeFiles/gaia_matrix.dir/io.cpp.o.d"
  "CMakeFiles/gaia_matrix.dir/layout.cpp.o"
  "CMakeFiles/gaia_matrix.dir/layout.cpp.o.d"
  "CMakeFiles/gaia_matrix.dir/scanlaw.cpp.o"
  "CMakeFiles/gaia_matrix.dir/scanlaw.cpp.o.d"
  "CMakeFiles/gaia_matrix.dir/system_matrix.cpp.o"
  "CMakeFiles/gaia_matrix.dir/system_matrix.cpp.o.d"
  "libgaia_matrix.a"
  "libgaia_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
