
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/csr.cpp" "src/matrix/CMakeFiles/gaia_matrix.dir/csr.cpp.o" "gcc" "src/matrix/CMakeFiles/gaia_matrix.dir/csr.cpp.o.d"
  "/root/repo/src/matrix/dense.cpp" "src/matrix/CMakeFiles/gaia_matrix.dir/dense.cpp.o" "gcc" "src/matrix/CMakeFiles/gaia_matrix.dir/dense.cpp.o.d"
  "/root/repo/src/matrix/generator.cpp" "src/matrix/CMakeFiles/gaia_matrix.dir/generator.cpp.o" "gcc" "src/matrix/CMakeFiles/gaia_matrix.dir/generator.cpp.o.d"
  "/root/repo/src/matrix/io.cpp" "src/matrix/CMakeFiles/gaia_matrix.dir/io.cpp.o" "gcc" "src/matrix/CMakeFiles/gaia_matrix.dir/io.cpp.o.d"
  "/root/repo/src/matrix/layout.cpp" "src/matrix/CMakeFiles/gaia_matrix.dir/layout.cpp.o" "gcc" "src/matrix/CMakeFiles/gaia_matrix.dir/layout.cpp.o.d"
  "/root/repo/src/matrix/scanlaw.cpp" "src/matrix/CMakeFiles/gaia_matrix.dir/scanlaw.cpp.o" "gcc" "src/matrix/CMakeFiles/gaia_matrix.dir/scanlaw.cpp.o.d"
  "/root/repo/src/matrix/system_matrix.cpp" "src/matrix/CMakeFiles/gaia_matrix.dir/system_matrix.cpp.o" "gcc" "src/matrix/CMakeFiles/gaia_matrix.dir/system_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gaia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
