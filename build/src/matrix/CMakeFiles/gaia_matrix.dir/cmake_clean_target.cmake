file(REMOVE_RECURSE
  "libgaia_matrix.a"
)
