# Empty dependencies file for gaia_core.
# This may be replaced when dependencies are built.
