file(REMOVE_RECURSE
  "libgaia_core.a"
)
