
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aprod.cpp" "src/core/CMakeFiles/gaia_core.dir/aprod.cpp.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/aprod.cpp.o.d"
  "/root/repo/src/core/derotation.cpp" "src/core/CMakeFiles/gaia_core.dir/derotation.cpp.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/derotation.cpp.o.d"
  "/root/repo/src/core/lsqr.cpp" "src/core/CMakeFiles/gaia_core.dir/lsqr.cpp.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/lsqr.cpp.o.d"
  "/root/repo/src/core/lsqr_engine.cpp" "src/core/CMakeFiles/gaia_core.dir/lsqr_engine.cpp.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/lsqr_engine.cpp.o.d"
  "/root/repo/src/core/outer_loop.cpp" "src/core/CMakeFiles/gaia_core.dir/outer_loop.cpp.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/outer_loop.cpp.o.d"
  "/root/repo/src/core/preconditioner.cpp" "src/core/CMakeFiles/gaia_core.dir/preconditioner.cpp.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/preconditioner.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/core/CMakeFiles/gaia_core.dir/solver.cpp.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/solver.cpp.o.d"
  "/root/repo/src/core/weights.cpp" "src/core/CMakeFiles/gaia_core.dir/weights.cpp.o" "gcc" "src/core/CMakeFiles/gaia_core.dir/weights.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gaia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/gaia_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/gaia_backends.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
