file(REMOVE_RECURSE
  "CMakeFiles/gaia_core.dir/aprod.cpp.o"
  "CMakeFiles/gaia_core.dir/aprod.cpp.o.d"
  "CMakeFiles/gaia_core.dir/derotation.cpp.o"
  "CMakeFiles/gaia_core.dir/derotation.cpp.o.d"
  "CMakeFiles/gaia_core.dir/lsqr.cpp.o"
  "CMakeFiles/gaia_core.dir/lsqr.cpp.o.d"
  "CMakeFiles/gaia_core.dir/lsqr_engine.cpp.o"
  "CMakeFiles/gaia_core.dir/lsqr_engine.cpp.o.d"
  "CMakeFiles/gaia_core.dir/outer_loop.cpp.o"
  "CMakeFiles/gaia_core.dir/outer_loop.cpp.o.d"
  "CMakeFiles/gaia_core.dir/preconditioner.cpp.o"
  "CMakeFiles/gaia_core.dir/preconditioner.cpp.o.d"
  "CMakeFiles/gaia_core.dir/solver.cpp.o"
  "CMakeFiles/gaia_core.dir/solver.cpp.o.d"
  "CMakeFiles/gaia_core.dir/weights.cpp.o"
  "CMakeFiles/gaia_core.dir/weights.cpp.o.d"
  "libgaia_core.a"
  "libgaia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
