# Empty dependencies file for gaia_validation.
# This may be replaced when dependencies are built.
