file(REMOVE_RECURSE
  "libgaia_validation.a"
)
