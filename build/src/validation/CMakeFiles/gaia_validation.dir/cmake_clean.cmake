file(REMOVE_RECURSE
  "CMakeFiles/gaia_validation.dir/compare.cpp.o"
  "CMakeFiles/gaia_validation.dir/compare.cpp.o.d"
  "CMakeFiles/gaia_validation.dir/cross_backend.cpp.o"
  "CMakeFiles/gaia_validation.dir/cross_backend.cpp.o.d"
  "CMakeFiles/gaia_validation.dir/residual_analysis.cpp.o"
  "CMakeFiles/gaia_validation.dir/residual_analysis.cpp.o.d"
  "libgaia_validation.a"
  "libgaia_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
