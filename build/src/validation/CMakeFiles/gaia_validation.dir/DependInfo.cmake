
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/validation/compare.cpp" "src/validation/CMakeFiles/gaia_validation.dir/compare.cpp.o" "gcc" "src/validation/CMakeFiles/gaia_validation.dir/compare.cpp.o.d"
  "/root/repo/src/validation/cross_backend.cpp" "src/validation/CMakeFiles/gaia_validation.dir/cross_backend.cpp.o" "gcc" "src/validation/CMakeFiles/gaia_validation.dir/cross_backend.cpp.o.d"
  "/root/repo/src/validation/residual_analysis.cpp" "src/validation/CMakeFiles/gaia_validation.dir/residual_analysis.cpp.o" "gcc" "src/validation/CMakeFiles/gaia_validation.dir/residual_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gaia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/gaia_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/gaia_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gaia_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
