file(REMOVE_RECURSE
  "libgaia_metrics.a"
)
