
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/cascade.cpp" "src/metrics/CMakeFiles/gaia_metrics.dir/cascade.cpp.o" "gcc" "src/metrics/CMakeFiles/gaia_metrics.dir/cascade.cpp.o.d"
  "/root/repo/src/metrics/efficiency.cpp" "src/metrics/CMakeFiles/gaia_metrics.dir/efficiency.cpp.o" "gcc" "src/metrics/CMakeFiles/gaia_metrics.dir/efficiency.cpp.o.d"
  "/root/repo/src/metrics/pennycook.cpp" "src/metrics/CMakeFiles/gaia_metrics.dir/pennycook.cpp.o" "gcc" "src/metrics/CMakeFiles/gaia_metrics.dir/pennycook.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/metrics/CMakeFiles/gaia_metrics.dir/report.cpp.o" "gcc" "src/metrics/CMakeFiles/gaia_metrics.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gaia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
