file(REMOVE_RECURSE
  "CMakeFiles/gaia_metrics.dir/cascade.cpp.o"
  "CMakeFiles/gaia_metrics.dir/cascade.cpp.o.d"
  "CMakeFiles/gaia_metrics.dir/efficiency.cpp.o"
  "CMakeFiles/gaia_metrics.dir/efficiency.cpp.o.d"
  "CMakeFiles/gaia_metrics.dir/pennycook.cpp.o"
  "CMakeFiles/gaia_metrics.dir/pennycook.cpp.o.d"
  "CMakeFiles/gaia_metrics.dir/report.cpp.o"
  "CMakeFiles/gaia_metrics.dir/report.cpp.o.d"
  "libgaia_metrics.a"
  "libgaia_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
