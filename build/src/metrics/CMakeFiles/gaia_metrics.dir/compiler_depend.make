# Empty compiler generated dependencies file for gaia_metrics.
# This may be replaced when dependencies are built.
