# Empty compiler generated dependencies file for gaia_perfmodel.
# This may be replaced when dependencies are built.
