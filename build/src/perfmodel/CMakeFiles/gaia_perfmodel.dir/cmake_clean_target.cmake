file(REMOVE_RECURSE
  "libgaia_perfmodel.a"
)
