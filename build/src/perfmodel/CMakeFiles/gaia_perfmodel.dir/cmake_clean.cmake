file(REMOVE_RECURSE
  "CMakeFiles/gaia_perfmodel.dir/cost_model.cpp.o"
  "CMakeFiles/gaia_perfmodel.dir/cost_model.cpp.o.d"
  "CMakeFiles/gaia_perfmodel.dir/energy.cpp.o"
  "CMakeFiles/gaia_perfmodel.dir/energy.cpp.o.d"
  "CMakeFiles/gaia_perfmodel.dir/framework.cpp.o"
  "CMakeFiles/gaia_perfmodel.dir/framework.cpp.o.d"
  "CMakeFiles/gaia_perfmodel.dir/gpu_spec.cpp.o"
  "CMakeFiles/gaia_perfmodel.dir/gpu_spec.cpp.o.d"
  "CMakeFiles/gaia_perfmodel.dir/multi_gpu.cpp.o"
  "CMakeFiles/gaia_perfmodel.dir/multi_gpu.cpp.o.d"
  "CMakeFiles/gaia_perfmodel.dir/problem_shape.cpp.o"
  "CMakeFiles/gaia_perfmodel.dir/problem_shape.cpp.o.d"
  "CMakeFiles/gaia_perfmodel.dir/simulator.cpp.o"
  "CMakeFiles/gaia_perfmodel.dir/simulator.cpp.o.d"
  "libgaia_perfmodel.a"
  "libgaia_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
