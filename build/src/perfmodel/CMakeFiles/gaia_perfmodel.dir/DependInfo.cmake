
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perfmodel/cost_model.cpp" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/cost_model.cpp.o" "gcc" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/cost_model.cpp.o.d"
  "/root/repo/src/perfmodel/energy.cpp" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/energy.cpp.o" "gcc" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/energy.cpp.o.d"
  "/root/repo/src/perfmodel/framework.cpp" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/framework.cpp.o" "gcc" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/framework.cpp.o.d"
  "/root/repo/src/perfmodel/gpu_spec.cpp" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/gpu_spec.cpp.o" "gcc" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/gpu_spec.cpp.o.d"
  "/root/repo/src/perfmodel/multi_gpu.cpp" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/multi_gpu.cpp.o" "gcc" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/multi_gpu.cpp.o.d"
  "/root/repo/src/perfmodel/problem_shape.cpp" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/problem_shape.cpp.o" "gcc" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/problem_shape.cpp.o.d"
  "/root/repo/src/perfmodel/simulator.cpp" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/simulator.cpp.o" "gcc" "src/perfmodel/CMakeFiles/gaia_perfmodel.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gaia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/gaia_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/gaia_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gaia_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
