# Empty dependencies file for gaia_backends.
# This may be replaced when dependencies are built.
