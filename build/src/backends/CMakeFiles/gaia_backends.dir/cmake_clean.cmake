file(REMOVE_RECURSE
  "CMakeFiles/gaia_backends.dir/backend.cpp.o"
  "CMakeFiles/gaia_backends.dir/backend.cpp.o.d"
  "CMakeFiles/gaia_backends.dir/device_buffer.cpp.o"
  "CMakeFiles/gaia_backends.dir/device_buffer.cpp.o.d"
  "CMakeFiles/gaia_backends.dir/kernel_config.cpp.o"
  "CMakeFiles/gaia_backends.dir/kernel_config.cpp.o.d"
  "CMakeFiles/gaia_backends.dir/stream.cpp.o"
  "CMakeFiles/gaia_backends.dir/stream.cpp.o.d"
  "CMakeFiles/gaia_backends.dir/thread_pool.cpp.o"
  "CMakeFiles/gaia_backends.dir/thread_pool.cpp.o.d"
  "libgaia_backends.a"
  "libgaia_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
