file(REMOVE_RECURSE
  "libgaia_backends.a"
)
