
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/backend.cpp" "src/backends/CMakeFiles/gaia_backends.dir/backend.cpp.o" "gcc" "src/backends/CMakeFiles/gaia_backends.dir/backend.cpp.o.d"
  "/root/repo/src/backends/device_buffer.cpp" "src/backends/CMakeFiles/gaia_backends.dir/device_buffer.cpp.o" "gcc" "src/backends/CMakeFiles/gaia_backends.dir/device_buffer.cpp.o.d"
  "/root/repo/src/backends/kernel_config.cpp" "src/backends/CMakeFiles/gaia_backends.dir/kernel_config.cpp.o" "gcc" "src/backends/CMakeFiles/gaia_backends.dir/kernel_config.cpp.o.d"
  "/root/repo/src/backends/stream.cpp" "src/backends/CMakeFiles/gaia_backends.dir/stream.cpp.o" "gcc" "src/backends/CMakeFiles/gaia_backends.dir/stream.cpp.o.d"
  "/root/repo/src/backends/thread_pool.cpp" "src/backends/CMakeFiles/gaia_backends.dir/thread_pool.cpp.o" "gcc" "src/backends/CMakeFiles/gaia_backends.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gaia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
