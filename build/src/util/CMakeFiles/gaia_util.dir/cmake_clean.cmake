file(REMOVE_RECURSE
  "CMakeFiles/gaia_util.dir/cli.cpp.o"
  "CMakeFiles/gaia_util.dir/cli.cpp.o.d"
  "CMakeFiles/gaia_util.dir/csv.cpp.o"
  "CMakeFiles/gaia_util.dir/csv.cpp.o.d"
  "CMakeFiles/gaia_util.dir/profiler.cpp.o"
  "CMakeFiles/gaia_util.dir/profiler.cpp.o.d"
  "CMakeFiles/gaia_util.dir/rng.cpp.o"
  "CMakeFiles/gaia_util.dir/rng.cpp.o.d"
  "CMakeFiles/gaia_util.dir/stats.cpp.o"
  "CMakeFiles/gaia_util.dir/stats.cpp.o.d"
  "CMakeFiles/gaia_util.dir/stopwatch.cpp.o"
  "CMakeFiles/gaia_util.dir/stopwatch.cpp.o.d"
  "CMakeFiles/gaia_util.dir/string_utils.cpp.o"
  "CMakeFiles/gaia_util.dir/string_utils.cpp.o.d"
  "CMakeFiles/gaia_util.dir/table.cpp.o"
  "CMakeFiles/gaia_util.dir/table.cpp.o.d"
  "libgaia_util.a"
  "libgaia_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
