file(REMOVE_RECURSE
  "libgaia_util.a"
)
