# Empty dependencies file for gaia_util.
# This may be replaced when dependencies are built.
