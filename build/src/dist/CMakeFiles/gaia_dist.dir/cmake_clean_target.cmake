file(REMOVE_RECURSE
  "libgaia_dist.a"
)
