file(REMOVE_RECURSE
  "CMakeFiles/gaia_dist.dir/comm.cpp.o"
  "CMakeFiles/gaia_dist.dir/comm.cpp.o.d"
  "CMakeFiles/gaia_dist.dir/dist_lsqr.cpp.o"
  "CMakeFiles/gaia_dist.dir/dist_lsqr.cpp.o.d"
  "CMakeFiles/gaia_dist.dir/partition.cpp.o"
  "CMakeFiles/gaia_dist.dir/partition.cpp.o.d"
  "libgaia_dist.a"
  "libgaia_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaia_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
