# Empty compiler generated dependencies file for gaia_dist.
# This may be replaced when dependencies are built.
