# Empty compiler generated dependencies file for ablation_coherence.
# This may be replaced when dependencies are built.
