file(REMOVE_RECURSE
  "CMakeFiles/ablation_coherence.dir/ablation_coherence.cpp.o"
  "CMakeFiles/ablation_coherence.dir/ablation_coherence.cpp.o.d"
  "ablation_coherence"
  "ablation_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
