file(REMOVE_RECURSE
  "CMakeFiles/fig5_app_efficiency.dir/fig5_app_efficiency.cpp.o"
  "CMakeFiles/fig5_app_efficiency.dir/fig5_app_efficiency.cpp.o.d"
  "fig5_app_efficiency"
  "fig5_app_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_app_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
