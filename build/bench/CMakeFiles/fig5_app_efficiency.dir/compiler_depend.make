# Empty compiler generated dependencies file for fig5_app_efficiency.
# This may be replaced when dependencies are built.
