file(REMOVE_RECURSE
  "CMakeFiles/bench_lsqr.dir/bench_lsqr.cpp.o"
  "CMakeFiles/bench_lsqr.dir/bench_lsqr.cpp.o.d"
  "bench_lsqr"
  "bench_lsqr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lsqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
