# Empty compiler generated dependencies file for bench_lsqr.
# This may be replaced when dependencies are built.
