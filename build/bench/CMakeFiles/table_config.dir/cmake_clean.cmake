file(REMOVE_RECURSE
  "CMakeFiles/table_config.dir/table_config.cpp.o"
  "CMakeFiles/table_config.dir/table_config.cpp.o.d"
  "table_config"
  "table_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
