# Empty compiler generated dependencies file for table_config.
# This may be replaced when dependencies are built.
