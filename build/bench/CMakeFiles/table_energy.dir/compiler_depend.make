# Empty compiler generated dependencies file for table_energy.
# This may be replaced when dependencies are built.
