file(REMOVE_RECURSE
  "CMakeFiles/table_energy.dir/table_energy.cpp.o"
  "CMakeFiles/table_energy.dir/table_energy.cpp.o.d"
  "table_energy"
  "table_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
