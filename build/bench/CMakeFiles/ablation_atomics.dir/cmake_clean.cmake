file(REMOVE_RECURSE
  "CMakeFiles/ablation_atomics.dir/ablation_atomics.cpp.o"
  "CMakeFiles/ablation_atomics.dir/ablation_atomics.cpp.o.d"
  "ablation_atomics"
  "ablation_atomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_atomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
