# Empty dependencies file for ablation_atomics.
# This may be replaced when dependencies are built.
