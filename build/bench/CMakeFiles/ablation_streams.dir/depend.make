# Empty dependencies file for ablation_streams.
# This may be replaced when dependencies are built.
