file(REMOVE_RECURSE
  "CMakeFiles/ablation_streams.dir/ablation_streams.cpp.o"
  "CMakeFiles/ablation_streams.dir/ablation_streams.cpp.o.d"
  "ablation_streams"
  "ablation_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
