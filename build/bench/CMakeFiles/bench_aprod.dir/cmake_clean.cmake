file(REMOVE_RECURSE
  "CMakeFiles/bench_aprod.dir/bench_aprod.cpp.o"
  "CMakeFiles/bench_aprod.dir/bench_aprod.cpp.o.d"
  "bench_aprod"
  "bench_aprod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aprod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
