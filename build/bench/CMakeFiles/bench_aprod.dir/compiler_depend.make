# Empty compiler generated dependencies file for bench_aprod.
# This may be replaced when dependencies are built.
