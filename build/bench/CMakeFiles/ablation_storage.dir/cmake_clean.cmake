file(REMOVE_RECURSE
  "CMakeFiles/ablation_storage.dir/ablation_storage.cpp.o"
  "CMakeFiles/ablation_storage.dir/ablation_storage.cpp.o.d"
  "ablation_storage"
  "ablation_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
