# Empty dependencies file for ablation_storage.
# This may be replaced when dependencies are built.
