
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_storage.cpp" "bench/CMakeFiles/ablation_storage.dir/ablation_storage.cpp.o" "gcc" "bench/CMakeFiles/ablation_storage.dir/ablation_storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dist/CMakeFiles/gaia_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/gaia_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gaia_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/validation/CMakeFiles/gaia_validation.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gaia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/gaia_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/backends/CMakeFiles/gaia_backends.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gaia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
