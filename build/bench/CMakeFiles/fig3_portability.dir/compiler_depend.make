# Empty compiler generated dependencies file for fig3_portability.
# This may be replaced when dependencies are built.
