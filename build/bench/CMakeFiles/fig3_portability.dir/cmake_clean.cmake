file(REMOVE_RECURSE
  "CMakeFiles/fig3_portability.dir/fig3_portability.cpp.o"
  "CMakeFiles/fig3_portability.dir/fig3_portability.cpp.o.d"
  "fig3_portability"
  "fig3_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
