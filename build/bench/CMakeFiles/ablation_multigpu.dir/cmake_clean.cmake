file(REMOVE_RECURSE
  "CMakeFiles/ablation_multigpu.dir/ablation_multigpu.cpp.o"
  "CMakeFiles/ablation_multigpu.dir/ablation_multigpu.cpp.o.d"
  "ablation_multigpu"
  "ablation_multigpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multigpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
