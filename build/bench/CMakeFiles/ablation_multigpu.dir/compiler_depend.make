# Empty compiler generated dependencies file for ablation_multigpu.
# This may be replaced when dependencies are built.
