# Empty compiler generated dependencies file for ablation_tuning.
# This may be replaced when dependencies are built.
