file(REMOVE_RECURSE
  "CMakeFiles/ablation_tuning.dir/ablation_tuning.cpp.o"
  "CMakeFiles/ablation_tuning.dir/ablation_tuning.cpp.o.d"
  "ablation_tuning"
  "ablation_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
