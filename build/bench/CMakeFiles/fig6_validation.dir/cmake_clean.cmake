file(REMOVE_RECURSE
  "CMakeFiles/fig6_validation.dir/fig6_validation.cpp.o"
  "CMakeFiles/fig6_validation.dir/fig6_validation.cpp.o.d"
  "fig6_validation"
  "fig6_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
