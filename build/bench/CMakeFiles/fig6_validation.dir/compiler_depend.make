# Empty compiler generated dependencies file for fig6_validation.
# This may be replaced when dependencies are built.
