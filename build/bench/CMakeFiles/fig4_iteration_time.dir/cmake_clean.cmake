file(REMOVE_RECURSE
  "CMakeFiles/fig4_iteration_time.dir/fig4_iteration_time.cpp.o"
  "CMakeFiles/fig4_iteration_time.dir/fig4_iteration_time.cpp.o.d"
  "fig4_iteration_time"
  "fig4_iteration_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_iteration_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
