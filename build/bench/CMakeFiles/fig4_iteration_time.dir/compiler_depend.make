# Empty compiler generated dependencies file for fig4_iteration_time.
# This may be replaced when dependencies are built.
