/// \file table_energy.cpp
/// \brief Energy-to-solution table — the "green computing milestones"
/// the AVU-GSR work tracks alongside speed (Cesare et al., INAF TR 164).
/// Energy per 100-iteration run for every framework x platform cell at
/// 10 GB, plus the energy-based analog of the Pennycook P score.
#include <iostream>

#include "metrics/pennycook.hpp"
#include "perfmodel/energy.hpp"
#include "util/table.hpp"

int main() {
  using namespace gaia;
  using namespace gaia::perfmodel;

  const auto footprint = static_cast<byte_size>(10.0 * kGiB);
  const auto platforms = platforms_for_size(footprint);
  const EnergyModel model;

  std::cout << "=== energy per 100-iteration run (10 GB problem) ===\n\n";
  std::vector<std::string> headers = {"framework"};
  for (Platform p : platforms) headers.push_back(to_string(p) + " (kJ)");
  util::Table t(headers);
  for (Framework f : all_frameworks()) {
    std::vector<std::string> row = {to_string(f)};
    for (Platform p : platforms) {
      const auto r = model.evaluate(f, p, footprint);
      row.push_back(r.supported
                        ? util::Table::num(r.energy_per_run_j / 1e3, 2)
                        : "n/a");
    }
    t.add_row(row);
  }
  std::cout << t.str() << '\n';

  std::cout << "average board power during the solve:\n";
  for (Platform p : platforms) {
    const auto r = model.evaluate(Framework::kHip, p, footprint);
    if (!r.supported) continue;
    std::cout << "  " << to_string(p) << ": "
              << util::Table::num(r.avg_power_w, 0) << " W\n";
  }
  std::cout << '\n';

  const auto m = model.energy_campaign(footprint, all_frameworks(),
                                       platforms);
  const auto p_energy = metrics::pennycook_scores(m);
  util::Table pe({"framework", "energy-P"});
  for (std::size_t a = 0; a < m.n_applications(); ++a)
    pe.add_row({m.applications()[a], util::Table::num(p_energy[a], 3)});
  std::cout << "energy-portability (harmonic mean of energy efficiency "
               "across platforms):\n"
            << pe.str();
  std::cout << "note how the 70 W T4 narrows the gap to the 700 W H100 in "
               "joules despite being an order of magnitude slower — the "
               "speed and energy cascades are different orderings.\n";
  return 0;
}
