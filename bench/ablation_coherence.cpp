/// \file ablation_coherence.cpp
/// \brief Memory-coherence ablation (paper SIV-b): the cost of fine-
/// grain host-visible memory vs the hipMemAdvise-forced coarse grain,
/// which the paper adopted "for performance reasons as we observed
/// experimentally that fine-grain coherence led to performance
/// degradations due to the atomic operations".
#include <iostream>

#include "perfmodel/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace gaia;
  using namespace gaia::perfmodel;
  using backends::CoherenceMode;

  const auto footprint = static_cast<byte_size>(10.0 * kGiB);
  const ProblemShape shape = ProblemShape::from_footprint(footprint);

  std::cout << "=== memory-coherence ablation (10 GB model) ===\n\n";
  util::Table t({"platform", "atomics", "coarse (ms)", "fine (ms)",
                 "fine-grain penalty"});
  for (Platform p : all_platforms()) {
    const KernelCostModel model(gpu_spec(p));
    for (backends::AtomicMode mode :
         {backends::AtomicMode::kNativeRmw, backends::AtomicMode::kCasLoop}) {
      ExecutionPlan plan;
      plan.tuning = model.tuned_table();
      plan.atomic_mode = mode;
      plan.coherence = CoherenceMode::kCoarseGrain;
      const double coarse = model.iteration_seconds(shape, plan);
      plan.coherence = CoherenceMode::kFineGrain;
      const double fine = model.iteration_seconds(shape, plan);
      t.add_row({to_string(p), backends::to_string(mode),
                 util::Table::num(coarse * 1e3, 1),
                 util::Table::num(fine * 1e3, 1),
                 util::Table::num((fine / coarse - 1.0) * 100.0, 1) + " %"});
    }
  }
  std::cout << t.str();
  std::cout << "fine grain taxes every atomic with a coherent transaction "
               "(largest where atomics are already the bottleneck), which "
               "is why the HIP and PSTL ports pass hipMemAdvise coarse "
               "grain (paper SIV-b).\n";
  return 0;
}
