/// \file ablation_streams.cpp
/// \brief Stream-overlap ablation (paper SIV): what overlapping the four
/// aprod2 scatter kernels buys, in the platform model and measured on
/// host with this library's real Stream implementation.
#include <iostream>

#include "core/lsqr.hpp"
#include "matrix/generator.hpp"
#include "perfmodel/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace gaia;
  using namespace gaia::perfmodel;

  const auto footprint = static_cast<byte_size>(10.0 * kGiB);
  const ProblemShape shape = ProblemShape::from_footprint(footprint);

  std::cout << "=== aprod2 stream-overlap ablation (10 GB model) ===\n\n";
  util::Table t({"platform", "atomics", "no streams (ms)", "streams (ms)",
                 "gain"});
  for (Platform p : all_platforms()) {
    const KernelCostModel model(gpu_spec(p));
    for (backends::AtomicMode mode :
         {backends::AtomicMode::kNativeRmw, backends::AtomicMode::kCasLoop}) {
      ExecutionPlan plan;
      plan.tuning = model.tuned_table();
      plan.atomic_mode = mode;
      plan.use_streams = false;
      const double seq = model.iteration_seconds(shape, plan);
      plan.use_streams = true;
      const double ovl = model.iteration_seconds(shape, plan);
      t.add_row({to_string(p), backends::to_string(mode),
                 util::Table::num(seq * 1e3, 1),
                 util::Table::num(ovl * 1e3, 1),
                 util::Table::num((1.0 - ovl / seq) * 100.0, 1) + " %"});
    }
  }
  std::cout << t.str();
  std::cout << "streams hide the latency-bound atomic phases behind the "
               "other kernels' bandwidth use; the gain is largest when "
               "atomics are expensive (CAS), matching why the paper "
               "overlaps exactly the aprod2 kernels (SIV).\n\n";

  // Host-measured: real Stream objects overlapping real kernels.
  std::cout << "=== host-measured stream overlap (gpusim backend) ===\n\n";
  matrix::GeneratorConfig cfg;
  cfg.seed = 31337;
  cfg.n_stars = 3000;
  cfg.obs_per_star_mean = 30.0;
  cfg.att_dof_per_axis = 96;
  cfg.n_instr_params = 64;
  const auto gen = matrix::generate_system(cfg);
  auto run = [&](bool streams) {
    core::LsqrOptions opts;
    opts.aprod.backend = backends::BackendKind::kGpuSim;
    opts.aprod.use_streams = streams;
    opts.max_iterations = 15;
    opts.compute_std_errors = false;
    return core::lsqr_solve(gen.A, opts).mean_iteration_s;
  };
  const double seq = run(false);
  const double ovl = run(true);
  std::cout << "sequential aprod2: " << seq * 1e3
            << " ms/iter, streamed: " << ovl * 1e3 << " ms/iter\n";
  return 0;
}
