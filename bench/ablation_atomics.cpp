/// \file ablation_atomics.cpp
/// \brief Atomic-lowering ablation (paper SV-B): what the RMW-vs-CAS
/// compiler difference costs on each platform (model), plus a real
/// host-measured microbenchmark of the two lowerings under contention
/// from this library's backends.
#include <iostream>
#include <thread>
#include <vector>

#include "backends/atomic.hpp"
#include "perfmodel/simulator.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace gaia;

/// Host-measured: N threads hammering a vector of targets with each
/// lowering; returns updates/second.
double measure_host_atomics(backends::AtomicMode mode, int n_threads,
                            std::size_t n_targets) {
  constexpr int kUpdatesPerThread = 400000;
  std::vector<real> targets(n_targets, 0.0);
  util::Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&targets, mode, t] {
      const std::size_t n = targets.size();
      for (int i = 0; i < kUpdatesPerThread; ++i)
        backends::atomic_add(targets[(t + i) % n], 1.0, mode);
    });
  }
  for (auto& th : threads) th.join();
  const double seconds = watch.elapsed_s();
  return n_threads * static_cast<double>(kUpdatesPerThread) / seconds;
}

}  // namespace

int main() {
  using namespace gaia::perfmodel;
  using gaia::backends::AtomicMode;
  using gaia::byte_size;
  using gaia::kGiB;
  using gaia::util::Table;

  const auto footprint = static_cast<byte_size>(10.0 * kGiB);
  const ProblemShape shape = ProblemShape::from_footprint(footprint);

  std::cout << "=== atomic-lowering ablation (10 GB model) ===\n\n";
  Table t({"platform", "iter RMW (ms)", "iter CAS (ms)", "CAS penalty"});
  for (Platform p : all_platforms()) {
    const KernelCostModel model(gpu_spec(p));
    ExecutionPlan plan;
    plan.tuning = model.tuned_table();
    plan.use_streams = true;
    plan.atomic_mode = AtomicMode::kNativeRmw;
    const double rmw = model.iteration_seconds(shape, plan);
    plan.atomic_mode = AtomicMode::kCasLoop;
    const double cas = model.iteration_seconds(shape, plan);
    t.add_row({to_string(p), Table::num(rmw * 1e3, 1),
               Table::num(cas * 1e3, 1), Table::num(cas / rmw, 2) + "x"});
  }
  std::cout << t.str();
  std::cout << "paper reference: on MI250X, compilers that cannot honour "
               "-munsafe-fp-atomics (base clang OpenMP, DPC++) emit CAS "
               "loops and lose most of their efficiency (SV-B).\n\n";

  std::cout << "=== host-measured atomic lowerings (this machine) ===\n\n";
  Table h({"contention", "RMW (Mupd/s)", "CAS-loop (Mupd/s)"});
  struct Case {
    const char* name;
    int threads;
    std::size_t targets;
  };
  for (const Case c : {Case{"low (4 thr/4096 tgt)", 4, 4096},
                       Case{"high (4 thr/8 tgt)", 4, 8},
                       Case{"extreme (4 thr/1 tgt)", 4, 1}}) {
    const double rmw =
        measure_host_atomics(AtomicMode::kNativeRmw, c.threads, c.targets);
    const double cas =
        measure_host_atomics(AtomicMode::kCasLoop, c.threads, c.targets);
    h.add_row({c.name, Table::num(rmw / 1e6, 1), Table::num(cas / 1e6, 1)});
  }
  std::cout << h.str();
  std::cout << "(on CPUs both lower to similar instructions; the table "
               "demonstrates the contention sensitivity the GPU model "
               "prices, not absolute GPU costs)\n";
  return 0;
}
