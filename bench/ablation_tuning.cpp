/// \file ablation_tuning.cpp
/// \brief Kernel-shape tuning ablation (paper SV-B), driven by the
/// runtime Autotuner: the same coordinate-descent search the solver runs
/// during warm-up is pointed at the calibrated cost model of each
/// platform, and the per-platform winners and tuning gains are reported
/// — the "up to 40% reduction" result, including the paper's observation
/// that T4/V100 prefer 32 threads while A100/H100 prefer 256.
///
/// Before the tuning subsystem existed this bench carried its own
/// hand-rolled sweep loop; now the search logic lives in one place
/// (tuning::Autotuner) and the bench only supplies the measurement
/// oracle: model.kernel_seconds() instead of a wall clock.
#include <iostream>

#include "perfmodel/simulator.hpp"
#include "tuning/autotuner.hpp"
#include "util/table.hpp"

namespace {

using namespace gaia;
using namespace gaia::perfmodel;

tuning::AutotuneOptions model_search_options() {
  tuning::AutotuneOptions opts;
  opts.samples_per_config = 1;  // the model is deterministic
  opts.max_configs_per_kernel = 24;
  opts.block_grid = {8, 16, 32, 64, 128, 256, 512};
  opts.thread_grid = {32, 64, 128, 256, 512, 1024};
  return opts;
}

/// Runs the Autotuner's search against the cost model: every proposed
/// candidate is "timed" by kernel_seconds(). The search is driven the
/// way Aprod drives it online — propose, measure, report — so the bench
/// exercises the production search path.
backends::TuningTable tune_on_model(const KernelCostModel& model,
                                    const ProblemShape& shape,
                                    AtomicMode mode) {
  tuning::Autotuner tuner(backends::BackendKind::kGpuSim,
                          model_search_options());
  while (tuner.active()) {
    for (backends::KernelId id : backends::all_kernels()) {
      if (!tuner.searching(id)) continue;
      const backends::KernelConfig cfg = tuner.propose(id);
      tuner.report(id, cfg, model.kernel_seconds(id, shape, cfg, mode));
    }
  }
  return tuner.apply_winners(backends::TuningTable::untuned({256, 256}));
}

}  // namespace

int main() {
  const auto footprint = static_cast<byte_size>(10.0 * kGiB);
  const ProblemShape shape = ProblemShape::from_footprint(footprint);

  std::cout << "=== kernel-shape autotuning ablation (10 GB model) ===\n\n";
  util::Table table({"platform", "256x256 (ms)", "autotuned (ms)",
                     "gain", "aprod1_astro", "aprod2_att"});

  for (Platform p : all_platforms()) {
    const KernelCostModel model(gpu_spec(p));
    const AtomicMode mode = AtomicMode::kNativeRmw;

    ExecutionPlan naive;
    naive.tuning = backends::TuningTable::untuned({256, 256});
    naive.atomic_mode = mode;
    naive.use_streams = true;
    const double t_naive = model.iteration_seconds(shape, naive);

    ExecutionPlan tuned = naive;
    tuned.tuning = tune_on_model(model, shape, mode);
    const double t_tuned = model.iteration_seconds(shape, tuned);

    const auto fmt_cfg = [](backends::KernelConfig c) {
      return std::to_string(c.blocks) + "x" + std::to_string(c.threads);
    };
    table.add_row(
        {to_string(p), util::Table::num(t_naive * 1e3, 1),
         util::Table::num(t_tuned * 1e3, 1),
         util::Table::num((1.0 - t_tuned / t_naive) * 100.0, 1) + " %",
         fmt_cfg(tuned.tuning.get(backends::KernelId::kAprod1Astro)),
         fmt_cfg(tuned.tuning.get(backends::KernelId::kAprod2Att))});
  }
  std::cout << table.str();
  std::cout << "paper reference: tuning recovered up to 40% iteration time; "
               "32 threads/block wins on T4/V100, 256 on A100/H100, small "
               "shapes on MI250X. The atomic kernels start the descent "
               "narrow (the collision prior), the gathers start wide.\n\n";

  // Atomic-kernel shape sweep: the narrow-vs-wide tradeoff for the
  // scatter kernels under both atomic lowerings (MI250X). This is a
  // lowering comparison, not a shape search, so it stays a direct sweep.
  std::cout << "=== aprod2 atomic-kernel lane sweep on MI250X ===\n\n";
  const KernelCostModel mi(gpu_spec(Platform::kMi250x));
  util::Table atomic_table(
      {"lanes", "RMW att+instr (ms)", "CAS att+instr (ms)"});
  for (int lanes : {256, 1024, 4096, 16384, 65536}) {
    const backends::KernelConfig cfg{lanes / 64, 64};
    double rmw = 0, cas = 0;
    for (backends::KernelId id :
         {backends::KernelId::kAprod2Att, backends::KernelId::kAprod2Instr}) {
      rmw += mi.atomic_seconds(id, shape, cfg, AtomicMode::kNativeRmw);
      cas += mi.atomic_seconds(id, shape, cfg, AtomicMode::kCasLoop);
    }
    atomic_table.add_row({std::to_string(lanes),
                          util::Table::num(rmw * 1e3, 3),
                          util::Table::num(cas * 1e3, 3)});
  }
  std::cout << atomic_table.str();
  std::cout << "with native RMW the scatter wants width; a CAS loop makes "
               "collisions dominate, which is why narrow launches win on "
               "compilers without -munsafe-fp-atomics (paper SV-B).\n";
  return 0;
}
