/// \file ablation_tuning.cpp
/// \brief Kernel-shape tuning ablation (paper SV-B): sweeps the
/// threads-per-block of every kernel on each platform and reports the
/// iteration time, the per-platform optimum, and the tuning gain — the
/// "up to 40% reduction" result, including the paper's observation that
/// T4/V100 prefer 32 threads while A100/H100 prefer 256.
#include <iostream>

#include "perfmodel/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace gaia;
  using namespace gaia::perfmodel;

  const auto footprint = static_cast<byte_size>(10.0 * kGiB);
  const ProblemShape shape = ProblemShape::from_footprint(footprint);
  const int thread_sweep[] = {32, 64, 128, 256, 512, 1024};

  std::cout << "=== kernel-shape tuning ablation (10 GB model) ===\n\n";
  std::vector<std::string> headers = {"platform"};
  for (int t : thread_sweep)
    headers.push_back(std::to_string(t) + " thr (ms)");
  headers.push_back("best");
  headers.push_back("gain vs 256");
  util::Table table(headers);

  for (Platform p : all_platforms()) {
    const GpuSpec& spec = gpu_spec(p);
    const KernelCostModel model(spec);
    std::vector<std::string> row = {to_string(p)};
    double best_time = 1e30, time_256 = 0;
    int best_threads = 0;
    for (int threads : thread_sweep) {
      // Uniform shape across kernels, lanes held at device width.
      const std::int32_t blocks = static_cast<std::int32_t>(
          std::max<std::int64_t>(8, spec.max_concurrent_lanes / threads));
      ExecutionPlan plan;
      plan.tuning = backends::TuningTable::untuned({blocks, threads});
      plan.use_streams = true;
      const double t = model.iteration_seconds(shape, plan);
      row.push_back(util::Table::num(t * 1e3, 1));
      if (t < best_time) {
        best_time = t;
        best_threads = threads;
      }
      if (threads == 256) time_256 = t;
    }
    row.push_back(std::to_string(best_threads) + " thr");
    row.push_back(
        util::Table::num((1.0 - best_time / time_256) * 100.0, 1) + " %");
    table.add_row(row);
  }
  std::cout << table.str();
  std::cout << "paper reference: tuning recovered up to 40% iteration time; "
               "32 threads/block wins on T4/V100, 256 on A100/H100, small "
               "shapes on MI250X.\n\n";

  // Atomic-kernel shape sweep: the narrow-vs-wide tradeoff for the
  // scatter kernels under both atomic lowerings (MI250X).
  std::cout << "=== aprod2 atomic-kernel lane sweep on MI250X ===\n\n";
  const KernelCostModel mi(gpu_spec(Platform::kMi250x));
  util::Table atomic_table(
      {"lanes", "RMW att+instr (ms)", "CAS att+instr (ms)"});
  for (int lanes : {256, 1024, 4096, 16384, 65536}) {
    const backends::KernelConfig cfg{lanes / 64, 64};
    double rmw = 0, cas = 0;
    for (backends::KernelId id :
         {backends::KernelId::kAprod2Att, backends::KernelId::kAprod2Instr}) {
      rmw += mi.atomic_seconds(id, shape, cfg, AtomicMode::kNativeRmw);
      cas += mi.atomic_seconds(id, shape, cfg, AtomicMode::kCasLoop);
    }
    atomic_table.add_row({std::to_string(lanes),
                          util::Table::num(rmw * 1e3, 3),
                          util::Table::num(cas * 1e3, 3)});
  }
  std::cout << atomic_table.str();
  std::cout << "with native RMW the scatter wants width; a CAS loop makes "
               "collisions dominate, which is why narrow launches win on "
               "compilers without -munsafe-fp-atomics (paper SV-B).\n";
  return 0;
}
