/// \file fig5_app_efficiency.cpp
/// \brief Regenerates paper Figure 5 (a/b/c): application efficiency per
/// platform and framework at 10/30/60 GB, as bar-chart text plus CSV.
#include <iostream>

#include "metrics/efficiency.hpp"
#include "perfmodel/simulator.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gaia;
  using namespace gaia::perfmodel;

  util::Cli cli("fig5_app_efficiency", "paper Fig. 5 reproduction");
  cli.add_option("csv-dir", "", "directory for CSV output (empty = none)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string csv_dir = cli.get("csv-dir");

    PlatformSimulator sim;
    const double sizes[] = {10.0, 30.0, 60.0};
    const char sub[] = {'a', 'b', 'c'};

    for (int s = 0; s < 3; ++s) {
      const auto footprint = static_cast<byte_size>(sizes[s] * kGiB);
      const auto platforms = platforms_for_size(footprint);
      const auto m =
          sim.measure_campaign(footprint, all_frameworks(), platforms);
      const auto eff = metrics::application_efficiency(m);

      std::cout << "=== Fig. 5" << sub[s] << ": application efficiency, "
                << sizes[s] << " GB ===\n\n";
      util::CsvWriter csv({"platform", "framework", "efficiency"});
      for (std::size_t p = 0; p < m.n_platforms(); ++p) {
        std::cout << m.platforms()[p] << '\n';
        for (std::size_t a = 0; a < m.n_applications(); ++a) {
          if (m.supported(a, p)) {
            std::cout << "  "
                      << util::bar(m.applications()[a], eff[a][p], 1.0, 32)
                      << '\n';
          } else {
            std::cout << "  " << m.applications()[a]
                      << "  (unsupported)\n";
          }
          csv.add_row({m.platforms()[p], m.applications()[a],
                       util::Table::num(eff[a][p], 6)});
        }
        std::cout << '\n';
      }
      if (!csv_dir.empty())
        csv.write(csv_dir + "/fig5" + std::string(1, sub[s]) +
                  "_efficiency.csv");
    }
    std::cout
        << "shape checks vs the paper: PSTL efficiency rises from T4 to "
           "H100 (~0.9 on H100) and sits at 0.45-0.6 on MI250X; OMP+V "
           "~0.91 and OMP+LLVM ~0.84 of the best on H100; CAS-lowered "
           "atomics (OMP+LLVM, SYCL+DPCPP) collapse on MI250X.\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
