/// \file pstl_scaling.cpp
/// \brief pSTL-Bench-style scalability microbenchmarks for the host
/// backends.
///
/// The pSTL-Bench line of work shows that C++ parallel algorithms lose
/// to OpenMP not because the abstraction is slow but because of *grain*:
/// a fixed chunk size over-decomposes small ranges (the hand-out counter
/// becomes the bottleneck) and under-amortizes dispatch on large ones.
/// This suite isolates that effect on our own PSTL shim: five access
/// patterns (for_each / transform / reduce / gather / scatter — the
/// memory shapes of the aprod kernels) swept over range sizes, each run
/// three ways:
///   openmp       — `#pragma omp parallel for` reference
///   pstl         — our for_each(par) with the range-proportional grain
///   pstl-fixed   — the same with the legacy fixed 1024 grain
/// The pstl-vs-openmp gap before/after the chunked-range fix is the
/// headline table in EXPERIMENTS.md; `--smoke` keeps it CI-sized.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "backends/atomic.hpp"
#include "backends/counting_iterator.hpp"
#include "backends/pstl_algorithms.hpp"
#include "backends/thread_pool.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace gaia;

enum class Runner { kOpenMp, kPstl, kPstlFixed };

/// Runs `body(i)` over [0, n) under the selected runner. Without
/// OpenMP the reference column degrades to a serial loop (the ratios
/// then read as speedup-vs-serial, still a valid scaling curve).
template <typename Body>
void run_indexed(Runner r, std::int64_t n, Body body) {
  switch (r) {
    case Runner::kOpenMp: {
#if defined(GAIA_HAS_OPENMP)
#pragma omp parallel for schedule(static)
#endif
      for (std::int64_t i = 0; i < n; ++i) body(i);
      return;
    }
    case Runner::kPstl:
    case Runner::kPstlFixed: {
      const bool prev =
          backends::pstl::set_legacy_grain(r == Runner::kPstlFixed);
      backends::pstl::for_each(backends::pstl::par,
                               backends::CountingIterator(0),
                               backends::CountingIterator(n),
                               [&](std::int64_t i) { body(i); });
      backends::pstl::set_legacy_grain(prev);
      return;
    }
  }
}

struct Pattern {
  const char* name;
  /// Runs one repetition; returns a checksum-ish value so the work
  /// cannot be optimized away.
  double (*run)(Runner, std::int64_t, std::vector<real>&,
                std::vector<real>&, const std::vector<std::int64_t>&);
};

double pattern_for_each(Runner r, std::int64_t n, std::vector<real>& a,
                        std::vector<real>& b,
                        const std::vector<std::int64_t>&) {
  (void)b;
  run_indexed(r, n, [&](std::int64_t i) {
    a[static_cast<std::size_t>(i)] =
        real{1.0000001} * a[static_cast<std::size_t>(i)] + real{1e-9};
  });
  return a[0];
}

double pattern_transform(Runner r, std::int64_t n, std::vector<real>& a,
                         std::vector<real>& b,
                         const std::vector<std::int64_t>&) {
  run_indexed(r, n, [&](std::int64_t i) {
    const auto u = static_cast<std::size_t>(i);
    b[u] = a[u] * a[u] + real{0.5};
  });
  return b[0];
}

double pattern_reduce(Runner r, std::int64_t n, std::vector<real>& a,
                      std::vector<real>& b,
                      const std::vector<std::int64_t>&) {
  (void)b;
  if (r == Runner::kOpenMp) {
    real sum = 0;
#if defined(GAIA_HAS_OPENMP)
#pragma omp parallel for schedule(static) reduction(+ : sum)
#endif
    for (std::int64_t i = 0; i < n; ++i)
      sum += a[static_cast<std::size_t>(i)];
    return sum;
  }
  const bool prev = backends::pstl::set_legacy_grain(r == Runner::kPstlFixed);
  const real sum = backends::pstl::transform_reduce(
      backends::pstl::par, backends::CountingIterator(0),
      backends::CountingIterator(n), real{0},
      [](real x, real y) { return x + y; },
      [&](std::int64_t i) { return a[static_cast<std::size_t>(i)]; });
  backends::pstl::set_legacy_grain(prev);
  return sum;
}

double pattern_gather(Runner r, std::int64_t n, std::vector<real>& a,
                      std::vector<real>& b,
                      const std::vector<std::int64_t>& idx) {
  run_indexed(r, n, [&](std::int64_t i) {
    const auto u = static_cast<std::size_t>(i);
    b[u] = a[static_cast<std::size_t>(idx[u])];
  });
  return b[0];
}

double pattern_scatter(Runner r, std::int64_t n, std::vector<real>& a,
                       std::vector<real>& b,
                       const std::vector<std::int64_t>& idx) {
  run_indexed(r, n, [&](std::int64_t i) {
    const auto u = static_cast<std::size_t>(i);
    backends::atomic_add_rmw(b[static_cast<std::size_t>(idx[u])], a[u]);
  });
  return b[0];
}

/// The aprod1 access motif: each row gathers a run of contiguous
/// coefficient lanes (kNnzPerRow = 24 in the solver) and reduces them,
/// with the same explicit `omp simd` reduction clause the SoA/sliced
/// aprod1 bodies carry — the vectorizable half of the gather story, as
/// opposed to `gather`'s fully random single-lane loads.
double pattern_gather_simd(Runner r, std::int64_t n, std::vector<real>& a,
                           std::vector<real>& b,
                           const std::vector<std::int64_t>& idx) {
  constexpr std::int64_t kLanes = 24;
  const auto max_base = static_cast<std::size_t>(
      static_cast<std::int64_t>(a.size()) - kLanes);
  run_indexed(r, n, [&](std::int64_t i) {
    const auto u = static_cast<std::size_t>(i);
    const std::size_t base =
        std::min(static_cast<std::size_t>(idx[u]), max_base);
    real sum = 0;
    GAIA_OMP_SIMD_REDUCTION(sum)
    for (std::int64_t l = 0; l < kLanes; ++l)
      sum += a[base + static_cast<std::size_t>(l)];
    b[u] = sum;
  });
  return b[0];
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("pstl_scaling",
                "pSTL-Bench-style grain/scalability sweep: openmp vs "
                "pstl (auto grain) vs pstl-fixed (legacy 1024)");
  cli.add_flag("smoke", "CI mode: smallest sweep, 3 reps");
  cli.add_option("reps", "7", "timed repetitions per cell (median wins)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bool smoke = cli.get_flag("smoke");
    const int reps = smoke ? 3 : static_cast<int>(cli.get_int("reps"));
    GAIA_CHECK(reps > 0, "--reps must be positive");

    std::vector<std::int64_t> sizes =
        smoke ? std::vector<std::int64_t>{1 << 12, 1 << 16, 1 << 20}
              : std::vector<std::int64_t>{1 << 12, 1 << 16, 1 << 20,
                                          1 << 23};
    const std::int64_t max_n = sizes.back();

    std::vector<real> a(static_cast<std::size_t>(max_n));
    std::vector<real> b(static_cast<std::size_t>(max_n));
    std::vector<std::int64_t> idx(static_cast<std::size_t>(max_n));
    util::Xoshiro256 rng(99);
    for (auto& v : a) v = rng.normal();
    for (std::size_t i = 0; i < idx.size(); ++i)
      idx[i] = static_cast<std::int64_t>(rng.next() %
                                         static_cast<std::uint64_t>(max_n));

    const Pattern patterns[] = {
        {"for_each", pattern_for_each},   {"transform", pattern_transform},
        {"reduce", pattern_reduce},       {"gather", pattern_gather},
        {"gather-simd", pattern_gather_simd},
        {"scatter", pattern_scatter},
    };

    std::cout << "pool workers: " << backends::ThreadPool::global().workers()
              << " (+1 submitter), pinning "
              << (backends::ThreadPool::pin_threads_requested() ? "on"
                                                                : "off")
              << '\n';
    util::Table t({"pattern", "n", "openmp (us)", "pstl (us)",
                   "pstl-fixed (us)", "pstl/omp", "fixed/omp"});
    volatile double sink = 0;
    (void)sink;  // checksum dump; only written so the work survives -O2
    for (const Pattern& p : patterns) {
      for (const std::int64_t n : sizes) {
        double med[3] = {0, 0, 0};
        for (const Runner r :
             {Runner::kOpenMp, Runner::kPstl, Runner::kPstlFixed}) {
          std::vector<double> samples;
          samples.reserve(static_cast<std::size_t>(reps));
          sink = p.run(r, n, a, b, idx);  // warm-up, untimed
          for (int rep = 0; rep < reps; ++rep) {
            util::Stopwatch watch;
            sink = p.run(r, n, a, b, idx);
            samples.push_back(watch.elapsed_s());
          }
          med[static_cast<int>(r)] = util::median(samples);
        }
        t.add_row({p.name, std::to_string(n),
                   util::Table::num(med[0] * 1e6, 1),
                   util::Table::num(med[1] * 1e6, 1),
                   util::Table::num(med[2] * 1e6, 1),
                   util::Table::num(med[1] / med[0], 2) + "x",
                   util::Table::num(med[2] / med[0], 2) + "x"});
      }
    }
    std::cout << t.str();
    std::cout << "pstl/omp is the abstraction gap with the "
                 "range-proportional grain; fixed/omp is the same shim "
                 "with the legacy fixed 1024 grain (the pSTL-Bench "
                 "pathology). The fix should pull pstl/omp toward 1 at "
                 "both ends of the sweep.\n";
    return 0;
  } catch (const gaia::Error& e) {
    std::cerr << "pstl_scaling: " << e.what() << '\n';
    return 1;
  }
}
