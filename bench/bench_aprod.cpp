/// \file bench_aprod.cpp
/// \brief google-benchmark microbenchmarks of the real (host-executed)
/// aprod kernels across backends — the measured counterpart of the
/// platform model's analytical kernel costs.
#include <benchmark/benchmark.h>

#include "core/aprod.hpp"
#include "matrix/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace gaia;

const matrix::GeneratedSystem& system_under_test() {
  static const matrix::GeneratedSystem gen = [] {
    matrix::GeneratorConfig cfg;
    cfg.seed = 9001;
    cfg.n_stars = 2000;
    cfg.obs_per_star_mean = 30.0;
    cfg.att_dof_per_axis = 64;
    cfg.n_instr_params = 64;
    return matrix::generate_system(cfg);
  }();
  return gen;
}

core::AprodOptions options_for(backends::BackendKind backend, bool streams) {
  core::AprodOptions opts;
  opts.backend = backend;
  opts.use_streams = streams;
  return opts;
}

/// Installs `strategy` on the three atomic aprod2 kernels.
backends::TuningTable table_with_strategy(backends::ScatterStrategy strategy) {
  backends::TuningTable table = backends::TuningTable::tuned_default();
  for (backends::KernelId id : backends::all_kernels()) {
    if (!backends::kernel_uses_atomics(id)) continue;
    backends::KernelConfig cfg = table.get(id);
    cfg.strategy = strategy;
    table.set(id, cfg);
  }
  return table;
}

void BM_Aprod1(benchmark::State& state) {
  const auto backend = static_cast<backends::BackendKind>(state.range(0));
  const auto& gen = system_under_test();
  backends::DeviceContext device;
  core::Aprod aprod(gen.A, device, options_for(backend, false));
  util::Xoshiro256 rng(1);
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()));
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()), 0.0);
  for (auto& v : x) v = rng.normal();
  for (auto _ : state) {
    aprod.apply1(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.A.values().size_bytes()));
  state.SetLabel(backends::to_string(backend));
}

void BM_Aprod2(benchmark::State& state) {
  const auto backend = static_cast<backends::BackendKind>(state.range(0));
  const bool streams = state.range(1) != 0;
  const auto& gen = system_under_test();
  backends::DeviceContext device;
  core::Aprod aprod(gen.A, device, options_for(backend, streams));
  util::Xoshiro256 rng(2);
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()), 0.0);
  for (auto& v : y) v = rng.normal();
  for (auto _ : state) {
    aprod.apply2(y, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.A.values().size_bytes()));
  state.SetLabel(backends::to_string(backend) +
                 (streams ? "/streams" : "/sequential"));
}

/// The atomic-vs-privatized comparison at the benchmark level: same
/// apply2 pass, strategy selected via the tuning table (the registry
/// routes the three atomic kernels to the privatized launchers).
void BM_Aprod2Strategy(benchmark::State& state) {
  const auto backend = static_cast<backends::BackendKind>(state.range(0));
  const auto strategy =
      static_cast<backends::ScatterStrategy>(state.range(1));
  const auto& gen = system_under_test();
  backends::DeviceContext device;
  core::AprodOptions opts = options_for(backend, false);
  opts.tuning = table_with_strategy(strategy);
  core::Aprod aprod(gen.A, device, opts);
  util::Xoshiro256 rng(2);
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()), 0.0);
  for (auto& v : y) v = rng.normal();
  for (auto _ : state) {
    aprod.apply2(y, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.A.values().size_bytes()));
  state.SetLabel(backends::to_string(backend) + "/" +
                 backends::to_string(strategy));
}

/// The fused single-row-pass aprod2 (the PSTL-port shape): att, instr
/// and glob scatters folded into one kernel.
void BM_Aprod2Fused(benchmark::State& state) {
  const auto backend = static_cast<backends::BackendKind>(state.range(0));
  const auto& gen = system_under_test();
  backends::DeviceContext device;
  core::AprodOptions opts = options_for(backend, false);
  opts.fuse_aprod2 = true;
  core::Aprod aprod(gen.A, device, opts);
  util::Xoshiro256 rng(2);
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()), 0.0);
  for (auto& v : y) v = rng.normal();
  for (auto _ : state) {
    aprod.apply2(y, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.A.values().size_bytes()));
  state.SetLabel(backends::to_string(backend) + "/fused");
}

void RegisterAll() {
  for (backends::BackendKind backend : backends::all_backends()) {
    benchmark::RegisterBenchmark("aprod1", BM_Aprod1)
        ->Arg(static_cast<int>(backend))
        ->Unit(benchmark::kMillisecond);
    for (int streams : {0, 1}) {
      benchmark::RegisterBenchmark("aprod2", BM_Aprod2)
          ->Args({static_cast<int>(backend), streams})
          ->Unit(benchmark::kMillisecond);
    }
    for (backends::ScatterStrategy strategy :
         {backends::ScatterStrategy::kAtomic,
          backends::ScatterStrategy::kPrivatized}) {
      benchmark::RegisterBenchmark("aprod2_scatter", BM_Aprod2Strategy)
          ->Args({static_cast<int>(backend), static_cast<int>(strategy)})
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark("aprod2_fused", BM_Aprod2Fused)
        ->Arg(static_cast<int>(backend))
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
