/// \file bench_aprod.cpp
/// \brief google-benchmark microbenchmarks of the real (host-executed)
/// aprod kernels across backends — the measured counterpart of the
/// platform model's analytical kernel costs.
#include <benchmark/benchmark.h>

#include "core/aprod.hpp"
#include "matrix/generator.hpp"
#include "util/rng.hpp"

namespace {

using namespace gaia;

const matrix::GeneratedSystem& system_under_test() {
  static const matrix::GeneratedSystem gen = [] {
    matrix::GeneratorConfig cfg;
    cfg.seed = 9001;
    cfg.n_stars = 2000;
    cfg.obs_per_star_mean = 30.0;
    cfg.att_dof_per_axis = 64;
    cfg.n_instr_params = 64;
    return matrix::generate_system(cfg);
  }();
  return gen;
}

core::AprodOptions options_for(backends::BackendKind backend, bool streams) {
  core::AprodOptions opts;
  opts.backend = backend;
  opts.use_streams = streams;
  return opts;
}

void BM_Aprod1(benchmark::State& state) {
  const auto backend = static_cast<backends::BackendKind>(state.range(0));
  const auto& gen = system_under_test();
  backends::DeviceContext device;
  core::Aprod aprod(gen.A, device, options_for(backend, false));
  util::Xoshiro256 rng(1);
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()));
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()), 0.0);
  for (auto& v : x) v = rng.normal();
  for (auto _ : state) {
    aprod.apply1(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.A.values().size_bytes()));
  state.SetLabel(backends::to_string(backend));
}

void BM_Aprod2(benchmark::State& state) {
  const auto backend = static_cast<backends::BackendKind>(state.range(0));
  const bool streams = state.range(1) != 0;
  const auto& gen = system_under_test();
  backends::DeviceContext device;
  core::Aprod aprod(gen.A, device, options_for(backend, streams));
  util::Xoshiro256 rng(2);
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()), 0.0);
  for (auto& v : y) v = rng.normal();
  for (auto _ : state) {
    aprod.apply2(y, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(gen.A.values().size_bytes()));
  state.SetLabel(backends::to_string(backend) +
                 (streams ? "/streams" : "/sequential"));
}

void RegisterAll() {
  for (backends::BackendKind backend : backends::all_backends()) {
    benchmark::RegisterBenchmark("aprod1", BM_Aprod1)
        ->Arg(static_cast<int>(backend))
        ->Unit(benchmark::kMillisecond);
    for (int streams : {0, 1}) {
      benchmark::RegisterBenchmark("aprod2", BM_Aprod2)
          ->Args({static_cast<int>(backend), streams})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
