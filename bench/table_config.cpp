/// \file table_config.cpp
/// \brief Regenerates the paper's provenance tables: compiler and flag
/// combinations per framework and vendor (Tables I-III) and the
/// platform/cluster mapping (Table IV), from the library's framework and
/// platform descriptors.
#include <iostream>

#include "perfmodel/framework.hpp"
#include "util/table.hpp"

int main() {
  using namespace gaia;
  using namespace gaia::perfmodel;

  std::cout << "=== Tables II/III: compilers and flags per framework ===\n\n";
  for (Vendor v : {Vendor::kNvidia, Vendor::kAmd}) {
    std::cout << (v == Vendor::kNvidia ? "NVIDIA architectures"
                                       : "AMD architecture (MI250X)")
              << '\n';
    util::Table t({"framework", "compiler", "version", "flags"});
    for (Framework f : all_frameworks()) {
      if (!framework_traits(f).runs_on(v)) continue;
      const CompilerInfo info = compiler_info(f, v);
      t.add_row({to_string(f), info.compiler, info.version, info.flags});
    }
    std::cout << t.str() << '\n';
  }

  std::cout << "=== Table IV: cluster-to-GPU reference ===\n\n";
  util::Table t({"cluster", "GPU", "vendor", "memory (GB)", "peak BW (GB/s)",
                 "preferred threads"});
  for (Platform p : all_platforms()) {
    const GpuSpec& s = gpu_spec(p);
    t.add_row({s.cluster, s.name,
               s.vendor == Vendor::kNvidia ? "NVIDIA" : "AMD",
               util::Table::num(s.mem_capacity_gb, 0),
               util::Table::num(s.peak_bw_gbs, 0),
               std::to_string(s.preferred_threads)});
  }
  std::cout << t.str();

  std::cout << "\n=== atomic lowering per framework x vendor (SV-B) ===\n\n";
  util::Table a({"framework", "NVIDIA", "AMD (MI250X)"});
  for (Framework f : all_frameworks()) {
    a.add_row({to_string(f),
               backends::to_string(atomic_lowering(f, Vendor::kNvidia)),
               framework_traits(f).runs_on(Vendor::kAmd)
                   ? backends::to_string(atomic_lowering(f, Vendor::kAmd))
                   : std::string("n/a")});
  }
  std::cout << a.str();
  return 0;
}
