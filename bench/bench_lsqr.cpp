/// \file bench_lsqr.cpp
/// \brief google-benchmark measurement of the full LSQR iteration per
/// backend (host execution) — the measured analog of the paper's
/// "average iteration time" metric, at laptop scale.
#include <benchmark/benchmark.h>

#include "core/lsqr.hpp"
#include "matrix/generator.hpp"

namespace {

using namespace gaia;

const matrix::SystemMatrix& system_under_test() {
  static const matrix::GeneratedSystem gen = [] {
    matrix::GeneratorConfig cfg;
    cfg.seed = 9002;
    cfg.n_stars = 1500;
    cfg.obs_per_star_mean = 25.0;
    cfg.att_dof_per_axis = 64;
    cfg.n_instr_params = 48;
    return matrix::generate_system(cfg);
  }();
  return gen.A;
}

void BM_LsqrIteration(benchmark::State& state) {
  const auto backend = static_cast<backends::BackendKind>(state.range(0));
  const bool tuned = state.range(1) != 0;
  core::LsqrOptions opts;
  opts.aprod.backend = backend;
  opts.aprod.use_streams = backend != backends::BackendKind::kSerial;
  opts.aprod.tuning = tuned ? backends::TuningTable::tuned_default()
                            : backends::TuningTable::untuned();
  opts.compute_std_errors = false;

  for (auto _ : state) {
    // Measure a fixed 5-iteration solve; report per-iteration time.
    opts.max_iterations = 5;
    const auto result = core::lsqr_solve(system_under_test(), opts);
    benchmark::DoNotOptimize(result.x.data());
  }
  state.SetItemsProcessed(state.iterations() * 5);
  state.SetLabel(backends::to_string(backend) +
                 (tuned ? "/tuned" : "/untuned"));
}

void RegisterAll() {
  for (backends::BackendKind backend : backends::all_backends()) {
    for (int tuned : {1, 0}) {
      benchmark::RegisterBenchmark("lsqr_5_iterations", BM_LsqrIteration)
          ->Args({static_cast<int>(backend), tuned})
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
