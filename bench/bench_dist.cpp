/// \file bench_dist.cpp
/// \brief google-benchmark of the distributed LSQR across simulated MPI
/// rank counts — the host-measured cost of the World/Comm collectives
/// relative to the single-rank solve.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "dist/dist_lsqr.hpp"
#include "matrix/generator.hpp"

namespace {

using namespace gaia;

const matrix::SystemMatrix& system_under_test() {
  static const matrix::GeneratedSystem gen = [] {
    matrix::GeneratorConfig cfg;
    cfg.seed = 9003;
    cfg.n_stars = 1000;
    cfg.obs_per_star_mean = 25.0;
    cfg.att_dof_per_axis = 64;
    cfg.n_instr_params = 48;
    return matrix::generate_system(cfg);
  }();
  return gen.A;
}

void BM_DistLsqr(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  dist::DistLsqrOptions opts;
  opts.n_ranks = ranks;
  opts.lsqr.aprod.backend = backends::BackendKind::kSerial;
  opts.lsqr.aprod.use_streams = false;
  opts.lsqr.max_iterations = 5;
  opts.lsqr.compute_std_errors = false;
  for (auto _ : state) {
    const auto result = dist::dist_lsqr_solve(system_under_test(), opts);
    benchmark::DoNotOptimize(result.x.data());
  }
  state.SetItemsProcessed(state.iterations() * 5);
  state.SetLabel("ranks=" + std::to_string(ranks));
}

/// Same solve with per-rank tracing + merge + per-rank trace files on —
/// the delta against BM_DistLsqr is the full observability overhead
/// (span recording, wait/exchange splitting, JSON render, clock-aligned
/// merge, file writes).
void BM_DistLsqrTraced(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("gaia_bench_trace_" + std::to_string(ranks));
  dist::DistLsqrOptions opts;
  opts.n_ranks = ranks;
  opts.lsqr.aprod.backend = backends::BackendKind::kSerial;
  opts.lsqr.aprod.use_streams = false;
  opts.lsqr.max_iterations = 5;
  opts.lsqr.compute_std_errors = false;
  opts.trace_dir = dir.string();
  double comm_exposure = 0;
  for (auto _ : state) {
    const auto result = dist::dist_lsqr_solve(system_under_test(), opts);
    benchmark::DoNotOptimize(result.x.data());
    comm_exposure = result.comm_exposure_fraction_max;
  }
  fs::remove_all(dir);
  state.SetItemsProcessed(state.iterations() * 5);
  state.counters["comm_exposure"] = comm_exposure;
  state.SetLabel("ranks=" + std::to_string(ranks) + " traced");
}

}  // namespace

int main(int argc, char** argv) {
  for (int ranks : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark("dist_lsqr_5_iterations", BM_DistLsqr)
        ->Arg(ranks)
        ->Unit(benchmark::kMillisecond);
  }
  for (int ranks : {2, 4, 8}) {
    benchmark::RegisterBenchmark("dist_lsqr_5_iterations_traced",
                                 BM_DistLsqrTraced)
        ->Arg(ranks)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
