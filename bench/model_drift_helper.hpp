/// \file model_drift_helper.hpp
/// \brief Shared bench plumbing for the model-drift report: run a real
/// host LSQR under the profiler, aggregate the measured per-kernel
/// times, and confront them with the cost model's predictions for the
/// same problem shape.
#pragma once

#include <string>
#include <vector>

#include "core/lsqr.hpp"
#include "matrix/generator.hpp"
#include "metrics/model_drift.hpp"
#include "perfmodel/cost_model.hpp"
#include "perfmodel/problem_shape.hpp"
#include "util/profiler.hpp"

namespace gaia::bench {

/// Runs `iterations` LSQR steps of the generated system on the given
/// backend with per-kernel profiling, then builds one drift row per
/// aprod kernel: predicted = cost-model kernel seconds on `spec` x
/// iteration count, measured = profiler totals from the host run.
inline metrics::ModelDriftReport host_drift_report(
    const matrix::GeneratorConfig& gen_cfg,
    const perfmodel::GpuSpec& spec,
    backends::BackendKind backend = backends::BackendKind::kGpuSim,
    int iterations = 20) {
  const auto gen = matrix::generate_system(gen_cfg);
  const perfmodel::ProblemShape shape =
      perfmodel::ProblemShape::from_config(gen_cfg);
  const perfmodel::KernelCostModel model(spec);
  const backends::TuningTable tuning = model.tuned_table();

  auto& prof = util::Profiler::global();
  const bool was_enabled = prof.enabled();
  prof.reset();
  prof.set_enabled(true);

  core::LsqrOptions opts;
  opts.aprod.backend = backend;
  opts.aprod.use_streams = false;  // serialize so per-kernel times add up
  opts.aprod.tuning = tuning;
  opts.max_iterations = iterations;
  opts.compute_std_errors = false;
  core::lsqr_solve(gen.A, opts);

  const auto snapshot = prof.snapshot();
  prof.set_enabled(was_enabled);
  prof.reset();

  std::vector<metrics::KernelDrift> rows;
  for (int k = 0; k < backends::kNumKernels; ++k) {
    const auto id = static_cast<backends::KernelId>(k);
    metrics::KernelDrift row;
    row.kernel = backends::to_string(id);
    row.predicted_s =
        model.kernel_seconds(id, shape, tuning.get(id),
                             backends::AtomicMode::kNativeRmw) *
        iterations;
    for (const auto& region : snapshot)
      if (region.name == row.kernel) row.measured_s = region.total_s;
    rows.push_back(std::move(row));
  }
  return metrics::ModelDriftReport(std::move(rows));
}

/// The small-but-real system both drift benches measure.
inline matrix::GeneratorConfig drift_bench_config() {
  matrix::GeneratorConfig cfg;
  cfg.seed = 4242;
  cfg.n_stars = 2000;
  cfg.obs_per_star_mean = 30.0;
  cfg.att_dof_per_axis = 64;
  cfg.n_instr_params = 64;
  return cfg;
}

}  // namespace gaia::bench
