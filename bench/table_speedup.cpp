/// \file table_speedup.cpp
/// \brief The paper's optimized-vs-production comparison (SV-B, first
/// paragraph): the tuned CUDA port achieved 2.0x over the production
/// code on a 42 GB problem. Decomposes the gain into its ingredients
/// (kernel shapes, stream overlap) on every platform via the cost model,
/// and cross-checks the shape effect with a real host measurement.
#include <iostream>

#include "core/lsqr.hpp"
#include "matrix/generator.hpp"
#include "model_drift_helper.hpp"
#include "obs/session.hpp"
#include "perfmodel/simulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace gaia;
  using namespace gaia::perfmodel;
  obs::Session obs_session = obs::Session::from_env();

  // --- model decomposition --------------------------------------------
  // The paper compared on a 42 GB problem on Leonardo's 64 GB A100s; our
  // A100 spec is the 40 GB part, so the decomposition runs at 30 GB to
  // cover V100/A100/H100/MI250X.
  const auto footprint = static_cast<byte_size>(30.0 * kGiB);
  const ProblemShape shape = ProblemShape::from_footprint(footprint);

  std::cout << "=== optimized vs production solver (30 GB model) ===\n\n";
  util::Table t({"platform", "production (ms)", "+tuned shapes (ms)",
                 "+streams (ms)", "speedup"});
  for (Platform p : all_platforms()) {
    const GpuSpec& spec = gpu_spec(p);
    if (static_cast<double>(footprint) / static_cast<double>(kGiB) >
        spec.mem_capacity_gb)
      continue;
    const KernelCostModel model(spec);

    ExecutionPlan production;  // naive 256x256 shapes, no overlap
    production.tuning = backends::TuningTable::untuned({256, 256});
    production.use_streams = false;

    ExecutionPlan shaped = production;
    shaped.tuning = model.tuned_table();

    ExecutionPlan optimized = shaped;
    optimized.use_streams = true;

    const double t0 = model.iteration_seconds(shape, production);
    const double t1 = model.iteration_seconds(shape, shaped);
    const double t2 = model.iteration_seconds(shape, optimized);
    t.add_row({to_string(p), util::Table::num(t0 * 1e3, 1),
               util::Table::num(t1 * 1e3, 1), util::Table::num(t2 * 1e3, 1),
               util::Table::num(t0 / t2, 2) + "x"});
  }
  std::cout << t.str();
  std::cout << "paper reference: 2.0x on Leonardo vs the production CUDA "
               "version. The model reproduces the shape+stream share of "
               "that gain (largest where bandwidth is shape-sensitive, "
               "V100-class); the rest of the production gap came from "
               "optimizations outside the iteration model (pinned-memory "
               "async staging, collision-reducing kernel restructuring) — "
               "see EXPERIMENTS.md.\n\n";

  // --- measured cross-check on host (gpusim backend) ----------------------
  std::cout << "=== host-measured cross-check (gpusim backend) ===\n\n";
  matrix::GeneratorConfig cfg;
  cfg.seed = 777;
  cfg.n_stars = 2500;
  cfg.obs_per_star_mean = 30.0;
  cfg.att_dof_per_axis = 64;
  cfg.n_instr_params = 64;
  const auto gen = matrix::generate_system(cfg);

  auto run = [&](bool tuned, bool streams) {
    core::LsqrOptions opts;
    opts.aprod.backend = backends::BackendKind::kGpuSim;
    opts.aprod.use_streams = streams;
    opts.aprod.tuning = tuned ? backends::TuningTable::tuned_default()
                              : backends::TuningTable::untuned({256, 256});
    opts.max_iterations = 20;
    opts.compute_std_errors = false;
    return core::lsqr_solve(gen.A, opts).mean_iteration_s;
  };
  const double prod = run(false, false);
  const double opt = run(true, true);
  std::cout << "production-style: " << prod * 1e3
            << " ms/iter, optimized: " << opt * 1e3 << " ms/iter (host "
            << "execution; the shape effect is a GPU phenomenon, so only "
            << "the stream overlap shows up here)\n\n";

  // --- model drift: is the predicted kernel mix still honest? -----------
  // The decomposition above trusts the cost model's per-kernel split;
  // this measures the same kernels on the host and reports the drift
  // between predicted and measured time shares.
  const auto drift =
      bench::host_drift_report(cfg, gpu_spec(Platform::kA100));
  std::cout << drift.markdown(
      "model drift: A100 prediction vs host gpusim measurement");
  drift.write_csv("table_speedup_model_drift.csv");
  std::cout << "drift CSV written to table_speedup_model_drift.csv\n";
  return 0;
}
