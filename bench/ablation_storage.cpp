/// \file ablation_storage.cpp
/// \brief Storage-format ablation: the paper's structure-exploiting
/// layout (paper SIII-B: matrixIndexAstro/matrixIndexAtt/instrCol
/// instead of per-non-zero column indexes) vs generic CSR — memory
/// footprint and measured host SpMV time.
#include <iostream>

#include "core/aprod.hpp"
#include "matrix/csr.hpp"
#include "matrix/generator.hpp"
#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

int main() {
  using namespace gaia;

  matrix::GeneratorConfig cfg;
  cfg.seed = 555;
  cfg.n_stars = 4000;
  cfg.obs_per_star_mean = 30.0;
  cfg.att_dof_per_axis = 96;
  cfg.n_instr_params = 64;
  const auto gen = matrix::generate_system(cfg);
  const auto csr = matrix::to_csr(gen.A);

  std::cout << "=== storage-format ablation ("
            << gen.A.n_rows() << " rows x " << gen.A.n_cols()
            << " unknowns) ===\n\n";
  util::Table t({"format", "bytes", "bytes/row", "vs custom"});
  const double custom_bytes = static_cast<double>(gen.A.footprint_bytes());
  const double csr_bytes = static_cast<double>(csr.bytes());
  const double rows = static_cast<double>(gen.A.n_rows());
  t.add_row({"custom (paper SIII-B)", util::format_bytes(
                                          gen.A.footprint_bytes()),
             util::Table::num(custom_bytes / rows, 1), "1.00x"});
  t.add_row({"generic CSR", util::format_bytes(csr.bytes()),
             util::Table::num(csr_bytes / rows, 1),
             util::Table::num(csr_bytes / custom_bytes, 2) + "x"});
  std::cout << t.str() << '\n';

  // Measured host SpMV: structure-exploiting kernels vs canonical CSR.
  backends::DeviceContext device;
  core::AprodOptions opts;
  opts.backend = backends::BackendKind::kSerial;
  opts.use_streams = false;
  core::Aprod aprod(gen.A, device, opts);

  util::Xoshiro256 rng(1);
  std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()));
  std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  std::vector<real> out_rows(y.size(), 0.0), out_cols(x.size(), 0.0);

  constexpr int kReps = 10;
  util::Stopwatch watch;
  for (int i = 0; i < kReps; ++i) aprod.apply1(x, out_rows);
  const double t_custom_1 = watch.elapsed_s() / kReps;
  watch.reset();
  for (int i = 0; i < kReps; ++i) matrix::csr_matvec(csr, x, out_rows);
  const double t_csr_1 = watch.elapsed_s() / kReps;
  watch.reset();
  for (int i = 0; i < kReps; ++i) aprod.apply2(y, out_cols);
  const double t_custom_2 = watch.elapsed_s() / kReps;
  watch.reset();
  for (int i = 0; i < kReps; ++i) matrix::csr_rmatvec(csr, y, out_cols);
  const double t_csr_2 = watch.elapsed_s() / kReps;

  util::Table m({"product", "custom (ms)", "CSR (ms)", "CSR/custom"});
  m.add_row({"aprod1 (A x)", util::Table::num(t_custom_1 * 1e3, 2),
             util::Table::num(t_csr_1 * 1e3, 2),
             util::Table::num(t_csr_1 / t_custom_1, 2) + "x"});
  m.add_row({"aprod2 (A^T y)", util::Table::num(t_custom_2 * 1e3, 2),
             util::Table::num(t_csr_2 * 1e3, 2),
             util::Table::num(t_csr_2 / t_custom_2, 2) + "x"});
  std::cout << m.str();
  std::cout << "the custom layout drops the per-non-zero column index "
               "(the dominant CSR payload at 24 nnz/row): that is what "
               "lets production hold ~19 TB instead of ~31 TB, and on "
               "bandwidth-bound GPUs traffic is time. On a host at "
               "cache-resident sizes the simpler CSR inner loop can win "
               "the clock (as measured above) — the paper's argument is "
               "about footprint and HBM traffic, not host cycles.\n";
  return 0;
}
