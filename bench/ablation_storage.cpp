/// \file ablation_storage.cpp
/// \brief Storage-layout ablation over the production kernel stack.
///
/// Three comparisons, all driven through the same `LayoutedSystem` +
/// `KernelRegistry` path the solver uses (no hand-rolled loops, so the
/// numbers are the production numbers):
///  1. footprint: seed AoS vs tiled SoA vs sliced-instrumental derived
///     bytes, against generic CSR as the outside reference (the paper's
///     SIII-B argument: the custom layout is what keeps production at
///     ~19 TB instead of ~31 TB);
///  2. measured per-kernel medians per layout on the selected backend;
///  3. an optional `--out` perf baseline with layout-labeled rows so
///     `gaia-perfgate` can track each (kernel, layout) series.
#include <iostream>
#include <string>
#include <vector>

#include "backends/scratch_arena.hpp"
#include "core/kernel_catalog.hpp"
#include "core/system_view.hpp"
#include "matrix/csr.hpp"
#include "matrix/generator.hpp"
#include "matrix/layouted_system.hpp"
#include "metrics/perf_baseline.hpp"
#include "tuning/kernel_registry.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gaia;
  util::Cli cli("ablation_storage",
                "Storage-layout ablation: seed AoS vs SoA-tiled vs "
                "sliced-instrumental through the production registry");
  cli.add_option("backend", "openmp", "serial | openmp | pstl | gpusim");
  cli.add_option("stars", "4000", "synthetic system size in stars");
  cli.add_option("reps", "9", "timed repetitions per kernel");
  cli.add_option("out", "",
                 "write a layout-labeled perf baseline here (perf-gate "
                 "consumable); empty = print only");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto backend_opt = backends::parse_backend(cli.get("backend"));
    GAIA_CHECK(backend_opt.has_value(),
               "unknown backend '" + cli.get("backend") + "'");
    const backends::BackendKind backend = *backend_opt;
    const auto reps = static_cast<int>(cli.get_int("reps"));
    GAIA_CHECK(reps > 0, "--reps must be positive");

    matrix::GeneratorConfig cfg;
    cfg.seed = 555;
    cfg.n_stars = cli.get_int("stars");
    cfg.obs_per_star_mean = 30.0;
    cfg.att_dof_per_axis = 96;
    cfg.n_instr_params = 64;
    const auto gen = matrix::generate_system(cfg);
    const auto csr = matrix::to_csr(gen.A);
    const double rows = static_cast<double>(gen.A.n_rows());

    matrix::LayoutedSystem layouts(gen.A);
    layouts.build(backends::StorageLayout::kSlicedInstr);  // implies SoA

    std::cout << "=== storage-layout ablation (" << gen.A.n_rows()
              << " rows x " << gen.A.n_cols() << " unknowns, backend "
              << backends::to_string(backend) << ") ===\n\n";

    // 1. Footprint: padded coefficient bytes per layout, CSR reference.
    util::Table t({"format", "coeff bytes", "bytes/row", "vs seed"});
    const double seed_bytes = static_cast<double>(
        layouts.padded_coefficient_bytes(backends::StorageLayout::kSeedAos));
    const auto add_layout_row = [&](backends::StorageLayout layout) {
      const double bytes = static_cast<double>(
          layouts.padded_coefficient_bytes(layout));
      t.add_row({backends::to_string(layout),
                 util::format_bytes(static_cast<byte_size>(bytes)),
                 util::Table::num(bytes / rows, 1),
                 util::Table::num(bytes / seed_bytes, 2) + "x"});
    };
    add_layout_row(backends::StorageLayout::kSeedAos);
    add_layout_row(backends::StorageLayout::kSoaTiled);
    add_layout_row(backends::StorageLayout::kSlicedInstr);
    const double csr_bytes = static_cast<double>(csr.bytes());
    t.add_row({"generic CSR", util::format_bytes(csr.bytes()),
               util::Table::num(csr_bytes / rows, 1),
               util::Table::num(csr_bytes / seed_bytes, 2) + "x"});
    std::cout << t.str() << '\n';

    // 2. Measured per-kernel medians per layout, production launch path.
    core::ensure_kernel_catalog();
    core::SystemView view = core::SystemView::from(gen.A);
    view.attach_layout(layouts);
    const tuning::KernelRegistry& registry = tuning::KernelRegistry::global();
    const backends::TuningTable table = backends::TuningTable::tuned_default();
    backends::ScratchArena arena;

    util::Xoshiro256 rng(1);
    std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()));
    std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
    for (auto& v : x) v = rng.normal();
    for (auto& v : y) v = rng.normal();

    metrics::PerfBaseline baseline;
    baseline.name = "ablation_storage";
    util::Table m({"kernel", "seed_aos (ms)", "soa_tiled (ms)",
                   "sliced_instr (ms)", "best/seed"});
    for (backends::KernelId id : backends::all_kernels()) {
      const bool is_aprod1 = id < backends::KernelId::kAprod2Astro;
      std::vector<std::string> cells{std::string(backends::to_string(id))};
      double seed_med = 0, best_med = 0;
      for (int li = 0; li < backends::kNumStorageLayouts; ++li) {
        tuning::LaunchArgs args;
        args.view = &view;
        args.in = is_aprod1 ? x.data() : y.data();
        args.out = is_aprod1 ? y.data() : x.data();
        args.config = table.get(id);
        args.config.layout = static_cast<backends::StorageLayout>(li);
        args.arena = &arena;
        std::vector<double> samples;
        samples.reserve(static_cast<std::size_t>(reps));
        registry.launch(id, backend, args);  // warm-up, untimed
        for (int r = 0; r < reps; ++r) {
          util::Stopwatch watch;
          registry.launch(id, backend, args);
          samples.push_back(watch.elapsed_s());
        }
        const double med = util::median(samples);
        if (li == 0) seed_med = med;
        best_med = li == 0 ? med : std::min(best_med, med);
        cells.push_back(util::Table::num(med * 1e3, 3));

        metrics::KernelTiming timing;
        timing.kernel = backends::to_string(id);
        timing.backend = backends::to_string(backend);
        timing.strategy = backends::kernel_uses_atomics(id)
                              ? backends::to_string(args.config.strategy)
                              : "none";
        timing.layout = backends::to_string(args.config.layout);
        timing.median_seconds = med;
        timing.samples = samples.size();
        baseline.kernels.push_back(timing);
      }
      cells.push_back(util::Table::num(best_med / seed_med, 2) + "x");
      m.add_row(cells);
    }
    std::cout << m.str() << '\n';
    std::cout << "seed AoS fetches whole 192 B row records at line "
                 "granularity no matter which block a kernel reads; the "
                 "SoA streams fetch exact coefficient bytes (plus a "
                 "zero-padded tile tail), and the sliced instrumental "
                 "format adds lane padding but clusters rows that touch "
                 "nearby instrumental columns, cutting the irregular "
                 "gather misses. CSR is the outside reference: its "
                 "per-non-zero column index is the footprint the custom "
                 "formats exist to avoid.\n";

    if (!cli.get("out").empty()) {
      metrics::save_baseline(cli.get("out"), baseline);
      std::cout << "wrote " << baseline.kernels.size() << " series to "
                << cli.get("out") << '\n';
    }
    return 0;
  } catch (const gaia::Error& e) {
    std::cerr << "ablation_storage: " << e.what() << '\n';
    return 1;
  }
}
