/// \file fig3_portability.cpp
/// \brief Regenerates paper Figure 3 (a/b/c): application-efficiency
/// cascades and Pennycook-P scores for 8 framework+compiler combinations
/// at 10/30/60 GB, plus the abstract's cross-size averages and the
/// NVIDIA-only CUDA score.
///
/// Optionally emits CSV side-files: `fig3_portability --csv-dir DIR`.
#include <fstream>
#include <iostream>
#include <map>

#include "metrics/cascade.hpp"
#include "metrics/pennycook.hpp"
#include "metrics/report.hpp"
#include "perfmodel/simulator.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gaia;
  using namespace gaia::perfmodel;

  util::Cli cli("fig3_portability", "paper Fig. 3 reproduction");
  cli.add_option("csv-dir", "", "directory for CSV output (empty = none)");
  cli.add_option("markdown-dir", "",
                 "directory for per-size markdown reports (empty = none)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string csv_dir = cli.get("csv-dir");

    PlatformSimulator sim;
    const double sizes[] = {10.0, 30.0, 60.0};
    const char sub[] = {'a', 'b', 'c'};

    std::map<std::string, double> p_sum;
    std::map<std::string, int> p_count;
    double cuda_nv_sum = 0;
    int cuda_nv_count = 0;

    for (int s = 0; s < 3; ++s) {
      const auto footprint = static_cast<byte_size>(sizes[s] * kGiB);
      const auto platforms = platforms_for_size(footprint);
      const auto m =
          sim.measure_campaign(footprint, all_frameworks(), platforms);
      const auto cascade = metrics::build_cascade(m);
      const auto p_all = metrics::pennycook_scores(m);

      std::cout << "=== Fig. 3" << sub[s] << ": " << sizes[s]
                << " GB problem (" << platforms.size() << " platforms) ===\n\n"
                << metrics::render_cascade(cascade);

      // NVIDIA-only subset (the paper's CUDA discussion). At 60 GB only
      // one NVIDIA GPU fits, so the subset score is not meaningful
      // (paper: "no meaning to compute P from the 60 GB problem").
      std::vector<std::string> nv;
      for (Platform p : platforms)
        if (gpu_spec(p).vendor == Vendor::kNvidia) nv.push_back(to_string(p));
      std::vector<double> p_nv;
      if (nv.size() >= 2) p_nv = metrics::pennycook_scores(m, nv);

      util::Table t({"framework", "P", "P (NVIDIA-only)"});
      for (std::size_t a = 0; a < m.n_applications(); ++a) {
        t.add_row({m.applications()[a], util::Table::num(p_all[a], 3),
                   p_nv.empty() ? std::string("n/a")
                                : util::Table::num(p_nv[a], 3)});
        p_sum[m.applications()[a]] += p_all[a];
        p_count[m.applications()[a]] += 1;
      }
      if (!p_nv.empty()) {
        cuda_nv_sum += p_nv[m.app_index("CUDA")];
        ++cuda_nv_count;
      }
      std::cout << t.str() << '\n';

      if (!csv_dir.empty()) {
        util::CsvWriter csv({"framework", "platform", "efficiency",
                             "running_p"});
        for (const auto& series : cascade.series) {
          for (std::size_t k = 0; k < series.platform_order.size(); ++k) {
            csv.add_row({series.application, series.platform_order[k],
                         util::Table::num(series.efficiency[k], 6),
                         util::Table::num(series.running_p[k], 6)});
          }
        }
        csv.write(csv_dir + "/fig3" + sub[s] + "_cascade.csv");
      }

      if (const std::string md_dir = cli.get("markdown-dir");
          !md_dir.empty()) {
        metrics::ReportOptions ropts;
        ropts.title = "Gaia AVU-GSR portability campaign";
        ropts.subtitle = std::to_string(static_cast<int>(sizes[s])) +
                         " GB problem (paper Fig. 3" + sub[s] + ")";
        if (nv.size() >= 2) {
          ropts.secondary_subset = nv;
          ropts.secondary_subset_label = "P (NVIDIA-only)";
        }
        std::ofstream f(md_dir + "/fig3" + sub[s] + "_report.md");
        f << metrics::markdown_report(m, ropts);
      }
    }

    std::cout << "=== cross-size averages (abstract) ===\n";
    util::Table avg({"framework", "mean P across sizes"});
    for (const auto& [name, sum] : p_sum)
      avg.add_row({name, util::Table::num(sum / p_count[name], 3)});
    std::cout << avg.str();
    std::cout << "CUDA mean P over NVIDIA-only platform sets (10/30 GB): "
              << util::Table::num(cuda_nv_sum / cuda_nv_count, 3)
              << "  (paper: 0.97)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
