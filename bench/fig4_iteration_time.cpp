/// \file fig4_iteration_time.cpp
/// \brief Regenerates paper Figure 4 (a/b/c): average LSQR iteration
/// time (with run-to-run spread) across architectures and programming
/// models at 10/30/60 GB.
#include <iostream>

#include "model_drift_helper.hpp"
#include "obs/session.hpp"
#include "perfmodel/simulator.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace gaia;
  using namespace gaia::perfmodel;

  util::Cli cli("fig4_iteration_time", "paper Fig. 4 reproduction");
  cli.add_option("csv-dir", "", "directory for CSV output (empty = none)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string csv_dir = cli.get("csv-dir");
    obs::Session obs_session = obs::Session::from_env();

    PlatformSimulator sim;
    const double sizes[] = {10.0, 30.0, 60.0};
    const char sub[] = {'a', 'b', 'c'};

    for (int s = 0; s < 3; ++s) {
      const auto footprint = static_cast<byte_size>(sizes[s] * kGiB);
      const auto platforms = platforms_for_size(footprint);

      std::cout << "=== Fig. 4" << sub[s] << ": average iteration time, "
                << sizes[s] << " GB ===\n";
      std::vector<std::string> headers = {"framework"};
      for (Platform p : platforms) headers.push_back(to_string(p) + " (ms)");
      util::Table t(headers);
      util::CsvWriter csv(
          {"framework", "platform", "mean_s", "stddev_s", "supported"});

      for (Framework f : all_frameworks()) {
        std::vector<std::string> row = {to_string(f)};
        for (Platform p : platforms) {
          const auto r = sim.run(f, p, footprint);
          if (r.supported) {
            row.push_back(util::Table::num(r.mean_iteration_s * 1e3, 1) +
                          " +-" +
                          util::Table::num(r.stddev_iteration_s * 1e3, 1));
          } else {
            row.push_back("n/a");
          }
          csv.add_row({to_string(f), to_string(p),
                       util::Table::num(r.mean_iteration_s, 6),
                       util::Table::num(r.stddev_iteration_s, 6),
                       r.supported ? "1" : "0"});
        }
        t.add_row(row);
      }
      std::cout << t.str() << '\n';
      if (!csv_dir.empty())
        csv.write(csv_dir + "/fig4" + std::string(1, sub[s]) + "_times.csv");
    }
    std::cout << "shape checks vs the paper: newer NVIDIA GPUs are faster; "
                 "MI250X trails A100/H100 (noncoalesced SpMV); the fastest "
                 "framework is CUDA or HIP on NVIDIA and OMP+V on MI250X.\n\n";

    // --- model drift: predicted vs host-measured kernel time shares ----
    // The figure above is pure model output; this confronts the model
    // with a real (host gpusim) run of the same kernels and reports how
    // far the predicted time distribution drifted from the measured one.
    const auto drift = bench::host_drift_report(bench::drift_bench_config(),
                                                gpu_spec(Platform::kH100));
    std::cout << drift.markdown(
        "model drift: H100 prediction vs host gpusim measurement");
    if (!csv_dir.empty()) drift.write_csv(csv_dir + "/fig4_model_drift.csv");
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
