/// \file ablation_multigpu.cpp
/// \brief Multi-GPU scaling ablation: extends the single-GPU iteration
/// model (the paper's scope) toward the companion study's multi-node
/// runs and the paper's "bigger problems using multiple GPUs" future
/// work — strong and weak scaling of the distributed LSQR iteration.
#include <iostream>

#include "perfmodel/multi_gpu.hpp"
#include "util/table.hpp"

int main() {
  using namespace gaia;
  using namespace gaia::perfmodel;

  const struct {
    Platform platform;
    const InterconnectSpec& net;
  } systems[] = {
      {Platform::kA100, leonardo_interconnect()},
      {Platform::kMi250x, setonix_interconnect()},
  };

  for (const auto& sys : systems) {
    const GpuSpec& gpu = gpu_spec(sys.platform);
    MultiGpuModel model(gpu, sys.net);
    ExecutionPlan plan;
    plan.tuning = KernelCostModel(gpu).tuned_table();

    std::cout << "=== " << gpu.name << " + " << sys.net.name << " ===\n\n";

    std::cout << "strong scaling, 30 GB total problem\n";
    util::Table strong({"ranks", "compute (ms)", "allreduce (ms)",
                        "iteration (ms)", "parallel eff."});
    const auto total = ProblemShape::from_footprint(
        static_cast<byte_size>(30.0 * kGiB));
    for (const auto& p : model.strong_scaling(total, plan, 256)) {
      strong.add_row({std::to_string(p.ranks),
                      util::Table::num(p.compute_s * 1e3, 2),
                      util::Table::num(p.allreduce_s * 1e3, 2),
                      util::Table::num(p.iteration_s * 1e3, 2),
                      util::Table::num(p.efficiency, 3)});
    }
    std::cout << strong.str() << '\n';

    std::cout << "weak scaling, 10 GB per rank\n";
    util::Table weak({"ranks", "total (GB)", "iteration (ms)",
                      "weak eff."});
    const auto per_rank = ProblemShape::from_footprint(
        static_cast<byte_size>(10.0 * kGiB));
    for (const auto& p : model.weak_scaling(per_rank, plan, 256)) {
      weak.add_row({std::to_string(p.ranks),
                    util::Table::num(10.0 * p.ranks, 0),
                    util::Table::num(p.iteration_s * 1e3, 2),
                    util::Table::num(p.efficiency, 3)});
    }
    std::cout << weak.str() << '\n';
  }
  std::cout << "context: the companion study (Malenza et al. 2024) ran "
               "the CUDA and PSTL ports at 256 Leonardo nodes. In the "
               "model, weak scaling is limited not by the (small) "
               "allreduce payload but by the replicated unknown-space "
               "vector work, whose share depends on the rows/unknowns "
               "ratio — production's O(1000) observations per star keep "
               "it negligible far longer than our synthetic 50.\n";
  return 0;
}
