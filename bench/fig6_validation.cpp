/// \file fig6_validation.cpp
/// \brief Regenerates paper Figure 6: the one-to-one comparison of each
/// port's astrometric solution and standard errors against the
/// production reference, on an astrometric-scale synthetic stand-in for
/// the (NDA'd) 42 GB dataset.
///
/// Emits the scatter series (`--csv-dir`) and prints the per-port fit
/// and agreement statistics the figure visualizes.
#include <iostream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "validation/cross_backend.hpp"

int main(int argc, char** argv) {
  using namespace gaia;
  util::Cli cli("fig6_validation", "paper Fig. 6 reproduction");
  cli.add_option("csv-dir", "", "directory for CSV output (empty = none)");
  cli.add_option("stars", "800",
                 "stars in the small validation dataset (the large one "
                 "scales by the paper's 306/42 ratio)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string csv_dir = cli.get("csv-dir");

    // The paper validates on two production datasets (42 GB and 306 GB,
    // a ~7.3x size ratio); we run two scaled-down stand-ins with the
    // same ratio.
    struct Dataset {
      const char* label;
      long long stars;
    };
    const long long base_stars = cli.get_int("stars");
    const Dataset datasets[] = {
        {"42GB-analog", base_stars},
        {"306GB-analog", base_stars * 306 / 42},
    };
    bool all_ok = true;
    for (const Dataset& ds : datasets) {
    std::cout << "--- dataset " << ds.label << " (" << ds.stars
              << " stars) ---\n";
    validation::ValidationOptions opts;
    opts.dataset.seed = 42;
    opts.dataset.n_stars = ds.stars;
    opts.dataset.obs_per_star_mean = 30.0;
    opts.dataset.att_dof_per_axis = 96;
    opts.dataset.n_instr_params = 64;
    opts.dataset.noise_sigma = 0.05;
    opts.lsqr.max_iterations = 300;
    opts.lsqr.atol = 1e-13;
    opts.lsqr.btol = 1e-13;
    // Mixed-precision gate (§V-C numerics): each reduced storage
    // precision must match the FP64 reference within the accuracy goal
    // after FP64 iterative refinement.
    opts.precisions = {backends::Precision::kFp32,
                       backends::Precision::kBf16s};

    std::cout << "=== Fig. 6: port-vs-reference validation ===\n\n";
    const auto campaign = validation::run_validation(opts);

    util::Table t({"panel", "port", "quantity", "slope", "intercept", "R^2",
                   "1-sigma agr."});
    char panel = 'a';
    for (const auto& port : campaign.ports) {
      const auto sol_pts = validation::astrometric_scatter(
          campaign.layout, port.result.x, campaign.reference.x);
      const auto err_pts = validation::astrometric_scatter(
          campaign.layout, port.result.std_errors,
          campaign.reference.std_errors);
      const auto sol_fit = validation::fit_one_to_one(sol_pts);
      const auto err_fit = validation::fit_one_to_one(err_pts);

      t.add_row({std::string(1, panel++), backends::to_string(port.backend),
                 "solution", util::Table::num(sol_fit.slope, 6),
                 util::Table::num(sol_fit.intercept, 9),
                 util::Table::num(sol_fit.r2, 6),
                 util::Table::num(port.solution.sigma_agreement * 100, 1) +
                     " %"});
      t.add_row({std::string(1, panel++), backends::to_string(port.backend),
                 "std error", util::Table::num(err_fit.slope, 6),
                 util::Table::num(err_fit.intercept, 9),
                 util::Table::num(err_fit.r2, 6), "-"});

      if (!csv_dir.empty()) {
        util::CsvWriter csv({"unknown", "reference", "candidate"});
        for (const auto& pt : sol_pts) {
          csv.add_row({std::to_string(pt.unknown),
                       util::Table::num(pt.reference, 12),
                       util::Table::num(pt.candidate, 12)});
        }
        csv.write(csv_dir + "/fig6_" + ds.label + "_scatter_" +
                  backends::to_string(port.backend) + ".csv");
      }
    }
    std::cout << t.str() << '\n';
    std::cout << "acceptance (paper SV-C): slope ~ 1, intercept ~ 0 (the "
                 "dashed one-to-one line), agreement within 1 sigma, and "
                 "std-error differences below 10 uas.\n";
    for (const auto& port : campaign.ports) {
      std::cout << "  " << backends::to_string(port.backend)
                << ": d(std err) mean = "
                << port.std_errors.mean_diff / kMicroArcsecInRad
                << " uas, sigma = "
                << port.std_errors.stddev_diff / kMicroArcsecInRad
                << " uas -> "
                << (port.std_errors.below_accuracy_goal ? "PASS" : "FAIL")
                << '\n';
    }
    for (const auto& pv : campaign.precisions) {
      std::cout << "  precision " << backends::to_string(pv.precision)
                << "+refinement: " << pv.refinement.corrections
                << " correction(s), max |dx| = "
                << pv.solution.max_abs_diff / kMicroArcsecInRad
                << " uas vs fp64 -> "
                << (pv.solution.below_accuracy_goal ? "PASS" : "FAIL");
      if (pv.fell_back) std::cout << " (refinement stalled; fell back to fp64)";
      std::cout << '\n';
    }
    std::cout << (campaign.all_passed ? "\nALL PORTS VALIDATED\n\n"
                                      : "\nVALIDATION FAILURES\n\n");
    all_ok = all_ok && campaign.all_passed;
    }
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
