/// \file bench_smoke.cpp
/// \brief Fast per-kernel timing sweep that emits a BENCH_smoke.json
/// perf baseline — the producer side of the `gaia-perfgate` CI gate.
///
/// Launches each of the eight aprod kernels directly through the
/// KernelRegistry on a small host-resident system, records the median
/// launch time per kernel, and writes a metrics::PerfBaseline. Runs in
/// well under a second, so CI can afford two runs (baseline + verify)
/// plus an injected-slowdown run to prove the gate trips:
///
///   bench_smoke --out BENCH_smoke.json
///   bench_smoke --out slow.json --slowdown aprod2_att=2.0
///   gaia-perfgate BENCH_smoke.json slow.json   # exits 1
#include <array>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "backends/scratch_arena.hpp"
#include "obs/sampler.hpp"
#include "core/kernel_catalog.hpp"
#include "core/system_view.hpp"
#include "matrix/generator.hpp"
#include "matrix/layouted_system.hpp"
#include "metrics/perf_baseline.hpp"
#include "tuning/kernel_registry.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace gaia;

/// `--slowdown KERNEL=FACTOR`: busy-spin after the named kernel inside
/// the timed region until its launch appears FACTOR times slower. CI
/// uses this to prove the gate actually trips on a regression.
struct Slowdown {
  std::string kernel;
  double factor = 1.0;
};

Slowdown parse_slowdown(const std::string& spec) {
  Slowdown s;
  if (spec.empty()) return s;
  const auto eq = spec.find('=');
  GAIA_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < spec.size(),
             "bad --slowdown spec '" + spec + "' (want KERNEL=FACTOR)");
  s.kernel = spec.substr(0, eq);
  s.factor = std::stod(spec.substr(eq + 1));
  GAIA_CHECK(s.factor >= 1.0, "--slowdown factor must be >= 1");
  return s;
}

void busy_spin_for(double seconds) {
  util::Stopwatch watch;
  volatile double sink = 0;
  while (watch.elapsed_s() < seconds) sink = sink + 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_smoke",
                "Per-kernel smoke timings -> perf-gate baseline JSON");
  cli.add_option("out", "BENCH_smoke.json", "baseline output path");
  cli.add_option("reps", "9", "timed repetitions per kernel");
  cli.add_option("backend", "openmp", "serial | openmp | pstl | gpusim");
  cli.add_option("stars", "1500",
                 "synthetic system size in stars (large enough that the "
                 "system leaves L2 and the layout comparison is a "
                 "bandwidth story, still well under a second)");
  cli.add_option("slowdown", "",
                 "KERNEL=FACTOR: artificially slow one kernel "
                 "(regression-injection for gate tests)");
  cli.add_option("telemetry-file", "",
                 "run the telemetry sampler during the sweep, streaming "
                 "JSONL here — compare kernel medians with/without to "
                 "measure sampler overhead");
  cli.add_option("telemetry-every-ms", "0",
                 "sampling period for --telemetry-file (0 = default 250)");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto backend_opt = backends::parse_backend(cli.get("backend"));
    GAIA_CHECK(backend_opt.has_value(),
               "unknown backend '" + cli.get("backend") + "'");
    const backends::BackendKind backend = *backend_opt;
    const auto reps = static_cast<int>(cli.get_int("reps"));
    GAIA_CHECK(reps > 0, "--reps must be positive");
    const Slowdown slowdown = parse_slowdown(cli.get("slowdown"));

    std::unique_ptr<obs::TelemetrySampler> sampler;
    if (!cli.get("telemetry-file").empty()) {
      obs::SamplerConfig scfg;
      scfg.path = cli.get("telemetry-file");
      const int every = static_cast<int>(cli.get_int("telemetry-every-ms"));
      if (every > 0) scfg.period_ms = every;
      sampler = std::make_unique<obs::TelemetrySampler>(scfg);
    }

    matrix::GeneratorConfig cfg;
    cfg.seed = 4242;
    cfg.n_stars = cli.get_int("stars");
    const matrix::GeneratedSystem gen = matrix::generate_system(cfg);
    core::ensure_kernel_catalog();
    core::SystemView view = core::SystemView::from(gen.A);
    // All three storage layouts are timed, so derived arrays are built
    // up front and attached to the view; per-row series are labeled
    // with their layout so the gate tracks each independently.
    matrix::LayoutedSystem layouts(gen.A);
    layouts.build(backends::StorageLayout::kSlicedInstr);  // implies SoA
    view.attach_layout(layouts);
    // Reduced-precision planes for every layout, so the precision axis
    // is timed on the same memory story as the layout axis.
    layouts.build_precision(backends::Precision::kFp32);
    layouts.build_precision(backends::Precision::kBf16s);
    view.attach_precision(layouts);
    const tuning::KernelRegistry& registry = tuning::KernelRegistry::global();
    const backends::TuningTable table = backends::TuningTable::tuned_default();
    backends::ScratchArena arena;

    util::Xoshiro256 rng(7);
    std::vector<real> x(static_cast<std::size_t>(gen.A.n_cols()));
    std::vector<real> y(static_cast<std::size_t>(gen.A.n_rows()));
    for (auto& v : x) v = rng.normal();
    for (auto& v : y) v = rng.normal();

    metrics::PerfBaseline baseline;
    baseline.name = "smoke";
    std::array<std::array<double, backends::kNumStorageLayouts>,
               backends::kNumPrecisions>
        aprod_total{};
    for (int pi = 0; pi < backends::kNumPrecisions; ++pi) {
      const auto precision = static_cast<backends::Precision>(pi);
      for (int li = 0; li < backends::kNumStorageLayouts; ++li) {
        const auto layout = static_cast<backends::StorageLayout>(li);
        for (backends::KernelId id : backends::all_kernels()) {
          const bool is_aprod1 = id < backends::KernelId::kAprod2Astro;
          tuning::LaunchArgs args;
          args.view = &view;
          args.in = is_aprod1 ? x.data() : y.data();
          args.out = is_aprod1 ? y.data() : x.data();
          args.config = table.get(id);
          args.config.layout = layout;
          args.config.precision = precision;
          args.arena = &arena;
          const std::string name = backends::to_string(id);
          const double spin_factor =
              name == slowdown.kernel ? slowdown.factor - 1.0 : 0.0;

          std::vector<double> samples;
          samples.reserve(static_cast<std::size_t>(reps));
          registry.launch(id, backend, args);  // warm-up, untimed
          for (int r = 0; r < reps; ++r) {
            util::Stopwatch watch;
            registry.launch(id, backend, args);
            if (spin_factor > 0)
              busy_spin_for(spin_factor * watch.elapsed_s());
            samples.push_back(watch.elapsed_s());
          }

          metrics::KernelTiming timing;
          timing.kernel = name;
          timing.backend = backends::to_string(backend);
          timing.strategy = backends::kernel_uses_atomics(id)
                                ? backends::to_string(args.config.strategy)
                                : "none";
          timing.layout = backends::to_string(layout);
          timing.precision = backends::to_string(precision);
          timing.median_seconds = util::median(samples);
          timing.samples = samples.size();
          baseline.kernels.push_back(timing);
          aprod_total[static_cast<std::size_t>(pi)]
                     [static_cast<std::size_t>(li)] +=
              timing.median_seconds;
          std::cout << name << " [" << timing.layout << '/'
                    << timing.precision << "]: median "
                    << timing.median_seconds * 1e3 << " ms over " << reps
                    << " rep(s)\n";
        }
      }
    }
    // One-line layout verdict (at fp64): summed per-kernel medians per
    // layout. The layout-smoke CI job greps this to assert a derived
    // layout beats the seed on at least one parallel host backend.
    const double seed_total = aprod_total[0][0];
    for (int li = 0; li < backends::kNumStorageLayouts; ++li) {
      const auto layout = static_cast<backends::StorageLayout>(li);
      std::cout << "layout total [" << backends::to_string(layout)
                << "]: " << aprod_total[0][static_cast<std::size_t>(li)] * 1e3
                << " ms"
                << (li > 0 && aprod_total[0][static_cast<std::size_t>(li)] <
                                  seed_total
                        ? " (beats seed_aos)"
                        : "")
                << '\n';
    }
    // Precision verdict: per (precision, layout) aprod totals against
    // the same layout's fp64 total — the precision-smoke CI job greps
    // "(beats fp64)" to assert the reduced storage actually buys
    // bandwidth on a parallel host backend.
    for (int pi = 1; pi < backends::kNumPrecisions; ++pi) {
      const auto precision = static_cast<backends::Precision>(pi);
      for (int li = 0; li < backends::kNumStorageLayouts; ++li) {
        const auto layout = static_cast<backends::StorageLayout>(li);
        const double total =
            aprod_total[static_cast<std::size_t>(pi)]
                       [static_cast<std::size_t>(li)];
        std::cout << "precision total [" << backends::to_string(layout)
                  << '/' << backends::to_string(precision)
                  << "]: " << total * 1e3 << " ms"
                  << (total < aprod_total[0][static_cast<std::size_t>(li)]
                          ? " (beats fp64)"
                          : "")
                  << '\n';
      }
    }

    metrics::save_baseline(cli.get("out"), baseline);
    std::cout << "wrote " << baseline.kernels.size() << " series to "
              << cli.get("out") << '\n';
    return 0;
  } catch (const gaia::Error& e) {
    std::cerr << "bench_smoke: " << e.what() << '\n';
    return 1;
  }
}
